// Trending hashtags on the topology engine — the paper's flagship
// application (Table 1, "Finding Frequent Elements" -> "Trending Hashtags")
// run on the Storm/Heron-style platform of Section 3.
//
// Topology:
//   tweets (spout, x2) --shuffle--> extract (bolt, x3)
//          --fields(tag)--> count (SketchBolt<SpaceSaving>, x4)
//          --global--> rank (SketchCombinerBolt<SpaceSaving>, x1)
//
// The counting and ranking stages are the generic key-sharded
// partial-aggregation pattern from platform/stream_operators.h: each
// fields-grouped SketchBolt task maintains a SpaceSaving summary over its
// key partition and ships it downstream as a versioned SketchBlob; the
// global SketchCombinerBolt merges the shard blobs into one summary whose
// top-k equals a single-instance run — the distributed heavy-hitter
// deployment behind real trending pipelines.
//
//   ./trending_hashtags

#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "core/frequency/space_saving.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/stream_operators.h"
#include "platform/topology.h"
#include "workload/text_stream.h"

namespace {

using namespace streamlib;
using namespace streamlib::platform;

constexpr uint64_t kTweets = 500000;
constexpr uint64_t kVocabulary = 50000;
constexpr size_t kTopK = 10;
constexpr size_t kSummaryCapacity = 1000;

/// End-of-stream callback for the combiner: rank and print the merged
/// summary.
void PrintTrending(const SpaceSaving<std::string>& merged) {
  std::printf("\n== trending now (top %zu of %llu tweets, merged from 4 "
              "shard sketches) ==\n",
              kTopK, static_cast<unsigned long long>(kTweets));
  size_t rank = 1;
  for (const auto& item : merged.TopK(kTopK)) {
    std::printf("  %2zu. %-10s ~%llu occurrences (overestimate <= %llu)\n",
                rank++, item.key.c_str(),
                static_cast<unsigned long long>(item.estimate),
                static_cast<unsigned long long>(item.error_bound));
  }
}

}  // namespace

int main() {
  auto emitted = std::make_shared<std::atomic<uint64_t>>(0);

  TopologyBuilder builder;
  builder.AddSpout(
      "tweets",
      [emitted]() -> std::unique_ptr<Spout> {
        // Each spout task owns a generator; the shared budget splits the
        // half-million tweets between them.
        auto generator = std::make_shared<workload::TextStreamGenerator>(
            kVocabulary, 1.2, 7 + emitted->load());
        return std::make_unique<GeneratorSpout>(
            [emitted, generator]() -> std::optional<Tuple> {
              if (emitted->fetch_add(1) >= kTweets) return std::nullopt;
              return Tuple::Of(std::string("#") + generator->Next());
            });
      },
      2);
  builder.AddBolt(
      "extract",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& in, OutputCollector* out) {
              // Real pipelines tokenize tweet text here; the generator
              // already yields single hashtags.
              out->Emit(Tuple::Of(in.Str(0)));
            });
      },
      3, {{"tweets", Grouping::Shuffle()}});
  builder.AddBolt(
      "count",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchBolt<SpaceSaving<std::string>>>(
            SpaceSaving<std::string>(kSummaryCapacity),
            [](SpaceSaving<std::string>& summary, const Tuple& in) {
              summary.Add(in.Str(0));
            });
      },
      4, {{"extract", Grouping::Fields(0)}});
  builder.AddBolt(
      "rank",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchCombinerBolt<SpaceSaving<std::string>>>(
            SpaceSaving<std::string>(kSummaryCapacity),
            [](const SpaceSaving<std::string>& merged, OutputCollector*) {
              PrintTrending(merged);
            });
      },
      1, {{"count", Grouping::Global()}});

  auto topology = builder.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "topology error: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }

  EngineConfig config;
  config.mode = platform::ExecutionMode::kDedicated;
  config.queue_capacity = 4096;
  // Observability: sample counters + queue depths every 5 ms and trace
  // every 32nd root so the run ends with a telemetry report to print.
  config.telemetry_sample_interval_ms = 5;
  config.trace_sample_every = 32;
  TopologyEngine engine(std::move(topology).value(), config);

  std::printf("running trending-hashtags topology "
              "(2 spouts, 3 extractors, 4 counters, 1 ranker)...\n");
  engine.Run();

  auto& metrics = engine.metrics();
  std::printf("\n== engine metrics ==\n");
  for (const std::string& name : metrics.ComponentNames()) {
    auto m = metrics.ForComponent(name);
    std::printf("  %-8s emitted=%8llu executed=%8llu p50 latency=%.1f us\n",
                name.c_str(), static_cast<unsigned long long>(m.emitted()),
                static_cast<unsigned long long>(m.executed()),
                m.LatencyPercentileNanos(0.5) / 1000.0);
  }

  std::printf("\n");
  engine.telemetry().BuildReport().WriteTable(std::cout);
  return 0;
}
