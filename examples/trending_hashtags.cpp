// Trending hashtags on the topology engine — the paper's flagship
// application (Table 1, "Finding Frequent Elements" -> "Trending Hashtags")
// run on the Storm/Heron-style platform of Section 3.
//
// Topology:
//   tweets (spout, x2) --shuffle--> extract (bolt, x3)
//          --fields(tag)--> count (SpaceSaving bolt, x4)
//          --global--> rank (merger bolt, x1)
//
// Each counting task maintains its own SpaceSaving summary over its key
// partition; at end of stream the partial top-k lists merge in the ranker —
// the distributed heavy-hitter pattern behind real trending pipelines.
//
//   ./trending_hashtags

#include <atomic>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "core/frequency/space_saving.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/topology.h"
#include "workload/text_stream.h"

namespace {

using namespace streamlib;
using namespace streamlib::platform;

constexpr uint64_t kTweets = 500000;
constexpr uint64_t kVocabulary = 50000;
constexpr size_t kTopK = 10;

/// Counting bolt: SpaceSaving over this task's key partition; emits its
/// local top candidates at end of stream.
class TrendingBolt : public Bolt {
 public:
  TrendingBolt() : summary_(1000) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    summary_.Add(input.Str(0));
  }

  void Finish(OutputCollector* collector) override {
    for (const auto& item : summary_.TopK(3 * kTopK)) {
      collector->Emit(Tuple::Of(item.key,
                                static_cast<int64_t>(item.estimate),
                                static_cast<int64_t>(item.error_bound)));
    }
  }

 private:
  SpaceSaving<std::string> summary_;
};

/// Ranking bolt: merges partial top lists (fields grouping guarantees each
/// tag lives in exactly one partition, so merge = union).
class RankBolt : public Bolt {
 public:
  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    merged_[input.Str(0)] = {input.Int(1), input.Int(2)};
  }

  void Finish(OutputCollector* collector) override {
    (void)collector;
    std::multimap<int64_t, std::string, std::greater<int64_t>> ranked;
    for (const auto& [tag, entry] : merged_) {
      ranked.emplace(entry.first, tag);
    }
    std::printf("\n== trending now (top %zu of %llu tweets) ==\n", kTopK,
                static_cast<unsigned long long>(kTweets));
    size_t rank = 1;
    for (const auto& [count, tag] : ranked) {
      if (rank > kTopK) break;
      std::printf("  %2zu. %-10s ~%lld occurrences (overestimate <= %lld)\n",
                  rank++, tag.c_str(), static_cast<long long>(count),
                  static_cast<long long>(merged_[tag].second));
    }
  }

 private:
  std::map<std::string, std::pair<int64_t, int64_t>> merged_;
};

}  // namespace

int main() {
  auto emitted = std::make_shared<std::atomic<uint64_t>>(0);

  TopologyBuilder builder;
  builder.AddSpout(
      "tweets",
      [emitted]() -> std::unique_ptr<Spout> {
        // Each spout task owns a generator; the shared budget splits the
        // half-million tweets between them.
        auto generator = std::make_shared<workload::TextStreamGenerator>(
            kVocabulary, 1.2, 7 + emitted->load());
        return std::make_unique<GeneratorSpout>(
            [emitted, generator]() -> std::optional<Tuple> {
              if (emitted->fetch_add(1) >= kTweets) return std::nullopt;
              return Tuple::Of(std::string("#") + generator->Next());
            });
      },
      2);
  builder.AddBolt(
      "extract",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& in, OutputCollector* out) {
              // Real pipelines tokenize tweet text here; the generator
              // already yields single hashtags.
              out->Emit(Tuple::Of(in.Str(0)));
            });
      },
      3, {{"tweets", Grouping::Shuffle()}});
  builder.AddBolt(
      "count",
      []() -> std::unique_ptr<Bolt> { return std::make_unique<TrendingBolt>(); },
      4, {{"extract", Grouping::Fields(0)}});
  builder.AddBolt(
      "rank",
      []() -> std::unique_ptr<Bolt> { return std::make_unique<RankBolt>(); },
      1, {{"count", Grouping::Global()}});

  auto topology = builder.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "topology error: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }

  EngineConfig config;
  config.mode = platform::ExecutionMode::kDedicated;
  config.queue_capacity = 4096;
  // Observability: sample counters + queue depths every 5 ms and trace
  // every 32nd root so the run ends with a telemetry report to print.
  config.telemetry_sample_interval_ms = 5;
  config.trace_sample_every = 32;
  TopologyEngine engine(std::move(topology).value(), config);

  std::printf("running trending-hashtags topology "
              "(2 spouts, 3 extractors, 4 counters, 1 ranker)...\n");
  engine.Run();

  auto& metrics = engine.metrics();
  std::printf("\n== engine metrics ==\n");
  for (const std::string& name : metrics.ComponentNames()) {
    auto m = metrics.ForComponent(name);
    std::printf("  %-8s emitted=%8llu executed=%8llu p50 latency=%.1f us\n",
                name.c_str(), static_cast<unsigned long long>(m.emitted()),
                static_cast<unsigned long long>(m.executed()),
                m.LatencyPercentileNanos(0.5) / 1000.0);
  }

  std::printf("\n");
  engine.telemetry().BuildReport().WriteTable(std::cout);
  return 0;
}
