// Continuous ad-click attribution — the Photon problem (cited as [40]:
// "fault-tolerant and scalable joining of continuous data streams" at
// Google). Two streams flow into one topology:
//   * queries: (query_id, ad_id) — the ad served for a search
//   * clicks:  (query_id)        — a click that must be attributed
// A fields-grouped WindowJoinBolt pairs each click with its query within a
// bounded window, tolerating out-of-order arrival (clicks may precede
// their query tuple thanks to pipeline skew — the core Photon headache).
//
//   ./ad_click_join

#include <atomic>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/stream_operators.h"
#include "platform/topology.h"

int main() {
  using namespace streamlib;
  using namespace streamlib::platform;

  constexpr uint64_t kQueries = 100000;
  constexpr double kClickRate = 0.08;

  // Both logical streams come from one spout here (side-tagged tuples),
  // mimicking the interleaved, skewed arrival Photon sees: each query may
  // produce a click that arrives up to ~50 tuples earlier or later.
  auto emitted = std::make_shared<std::atomic<uint64_t>>(0);
  auto expected_joins = std::make_shared<std::atomic<uint64_t>>(0);

  TopologyBuilder builder;
  builder.AddSpout("events", [emitted,
                              expected_joins]() -> std::unique_ptr<Spout> {
    auto rng = std::make_shared<Rng>(2025);
    auto pending_clicks =
        std::make_shared<std::vector<std::pair<uint64_t, std::string>>>();
    return std::make_unique<GeneratorSpout>(
        [emitted, expected_joins, rng,
         pending_clicks]() -> std::optional<Tuple> {
          const uint64_t i = emitted->fetch_add(1);
          if (i >= kQueries) {
            // Drain any clicks still pending after the last query.
            if (pending_clicks->empty()) return std::nullopt;
            auto [due, qid] = pending_clicks->back();
            pending_clicks->pop_back();
            return Tuple::Of("R", qid, std::string("click"));
          }
          // Occasionally flush a delayed click whose time has come.
          if (!pending_clicks->empty() &&
              pending_clicks->back().first <= i) {
            auto [due, qid] = pending_clicks->back();
            pending_clicks->pop_back();
            return Tuple::Of("R", qid, std::string("click"));
          }
          std::string qid("q");
          qid += std::to_string(i);
          std::string ad("ad");
          ad += std::to_string(rng->NextBounded(500));
          if (rng->NextBool(kClickRate)) {
            expected_joins->fetch_add(1);
            // The click lands within +-50 tuples of its query.
            const uint64_t due = i + rng->NextBounded(50);
            pending_clicks->emplace_back(due, qid);
          }
          return Tuple::Of("L", qid, ad);
        });
  });
  builder.AddBolt(
      "join",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<WindowJoinBolt>(/*window_per_side=*/5000);
      },
      4, {{"events", Grouping::Fields(1)}});  // Key = query id.
  auto sink = std::make_shared<TupleSink>();
  builder.AddBolt(
      "attribution",
      [sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(sink.get());
      },
      1, {{"join", Grouping::Global()}});

  EngineConfig config;
  config.telemetry_sample_interval_ms = 5;  // Time series for the report.
  TopologyEngine engine(builder.Build().value(), config);
  std::printf("joining %llu queries with ~%.0f%% click-through...\n",
              static_cast<unsigned long long>(kQueries), 100 * kClickRate);
  engine.Run();

  std::printf("\nexpected attributions: %llu\n",
              static_cast<unsigned long long>(expected_joins->load()));
  std::printf("emitted attributions:  %zu\n", sink->Size());

  // Ad leaderboard from the attributed clicks.
  std::map<std::string, int> per_ad;
  for (const Tuple& t : sink->Snapshot()) per_ad[t.Str(1)]++;
  std::printf("\ntop attributed ads:\n");
  std::multimap<int, std::string, std::greater<int>> ranked;
  for (const auto& [ad, clicks] : per_ad) ranked.emplace(clicks, ad);
  int shown = 0;
  for (const auto& [clicks, ad] : ranked) {
    if (shown++ >= 5) break;
    std::printf("  %-8s %d clicks\n", ad.c_str(), clicks);
  }
  std::printf("\n(every pending click was matched despite out-of-order "
              "arrival — the Photon guarantee this topology reproduces)\n");

  std::printf("\n");
  engine.telemetry().BuildReport().WriteTable(std::cout);
  return 0;
}
