// streamlib_debug: flight-recorder + time-travel topology debugger CLI.
//
// Records a demo topology run to an SLFR file and drives the deterministic
// replayer over it (DESIGN.md §11):
//
//   streamlib_debug record --out=R.slfr [--tuples=N] [--seed=S]
//                          [--diverge-at=K] [--faults] [--alo]
//   streamlib_debug replay --in=R.slfr
//   streamlib_debug step --in=R.slfr [--count=N]
//   streamlib_debug break --in=R.slfr (--task=T --tuple=N | --first-fault)
//   streamlib_debug dump-state --in=R.slfr [--at=M]
//   streamlib_debug dump-trace --in=R.slfr [--limit=N]
//   streamlib_debug bisect --a=A.slfr --b=B.slfr
//
// The built-in demo topology (1 spout -> 1 relay -> 2 CountMin shards + 2
// HyperLogLog shards -> combiners) satisfies the replay determinism
// contract, so `replay` verifies the re-execution against the recorded
// run summary and exits nonzero on any divergence. `bisect` binary-
// searches the earliest emission where two recordings' sketch states
// part ways; `--diverge-at=K` plants such a divergence for testing.
//
// Exit codes: 0 success, 1 divergence/verification failure, 2 usage or
// I/O error.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/state_debug.h"
#include "core/cardinality/hyperloglog.h"
#include "core/frequency/count_min_sketch.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/recorder.h"
#include "platform/replay.h"
#include "platform/stream_operators.h"

namespace {

using namespace streamlib;
using namespace streamlib::platform;

// ---------------------------------------------------------- flag parsing

struct Flags {
  std::string out;
  std::string in;
  std::string a;
  std::string b;
  uint64_t tuples = 2000;
  uint64_t seed = 42;
  int64_t diverge_at = -1;
  bool faults = false;
  bool alo = false;
  uint64_t count = 10;
  int64_t at = -1;
  uint64_t limit = 10;
  int64_t task = -1;
  int64_t tuple = -1;
  bool first_fault = false;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 0; i < argc; i++) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* name) -> std::optional<std::string> {
      const std::string prefix = std::string("--") + name + "=";
      if (arg.compare(0, prefix.size(), prefix) == 0) {
        return arg.substr(prefix.size());
      }
      return std::nullopt;
    };
    if (auto v = value_of("out")) {
      flags->out = *v;
    } else if (auto v = value_of("in")) {
      flags->in = *v;
    } else if (auto v = value_of("a")) {
      flags->a = *v;
    } else if (auto v = value_of("b")) {
      flags->b = *v;
    } else if (auto v = value_of("tuples")) {
      flags->tuples = std::stoull(*v);
    } else if (auto v = value_of("seed")) {
      flags->seed = std::stoull(*v);
    } else if (auto v = value_of("diverge-at")) {
      flags->diverge_at = std::stoll(*v);
    } else if (auto v = value_of("count")) {
      flags->count = std::stoull(*v);
    } else if (auto v = value_of("at")) {
      flags->at = std::stoll(*v);
    } else if (auto v = value_of("limit")) {
      flags->limit = std::stoull(*v);
    } else if (auto v = value_of("task")) {
      flags->task = std::stoll(*v);
    } else if (auto v = value_of("tuple")) {
      flags->tuple = std::stoll(*v);
    } else if (arg == "--faults") {
      flags->faults = true;
    } else if (arg == "--alo") {
      flags->alo = true;
    } else if (arg == "--first-fault") {
      flags->first_fault = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------- demo topology

/// Word stream feeding the demo topology. Deterministic in (seed, tuples);
/// `diverge_at` >= 0 swaps that one emission for an out-of-vocabulary
/// word, planting a divergence for bisect to find.
struct WordStream {
  Rng rng;
  uint64_t produced = 0;
  uint64_t total;
  int64_t diverge_at;

  WordStream(uint64_t seed, uint64_t total, int64_t diverge_at)
      : rng(seed), total(total), diverge_at(diverge_at) {}

  std::optional<Tuple> Next() {
    if (produced >= total) return std::nullopt;
    const uint64_t index = produced++;
    std::string word = "w" + std::to_string(rng.NextBounded(40));
    if (diverge_at >= 0 && index == static_cast<uint64_t>(diverge_at)) {
      word = "DIVERGENT";
    }
    return Tuple::Of(std::move(word), static_cast<int64_t>(index));
  }
};

/// The fixed demo topology. Its shape (and therefore its fingerprint) is
/// independent of the word-stream parameters, so any recording made by
/// `record` replays against it. Structure obeys the determinism contract:
/// single spout task, single relay task, every run-phase bolt has one
/// producer task, combiners are fed only by the finish pass.
Topology BuildDemoTopology(uint64_t seed, uint64_t tuples,
                           int64_t diverge_at) {
  TopologyBuilder builder;
  builder.AddSpout("words", [seed, tuples, diverge_at]() {
    auto stream = std::make_shared<WordStream>(seed, tuples, diverge_at);
    return std::make_unique<GeneratorSpout>(
        [stream]() { return stream->Next(); });
  });
  builder.AddBolt(
      "relay",
      []() {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& input, OutputCollector* collector) {
              collector->Emit(input);
            });
      },
      1, {{"words", Grouping::Shuffle()}});
  builder.AddBolt(
      "cm",
      []() {
        return std::make_unique<SketchBolt<CountMinSketch>>(
            CountMinSketch(1024, 4),
            [](CountMinSketch& sketch, const Tuple& t) {
              sketch.Add(t.Str(0));
            },
            FieldKeyBatchUpdate<CountMinSketch>(0));
      },
      2, {{"relay", Grouping::Fields(0)}});
  builder.AddBolt(
      "hll",
      []() {
        return std::make_unique<SketchBolt<HyperLogLog>>(
            HyperLogLog(10, /*sparse=*/false),
            [](HyperLogLog& sketch, const Tuple& t) {
              sketch.Add(t.Str(0));
            },
            FieldKeyBatchUpdate<HyperLogLog>(0));
      },
      2, {{"relay", Grouping::Fields(0)}});
  builder.AddBolt(
      "cm_merge",
      []() {
        return std::make_unique<SketchCombinerBolt<CountMinSketch>>(
            CountMinSketch(1024, 4));
      },
      1, {{"cm", Grouping::Global()}});
  builder.AddBolt(
      "hll_merge",
      []() {
        return std::make_unique<SketchCombinerBolt<HyperLogLog>>(
            HyperLogLog(10, /*sparse=*/false));
      },
      1, {{"hll", Grouping::Global()}});
  return builder.Build().value();
}

EngineConfig DemoConfig(uint64_t seed, bool faults, bool alo) {
  EngineConfig config;
  config.seed = seed;
  config.semantics =
      alo ? DeliverySemantics::kAtLeastOnce : DeliverySemantics::kAtMostOnce;
  config.telemetry_sample_interval_ms = 0;
  if (faults) {
    config.faults.seed = seed ^ 0xfau;
    config.faults.drop_tuple_prob = 0.01;
    config.faults.duplicate_tuple_prob = 0.01;
    config.faults.delay_delivery_prob = 0.005;
    config.faults.delay_max_micros = 20;
    config.faults.bolt_throw_prob = 0.005;
    // Executor faults require per-tuple execution for replay parity.
    config.execute_batch_size = 1;
  }
  if (alo) config.ack_timeout_seconds = 30.0;
  return config;
}

// ------------------------------------------------------------- utilities

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 2;
}

Result<std::unique_ptr<ReplayEngine>> LoadReplay(const std::string& path) {
  Result<RecordedRun> run = ReadRecording(path);
  if (!run.ok()) return run.status();
  const uint64_t seed = run.value().config.seed;
  auto engine = std::make_unique<ReplayEngine>(
      BuildDemoTopology(seed, 0, -1), std::move(run).value());
  Status prepared = engine->Prepare();
  if (!prepared.ok()) return prepared;
  return engine;
}

void PrintTaskStates(const ReplayEngine& engine) {
  for (size_t i = 0; i < engine.task_count(); i++) {
    const TaskMetrics& m = engine.task_metrics(i);
    std::printf("  task %zu %s[%u]: emitted=%llu executed=%llu acked=%llu "
                "failed=%llu exceptions=%llu",
                i, m.component().c_str(), m.task_index(),
                static_cast<unsigned long long>(m.emitted()),
                static_cast<unsigned long long>(m.executed()),
                static_cast<unsigned long long>(m.acked()),
                static_cast<unsigned long long>(m.failed()),
                static_cast<unsigned long long>(m.bolt_exceptions()));
    std::optional<std::vector<uint8_t>> blob = engine.TaskStateBlob(i);
    if (blob.has_value()) {
      Result<std::string> described = state::DescribeBlob(*blob);
      std::printf("  state: %s", described.ok()
                                     ? described.value().c_str()
                                     : described.status().ToString().c_str());
    }
    std::printf("\n");
  }
}

// --------------------------------------------------------------- commands

int CmdRecord(const Flags& flags) {
  if (flags.out.empty()) {
    std::fprintf(stderr, "record: --out=PATH required\n");
    return 2;
  }
  const Topology topology =
      BuildDemoTopology(flags.seed, flags.tuples, flags.diverge_at);
  EngineConfig config = DemoConfig(flags.seed, flags.faults, flags.alo);
  Result<std::unique_ptr<RunRecorder>> recorder =
      RunRecorder::Create(flags.out, config, topology);
  if (!recorder.ok()) return Fail("record", recorder.status());
  config.recorder = recorder.value().get();

  TopologyEngine engine(
      BuildDemoTopology(flags.seed, flags.tuples, flags.diverge_at), config);
  engine.Run();
  const Status finalized = recorder.value()->Finalize();
  if (!finalized.ok()) return Fail("record: finalize", finalized);
  std::printf("recorded %llu emissions (%llu bytes) to %s\n",
              static_cast<unsigned long long>(
                  recorder.value()->records_written()),
              static_cast<unsigned long long>(
                  recorder.value()->bytes_written()),
              flags.out.c_str());
  return 0;
}

int CmdReplay(const Flags& flags) {
  Result<std::unique_ptr<ReplayEngine>> engine = LoadReplay(flags.in);
  if (!engine.ok()) return Fail("replay", engine.status());
  ReplayEngine& replay = *engine.value();
  while (replay.Run() != ReplayStop::kEnd) {
  }
  std::printf("replayed %llu emissions\n",
              static_cast<unsigned long long>(replay.emissions_processed()));
  PrintTaskStates(replay);
  const Status verdict = replay.CompareWithRecorded();
  if (!verdict.ok()) {
    std::fprintf(stderr, "%s\n", verdict.ToString().c_str());
    return 1;
  }
  std::printf("replay matches recorded run summary\n");
  return 0;
}

int CmdStep(const Flags& flags) {
  Result<std::unique_ptr<ReplayEngine>> engine = LoadReplay(flags.in);
  if (!engine.ok()) return Fail("step", engine.status());
  ReplayEngine& replay = *engine.value();
  for (uint64_t i = 0; i < flags.count; i++) {
    const ReplayStop stop = replay.Step();
    std::printf("step %llu: emissions=%llu/%llu pending=%zu\n",
                static_cast<unsigned long long>(i + 1),
                static_cast<unsigned long long>(
                    replay.emissions_processed()),
                static_cast<unsigned long long>(replay.total_emissions()),
                replay.pending_deliveries());
    if (stop == ReplayStop::kEnd) {
      std::printf("end of recording\n");
      break;
    }
  }
  return 0;
}

int CmdBreak(const Flags& flags) {
  Result<std::unique_ptr<ReplayEngine>> engine = LoadReplay(flags.in);
  if (!engine.ok()) return Fail("break", engine.status());
  ReplayEngine& replay = *engine.value();
  if (flags.first_fault) {
    replay.AddBreakpoint(Breakpoint{Breakpoint::Kind::kFirstFault, 0, 0});
  } else if (flags.task >= 0 && flags.tuple >= 0) {
    replay.AddBreakpoint(Breakpoint{Breakpoint::Kind::kTaskTuple,
                                    static_cast<size_t>(flags.task),
                                    static_cast<uint64_t>(flags.tuple)});
  } else {
    std::fprintf(stderr,
                 "break: need --task=T --tuple=N or --first-fault\n");
    return 2;
  }
  const ReplayStop stop = replay.Run();
  if (stop != ReplayStop::kBreakpoint) {
    std::printf("breakpoint never fired (replay ran to end)\n");
    PrintTaskStates(replay);
    return 1;
  }
  std::printf("breakpoint hit: emissions=%llu/%llu pending=%zu\n",
              static_cast<unsigned long long>(replay.emissions_processed()),
              static_cast<unsigned long long>(replay.total_emissions()),
              replay.pending_deliveries());
  PrintTaskStates(replay);
  return 0;
}

int CmdDumpState(const Flags& flags) {
  Result<std::unique_ptr<ReplayEngine>> engine = LoadReplay(flags.in);
  if (!engine.ok()) return Fail("dump-state", engine.status());
  ReplayEngine& replay = *engine.value();
  const uint64_t at = flags.at >= 0 ? static_cast<uint64_t>(flags.at)
                                    : replay.total_emissions();
  const Status ran = replay.RunToEmission(at);
  if (!ran.ok()) return Fail("dump-state", ran);
  std::printf("state after %llu emissions:\n",
              static_cast<unsigned long long>(replay.emissions_processed()));
  PrintTaskStates(replay);
  return 0;
}

int CmdDumpTrace(const Flags& flags) {
  Result<RecordedRun> run = ReadRecording(flags.in);
  if (!run.ok()) return Fail("dump-trace", run.status());
  const RecordedRun& recording = run.value();
  std::printf("%zu recorded emissions (seed 0x%llx)\n",
              recording.emissions.size(),
              static_cast<unsigned long long>(recording.config.seed));
  const size_t n =
      std::min<size_t>(flags.limit, recording.emissions.size());
  for (size_t i = 0; i < n; i++) {
    const RecordedEmission& emission = recording.emissions[i];
    std::printf("  [%zu] spout_task=%u %s\n", i, emission.spout_task,
                emission.tuple.ToString().c_str());
  }
  if (n < recording.emissions.size()) {
    std::printf("  ... %zu more\n", recording.emissions.size() - n);
  }
  return 0;
}

int CmdBisect(const Flags& flags) {
  Result<RecordedRun> run_a = ReadRecording(flags.a);
  if (!run_a.ok()) return Fail("bisect: --a", run_a.status());
  Result<RecordedRun> run_b = ReadRecording(flags.b);
  if (!run_b.ok()) return Fail("bisect: --b", run_b.status());

  const uint64_t seed_a = run_a.value().config.seed;
  const uint64_t seed_b = run_b.value().config.seed;
  ReplayTarget a{[seed_a]() { return BuildDemoTopology(seed_a, 0, -1); },
                 &run_a.value()};
  ReplayTarget b{[seed_b]() { return BuildDemoTopology(seed_b, 0, -1); },
                 &run_b.value()};
  Result<std::optional<uint64_t>> divergence = FindFirstDivergence(a, b);
  if (!divergence.ok()) return Fail("bisect", divergence.status());
  if (!divergence.value().has_value()) {
    std::printf("no divergence: %zu emissions replay to identical state\n",
                run_a.value().emissions.size());
    return 0;
  }
  const uint64_t index = *divergence.value();
  std::printf("first divergence at emission %llu\n",
              static_cast<unsigned long long>(index));
  auto show = [index](const char* name, const RecordedRun& run) {
    if (index < run.emissions.size()) {
      std::printf("  %s[%llu] = spout_task=%u %s\n", name,
                  static_cast<unsigned long long>(index),
                  run.emissions[index].spout_task,
                  run.emissions[index].tuple.ToString().c_str());
    } else {
      std::printf("  %s has no emission %llu (recording ends)\n", name,
                  static_cast<unsigned long long>(index));
    }
  };
  show("a", run_a.value());
  show("b", run_b.value());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: streamlib_debug COMMAND [flags]\n"
      "  record     --out=PATH [--tuples=N] [--seed=S] [--diverge-at=K]\n"
      "             [--faults] [--alo]\n"
      "  replay     --in=PATH\n"
      "  step       --in=PATH [--count=N]\n"
      "  break      --in=PATH (--task=T --tuple=N | --first-fault)\n"
      "  dump-state --in=PATH [--at=M]\n"
      "  dump-trace --in=PATH [--limit=N]\n"
      "  bisect     --a=PATH --b=PATH\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  if (!ParseFlags(argc - 2, argv + 2, &flags)) return 2;

  if (command == "record") return CmdRecord(flags);
  if (command == "replay") return CmdReplay(flags);
  if (command == "step") return CmdStep(flags);
  if (command == "break") return CmdBreak(flags);
  if (command == "dump-state") return CmdDumpState(flags);
  if (command == "dump-trace") return CmdDumpTrace(flags);
  if (command == "bisect") return CmdBisect(flags);
  return Usage();
}
