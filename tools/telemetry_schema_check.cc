// Validates a TelemetryReport JSON document (as written by
// `bench_t2_platform --telemetry-out=PATH`) against the schema the
// observability layer promises: required keys with the right JSON types,
// plus the quick-run minimums the ctest acceptance bar sets (non-empty
// task table, >= 2 time-series samples, >= 1 trace span tree).
//
// Self-contained: ships its own minimal recursive-descent JSON parser so
// the check needs no third-party dependency. Exit code 0 on success; on
// failure prints every schema violation found and exits 1.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON document model + parser.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

const char* KindName(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing content after document");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word, JsonValue::Kind kind, bool bool_value,
                   JsonValue* out) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    out->kind = kind;
    out->bool_value = bool_value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // The report writer only emits \u00XX escapes; decode the code
            // point to a single byte and accept (lossily) anything larger.
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            out->push_back(
                static_cast<char>(std::strtol(hex.c_str(), nullptr, 16)));
            break;
          }
          default: return Fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) return Fail("expected number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't') return ConsumeWord("true", JsonValue::Kind::kBool, true, out);
    if (c == 'f') {
      return ConsumeWord("false", JsonValue::Kind::kBool, false, out);
    }
    if (c == 'n') {
      return ConsumeWord("null", JsonValue::Kind::kNull, false, out);
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return Fail("expected '{'");
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return Fail("expected '['");
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  std::string text_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Schema checks.
// ---------------------------------------------------------------------------

int g_errors = 0;

void Error(const std::string& path, const std::string& what) {
  std::fprintf(stderr, "schema error: %s: %s\n", path.c_str(), what.c_str());
  g_errors++;
}

const JsonValue* RequireKey(const JsonValue& obj, const std::string& path,
                            const std::string& key, JsonValue::Kind kind) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    Error(path, "missing key \"" + key + "\"");
    return nullptr;
  }
  if (v->kind != kind) {
    Error(path + "." + key, std::string("expected ") + KindName(kind) +
                                ", got " + KindName(v->kind));
    return nullptr;
  }
  return v;
}

double RequireNumber(const JsonValue& obj, const std::string& path,
                     const std::string& key) {
  const JsonValue* v =
      RequireKey(obj, path, key, JsonValue::Kind::kNumber);
  return v != nullptr ? v->number : 0;
}

void CheckNumberKeys(const JsonValue& obj, const std::string& path,
                     const std::vector<std::string>& keys) {
  for (const std::string& key : keys) {
    RequireNumber(obj, path, key);
  }
}

void CheckTaskRow(const JsonValue& row, const std::string& path) {
  if (row.kind != JsonValue::Kind::kObject) {
    Error(path, "task row is not an object");
    return;
  }
  RequireKey(row, path, "component", JsonValue::Kind::kString);
  CheckNumberKeys(row, path,
                  {"task", "task_index", "emitted", "executed", "acked",
                   "failed", "backpressure_stalls", "flushes",
                   "flushed_tuples", "avg_flush_size", "max_queue_depth",
                   "p50_latency_us", "p99_latency_us"});
}

void CheckSample(const JsonValue& sample, const std::string& path) {
  if (sample.kind != JsonValue::Kind::kObject) {
    Error(path, "sample is not an object");
    return;
  }
  CheckNumberKeys(sample, path, {"t_ms", "interval_ms"});
  const JsonValue* tasks =
      RequireKey(sample, path, "tasks", JsonValue::Kind::kArray);
  if (tasks == nullptr) return;
  for (size_t i = 0; i < tasks->items.size(); i++) {
    const std::string tpath = path + ".tasks[" + std::to_string(i) + "]";
    const JsonValue& t = tasks->items[i];
    if (t.kind != JsonValue::Kind::kObject) {
      Error(tpath, "sample task delta is not an object");
      continue;
    }
    CheckNumberKeys(t, tpath,
                    {"task", "emitted", "executed", "acked", "failed",
                     "backpressure_stalls", "flushes", "flushed_tuples",
                     "queue_depth"});
  }
}

void CheckTraceTree(const JsonValue& tree, const std::string& path) {
  if (tree.kind != JsonValue::Kind::kObject) {
    Error(path, "trace tree is not an object");
    return;
  }
  CheckNumberKeys(tree, path, {"trace_id", "end_to_end_us"});
  RequireKey(tree, path, "complete", JsonValue::Kind::kBool);
  const JsonValue* spans =
      RequireKey(tree, path, "spans", JsonValue::Kind::kArray);
  if (spans == nullptr) return;
  if (spans->items.empty()) Error(path, "trace tree has no spans");
  for (size_t i = 0; i < spans->items.size(); i++) {
    const std::string spath = path + ".spans[" + std::to_string(i) + "]";
    const JsonValue& span = spans->items[i];
    if (span.kind != JsonValue::Kind::kObject) {
      Error(spath, "span is not an object");
      continue;
    }
    RequireKey(span, spath, "component", JsonValue::Kind::kString);
    CheckNumberKeys(span, spath,
                    {"span", "parent", "task", "wait_us", "execute_us"});
  }
}

// Validates one "serving" object — the multi-tenant query front-end section
// (lambda::QueryFrontend::FillTelemetry). The same shape appears in full
// telemetry reports and embedded inside BENCH_lambda_serving.json (checked
// via --serving).
void CheckServing(const JsonValue& serving, const std::string& path) {
  if (serving.kind != JsonValue::Kind::kObject) {
    Error(path, "serving section is not an object");
    return;
  }
  RequireKey(serving, path, "enabled", JsonValue::Kind::kBool);
  CheckNumberKeys(serving, path,
                  {"snapshot_version", "served", "rejected_quota",
                   "rejected_queue", "cache_hits", "cache_misses"});
  const JsonValue* tenants =
      RequireKey(serving, path, "tenants", JsonValue::Kind::kArray);
  if (tenants == nullptr) return;
  for (size_t i = 0; i < tenants->items.size(); i++) {
    const std::string tpath = path + ".tenants[" + std::to_string(i) + "]";
    const JsonValue& row = tenants->items[i];
    if (row.kind != JsonValue::Kind::kObject) {
      Error(tpath, "tenant row is not an object");
      continue;
    }
    RequireKey(row, tpath, "tenant", JsonValue::Kind::kString);
    CheckNumberKeys(row, tpath,
                    {"served", "rejected_quota", "rejected_queue",
                     "cache_hits", "cache_misses"});
  }
}

void CheckReport(const JsonValue& root) {
  const std::string path = "$";
  if (root.kind != JsonValue::Kind::kObject) {
    Error(path, "document is not an object");
    return;
  }
  const double version = RequireNumber(root, path, "schema_version");
  if (g_errors == 0 && version != 1) {
    Error(path + ".schema_version", "expected 1");
  }
  CheckNumberKeys(root, path, {"sample_interval_ms", "trace_sample_every"});

  const JsonValue* recording =
      RequireKey(root, path, "recording", JsonValue::Kind::kObject);
  if (recording != nullptr) {
    const std::string rpath = path + ".recording";
    RequireKey(*recording, rpath, "enabled", JsonValue::Kind::kBool);
    RequireKey(*recording, rpath, "path", JsonValue::Kind::kString);
    CheckNumberKeys(*recording, rpath, {"records", "bytes", "dropped"});
  }

  const JsonValue* serving =
      RequireKey(root, path, "serving", JsonValue::Kind::kObject);
  if (serving != nullptr) {
    CheckServing(*serving, path + ".serving");
  }

  const JsonValue* tasks =
      RequireKey(root, path, "tasks", JsonValue::Kind::kArray);
  if (tasks != nullptr) {
    if (tasks->items.empty()) Error(path + ".tasks", "no per-task rows");
    for (size_t i = 0; i < tasks->items.size(); i++) {
      CheckTaskRow(tasks->items[i],
                   path + ".tasks[" + std::to_string(i) + "]");
    }
  }

  const JsonValue* series =
      RequireKey(root, path, "time_series", JsonValue::Kind::kObject);
  if (series != nullptr) {
    const JsonValue* samples = RequireKey(*series, path + ".time_series",
                                          "samples", JsonValue::Kind::kArray);
    if (samples != nullptr) {
      if (samples->items.size() < 2) {
        Error(path + ".time_series.samples",
              "expected >= 2 sampler intervals, got " +
                  std::to_string(samples->items.size()));
      }
      for (size_t i = 0; i < samples->items.size(); i++) {
        CheckSample(samples->items[i], path + ".time_series.samples[" +
                                           std::to_string(i) + "]");
      }
    }
  }

  const JsonValue* traces =
      RequireKey(root, path, "traces", JsonValue::Kind::kObject);
  if (traces != nullptr) {
    const std::string tpath = path + ".traces";
    CheckNumberKeys(*traces, tpath,
                    {"tree_count", "complete_trees", "dropped_events"});
    const JsonValue* hop_stats =
        RequireKey(*traces, tpath, "hop_stats", JsonValue::Kind::kArray);
    if (hop_stats != nullptr) {
      for (size_t i = 0; i < hop_stats->items.size(); i++) {
        const std::string hpath =
            tpath + ".hop_stats[" + std::to_string(i) + "]";
        const JsonValue& h = hop_stats->items[i];
        if (h.kind != JsonValue::Kind::kObject) {
          Error(hpath, "hop stat is not an object");
          continue;
        }
        RequireKey(h, hpath, "component", JsonValue::Kind::kString);
        CheckNumberKeys(h, hpath,
                        {"hops", "wait_p50_us", "wait_p99_us",
                         "execute_p50_us", "execute_p99_us"});
      }
    }
    const JsonValue* trees =
        RequireKey(*traces, tpath, "trees", JsonValue::Kind::kArray);
    if (trees != nullptr) {
      if (trees->items.empty()) {
        Error(tpath + ".trees", "expected >= 1 trace span tree");
      }
      for (size_t i = 0; i < trees->items.size(); i++) {
        CheckTraceTree(trees->items[i],
                       tpath + ".trees[" + std::to_string(i) + "]");
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --serving: validate only the top-level "serving" object of the given
  // document (the section BENCH_lambda_serving.json embeds), instead of
  // the full telemetry-report schema.
  bool serving_only = false;
  const char* file = nullptr;
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]) == "--serving") {
      serving_only = true;
    } else if (file == nullptr) {
      file = argv[i];
    } else {
      file = nullptr;
      break;
    }
  }
  if (file == nullptr) {
    std::fprintf(stderr,
                 "usage: telemetry_schema_check [--serving] REPORT.json\n");
    return 2;
  }
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", file);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  JsonParser parser(buf.str());
  JsonValue root;
  if (!parser.Parse(&root)) {
    std::fprintf(stderr, "parse error: %s: %s\n", file, parser.error().c_str());
    return 1;
  }
  if (serving_only) {
    if (root.kind != JsonValue::Kind::kObject) {
      Error("$", "document is not an object");
    } else {
      const JsonValue* serving =
          RequireKey(root, "$", "serving", JsonValue::Kind::kObject);
      if (serving != nullptr) CheckServing(*serving, "$.serving");
    }
  } else {
    CheckReport(root);
  }
  if (g_errors > 0) {
    std::fprintf(stderr, "%s: %d schema error(s)\n", file, g_errors);
    return 1;
  }
  std::printf("%s: telemetry schema OK%s\n", file,
              serving_only ? " (serving section)" : "");
  return 0;
}
