// Reproduction harness for Table 1, row "Anomaly Detection" (application:
// sensor networks). Experiment T1-anomaly: precision/recall of EWMA,
// CUSUM, robust-MAD and Half-Space Trees on labeled spike streams;
// level-shift detection delay (CUSUM/ADWIN); throughput.

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/anomaly/adwin.h"
#include "core/anomaly/ewma_detector.h"
#include "core/anomaly/half_space_trees.h"
#include "core/anomaly/robust_detector.h"
#include "workload/timeseries.h"

namespace {

using namespace streamlib;

void BM_EwmaDetect(benchmark::State& state) {
  EwmaDetector detector(0.05, 4.0);
  Rng rng(1);
  for (auto _ : state) detector.AddAndDetect(rng.NextGaussian());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EwmaDetect);

void BM_RobustMadDetect(benchmark::State& state) {
  RobustMadDetector detector(128, 5.0);
  Rng rng(2);
  for (auto _ : state) detector.AddAndDetect(rng.NextGaussian());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RobustMadDetect);

void BM_HstDetect(benchmark::State& state) {
  HstDetector detector(25, 8, 250, 4, 0.6, 3);
  Rng rng(4);
  for (auto _ : state) detector.AddAndDetect(rng.NextGaussian());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HstDetect);

void BM_AdwinDetect(benchmark::State& state) {
  AdwinDetector detector(0.002);
  Rng rng(5);
  for (auto _ : state) detector.AddAndDetect(rng.NextGaussian());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdwinDetect);

struct PR {
  double precision;
  double recall;
};

PR Evaluate(AnomalyDetector* detector, double spike_magnitude,
            uint64_t seed) {
  workload::TimeSeriesConfig config;
  config.base_level = 100.0;
  config.noise_sigma = 2.0;
  config.spike_probability = 0.002;
  config.spike_magnitude = spike_magnitude;
  workload::TimeSeriesGenerator gen(config, seed);
  const int n = 50000;
  std::vector<bool> truth(n);
  std::vector<bool> flagged(n);
  for (int i = 0; i < n; i++) {
    auto p = gen.Next();
    truth[i] = p.label != workload::AnomalyKind::kNone;
    flagged[i] = detector->AddAndDetect(p.value);
  }
  int tp = 0;
  int fp = 0;
  int fn = 0;
  for (int i = 2000; i < n; i++) {
    auto near = [&](const std::vector<bool>& v) {
      for (int d = -2; d <= 2; d++) {
        if (i + d >= 0 && i + d < n && v[i + d]) return true;
      }
      return false;
    };
    if (flagged[i]) near(truth) ? tp++ : fp++;
    if (truth[i] && !near(flagged)) fn++;
  }
  PR pr;
  pr.precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 1.0;
  pr.recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 1.0;
  return pr;
}

void PrintTables() {
  using bench::Row;
  bench::TableTitle("T1-anomaly",
                    "spike detection: precision / recall vs spike size");
  Row("%-18s | %8s sigma: %6s %6s | %8s sigma: %6s %6s",
      "detector", "6", "prec", "rec", "12", "prec", "rec");
  struct Maker {
    const char* name;
    std::unique_ptr<AnomalyDetector> (*make)();
  };
  const Maker makers[] = {
      {"ewma", [] {
         return std::unique_ptr<AnomalyDetector>(
             new EwmaDetector(0.05, 4.0));
       }},
      {"robust-mad", [] {
         return std::unique_ptr<AnomalyDetector>(
             new RobustMadDetector(128, 5.0));
       }},
      {"half-space-trees", [] {
         return std::unique_ptr<AnomalyDetector>(
             new HstDetector(25, 8, 250, 4, 0.6, 7));
       }},
  };
  for (const Maker& m : makers) {
    auto d6 = m.make();
    const PR small = Evaluate(d6.get(), 6.0, 11);
    auto d12 = m.make();
    const PR large = Evaluate(d12.get(), 12.0, 13);
    Row("%-18s | %15s %5.1f%% %5.1f%% | %16s %5.1f%% %5.1f%%", m.name, "",
        100 * small.precision, 100 * small.recall, "",
        100 * large.precision, 100 * large.recall);
  }
  Row("paper-shape check: all detectors approach perfect recall as spikes");
  Row("grow; the robust (median/MAD) detector holds precision where");
  Row("moment-based baselines degrade.");

  bench::TableTitle("T1-anomaly/shift",
                    "level-shift detection delay (steps after the shift)");
  Row("%10s | %12s %12s", "shift", "CUSUM delay", "ADWIN delay");
  for (double shift : {1.0, 2.0, 4.0}) {
    Rng rng(17);
    CusumDetector cusum(0.5, 8.0, 500);
    AdwinDetector adwin(0.002);
    int cusum_delay = -1;
    int adwin_delay = -1;
    const int kShiftAt = 5000;
    for (int i = 0; i < 12000; i++) {
      const double v = rng.NextGaussian() + (i >= kShiftAt ? shift : 0.0);
      if (cusum.AddAndDetect(v) && i >= kShiftAt && cusum_delay < 0) {
        cusum_delay = i - kShiftAt;
      }
      if (adwin.AddAndDetect(v) && i >= kShiftAt && adwin_delay < 0) {
        adwin_delay = i - kShiftAt;
      }
    }
    Row("%9.1fs | %12d %12d", shift, cusum_delay, adwin_delay);
  }
  Row("paper-shape check: delay shrinks as the shift grows; both detectors");
  Row("catch shifts a 4-sigma point detector never fires on.");

  bench::TableTitle("T1-anomaly/contamination",
                    "robustness: 5%% gross outliers in the baseline");
  Rng rng(19);
  EwmaDetector ewma(0.05, 4.0);
  RobustMadDetector robust(128, 6.0);
  int ewma_missed = 0;
  int robust_missed = 0;
  int outliers = 0;
  for (int i = 0; i < 30000; i++) {
    const bool outlier = rng.NextBool(0.05);
    const double v = outlier ? 500.0 + rng.NextGaussian() : rng.NextGaussian();
    const bool e = ewma.AddAndDetect(v);
    const bool r = robust.AddAndDetect(v);
    if (i < 1000) continue;
    if (outlier) {
      outliers++;
      if (!e) ewma_missed++;
      if (!r) robust_missed++;
    }
  }
  Row("outliers: %d | ewma missed: %d (%.1f%%) | robust missed: %d (%.1f%%)",
      outliers, ewma_missed, 100.0 * ewma_missed / outliers, robust_missed,
      100.0 * robust_missed / outliers);
  Row("note: both implementations withhold flagged points from their");
  Row("baselines (robustification), so both resist this contamination; an");
  Row("unguarded moment-based EWMA would absorb it — the masking failure");
  Row("the median/MAD literature warns about.");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
