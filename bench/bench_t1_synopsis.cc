// Reproduction harness for the paper's synopsis-construction section
// (Section 2): histograms (equi-width, V-optimal exact & greedy,
// end-biased) and Haar wavelet top-k synopses. Experiment T1-synopsis.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/histogram/end_biased_histogram.h"
#include "core/histogram/equi_width_histogram.h"
#include "core/histogram/v_optimal_histogram.h"
#include "core/wavelet/haar_wavelet.h"
#include "workload/zipf.h"

namespace {

using namespace streamlib;

void BM_EquiWidthAdd(benchmark::State& state) {
  EquiWidthHistogram hist(0, 1000, 256);
  Rng rng(1);
  for (auto _ : state) hist.Add(rng.NextDouble() * 1000.0);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EquiWidthAdd);

void BM_VOptimalGreedy(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (auto& v : values) v = rng.NextGaussian();
  for (auto _ : state) {
    auto buckets = VOptimalHistogram::BuildGreedy(values, 32);
    benchmark::DoNotOptimize(buckets);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VOptimalGreedy)->Arg(1000)->Arg(10000);

void BM_HaarTransform(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> signal(static_cast<size_t>(state.range(0)));
  for (auto& v : signal) v = rng.NextGaussian();
  for (auto _ : state) {
    auto coeffs = HaarWavelet::Transform(signal);
    benchmark::DoNotOptimize(coeffs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HaarTransform)->Arg(1024)->Arg(16384);

// A step signal with unequal segment lengths (where equi-width loses).
std::vector<double> StepSignal(size_t n, int segments, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  double level = 0;
  for (int s = 0; s < segments; s++) {
    level += rng.NextGaussian() * 20.0;
    const size_t len = n / segments / 2 + rng.NextBounded(n / segments);
    for (size_t i = 0; i < len && out.size() < n; i++) {
      out.push_back(level + rng.NextGaussian());
    }
  }
  while (out.size() < n) out.push_back(level);
  return out;
}

void PrintTables() {
  using bench::Row;

  bench::TableTitle("T1-synopsis/histograms",
                    "piecewise-constant SSE: V-optimal vs greedy vs "
                    "equal-split, 16 buckets");
  Row("%10s | %12s %12s %12s | %12s", "n", "v-opt (DP)", "greedy",
      "equal-split", "greedy/opt");
  for (size_t n : {500, 1000, 2000}) {
    auto values = StepSignal(n, 12, 401);
    auto optimal = VOptimalHistogram::BuildExact(values, 16);
    auto greedy = VOptimalHistogram::BuildGreedy(values, 16);
    // Equal-split baseline: 16 equal-length index buckets.
    double equal_sse = 0;
    for (int b = 0; b < 16; b++) {
      const size_t lo = b * n / 16;
      const size_t hi = (b + 1) * n / 16;
      double mean = 0;
      for (size_t i = lo; i < hi; i++) mean += values[i];
      mean /= static_cast<double>(hi - lo);
      for (size_t i = lo; i < hi; i++) {
        equal_sse += (values[i] - mean) * (values[i] - mean);
      }
    }
    const double opt_sse = VOptimalHistogram::TotalSse(optimal);
    const double greedy_sse = VOptimalHistogram::TotalSse(greedy);
    Row("%10zu | %12.1f %12.1f %12.1f | %11.2fx", n, opt_sse, greedy_sse,
        equal_sse, greedy_sse / std::max(opt_sse, 1e-9));
  }
  Row("paper-shape check: V-optimal (the DP optimum) dominates; the");
  Row("one-pass greedy merge stays within a small factor; equal splits");
  Row("pay for ignoring the data.");

  bench::TableTitle("T1-synopsis/end-biased",
                    "end-biased histogram on skewed value frequencies");
  workload::ZipfGenerator zipf(100000, 1.3, 403);
  EndBiasedHistogram eb(64);
  std::unordered_map<int64_t, uint64_t> exact;
  for (int i = 0; i < 500000; i++) {
    const int64_t v = static_cast<int64_t>(zipf.Next());
    eb.Add(v);
    exact[v]++;
  }
  Row("%8s | %12s %12s", "value", "exact freq", "end-biased");
  for (int64_t v : {0, 1, 2, 10, 1000}) {
    Row("%8lld | %12llu %12.1f", static_cast<long long>(v),
        static_cast<unsigned long long>(exact[v]), eb.EstimateFrequency(v));
  }
  Row("tail mass spread uniformly: %llu over the untracked values",
      static_cast<unsigned long long>(eb.TailMass()));

  bench::TableTitle("T1-synopsis/wavelets",
                    "Haar top-k synopsis: L2 error vs retained coefficients");
  // Piecewise signal + a sine: compressible in the Haar basis.
  const size_t kLen = 2048;
  Rng rng(407);
  std::vector<double> signal(kLen);
  for (size_t i = 0; i < kLen; i++) {
    signal[i] = (i < kLen / 3 ? 10.0 : i < 2 * kLen / 3 ? -5.0 : 2.0) +
                3.0 * std::sin(static_cast<double>(i) * 0.02) +
                0.3 * rng.NextGaussian();
  }
  double signal_norm = 0;
  for (double v : signal) signal_norm += v * v;
  signal_norm = std::sqrt(signal_norm);
  Row("%10s | %12s %14s", "k kept", "L2 error", "error/||signal||");
  for (size_t k : {8, 32, 128, 512, 2048}) {
    const double err = HaarWavelet::SynopsisError(signal, k);
    Row("%10zu | %12.3f %13.2f%%", k, err, 100.0 * err / signal_norm);
  }
  Row("paper-shape check: the largest-coefficient rule gives the steep");
  Row("L2 decay that makes wavelet synopses competitive summaries [91].");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
