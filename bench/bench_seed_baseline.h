#ifndef STREAMLIB_BENCH_BENCH_SEED_BASELINE_H_
#define STREAMLIB_BENCH_BENCH_SEED_BASELINE_H_

#include <cstdint>
#include <vector>

namespace streamlib::bench {

/// Frozen replicas of the *seed* scalar update loops, for the E-kernel-simd
/// speedup denominator. These live in their own translation unit compiled
/// WITHOUT the SIMD flag set (-mno-avx2 -mno-bmi -mno-bmi2 -mno-lzcnt, see
/// bench/CMakeLists.txt) so the baseline reflects what the repo actually
/// shipped before the batched kernels: per-row re-mix + 64-bit modulo
/// indexing for Count-Min, branchy bsr-codegen rank for HyperLogLog.
/// Both return best-of-`reps` updates/sec over `keys`.
double SeedCountMinUpdatesPerSec(const std::vector<uint64_t>& keys,
                                 uint32_t width, uint32_t depth, int reps);
double SeedHyperLogLogUpdatesPerSec(const std::vector<uint64_t>& keys,
                                    int precision, int reps);

}  // namespace streamlib::bench

#endif  // STREAMLIB_BENCH_BENCH_SEED_BASELINE_H_
