// Seed scalar baselines for E-kernel-simd. See bench_seed_baseline.h.
//
// Fidelity contract: this TU replays the *seed commit's* update path, not
// an idealized tight loop — same arithmetic (hash mix, per-row re-mix +
// 64-bit modulo, rho), same call structure (AddHash and ColumnOf were
// out-of-line in the seed's .cc, so every key paid a real call and every
// probe another), same per-add sparse/conservative branches. Everything is
// `static`/noinline local copies rather than calls into common/ inline
// helpers: those helpers are comdat-folded across the binary, and this TU
// must keep its own no-ISA-extension codegen (see CMakeLists: compiled
// with -mno-avx2 -mno-bmi -mno-bmi2 -mno-lzcnt) to stay a faithful
// baseline.

#include "bench_seed_baseline.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <vector>

#if defined(__GNUC__) || defined(__clang__)
#define SEED_NOINLINE __attribute__((noinline))
#else
#define SEED_NOINLINE
#endif

namespace streamlib::bench {
namespace {

// Murmur3 fmix64, exactly as common/hash.h Mix64.
static uint64_t SeedMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

static uint64_t SeedHashInt64(uint64_t x, uint64_t seed) {
  return SeedMix64(x + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

// bitutil.h RankOfLeadingOne, seed vintage (identical source then and now;
// the difference under test is codegen: without -mlzcnt the zero check is
// a real branch and countl_zero lowers to bsr).
static int SeedRank(uint64_t x, int bits) {
  if (x == 0) return bits + 1;
  return std::countl_zero(x) - (64 - bits) + 1;
}

// Seed CountMinSketch, structurally: AddHash and ColumnOf both lived in
// count_min_sketch.cc, so within that TU the compiler was free to inline
// ColumnOf into AddHash — but callers of Add(key) sat in *other* TUs (no
// LTO), so each key paid one real AddHash call. noinline on AddHash alone
// reproduces exactly that boundary.
class SeedCountMin {
 public:
  SeedCountMin(uint32_t width, uint32_t depth)
      : width_(width), depth_(depth),
        table_(static_cast<size_t>(width) * depth, 0) {}

  void Add(uint64_t key) { AddHash(SeedHashInt64(key, kHashSeed), 1); }
  uint64_t cell0() const { return table_[0]; }

 private:
  uint64_t ColumnOf(uint64_t hash, uint32_t row) const {
    // The seed's indexing: full re-mix per row, then a 64-bit modulo —
    // no power-of-two mask, no double hashing.
    return SeedHashInt64(hash, row + 1) % width_;
  }
  SEED_NOINLINE void AddHash(uint64_t hash, uint64_t count) {
    total_count_ += count;
    for (uint32_t row = 0; row < depth_; row++) {
      table_[static_cast<size_t>(row) * width_ + ColumnOf(hash, row)] +=
          count;
    }
  }

  static constexpr uint64_t kHashSeed = 0x0b4c61d34d2f5ee9ULL;
  uint32_t width_;
  uint32_t depth_;
  uint64_t total_count_ = 0;
  std::vector<uint64_t> table_;
};

// Seed HyperLogLog, structurally: Add(key) inlined the hash, then called
// the out-of-line AddHash whose first duty was the sparse-mode branch.
class SeedHyperLogLog {
 public:
  explicit SeedHyperLogLog(int precision) : precision_(precision) {
    registers_.assign(size_t{1} << precision_, 0);
  }

  void Add(uint64_t key) { AddHash(SeedHashInt64(key, kHashSeed)); }
  uint8_t reg0() const { return registers_[0]; }

 private:
  SEED_NOINLINE void AddHash(uint64_t hash) {
    if (sparse_) return;  // Bench runs dense, as the seed did post-densify.
    const int value_bits = 64 - precision_;
    const uint32_t index = static_cast<uint32_t>(hash >> value_bits);
    const uint64_t value = hash & ((uint64_t{1} << value_bits) - 1);
    const uint8_t rank = static_cast<uint8_t>(SeedRank(value, value_bits));
    if (rank > registers_[index]) registers_[index] = rank;
  }

  static constexpr uint64_t kHashSeed = 0x5bd1e9955bd1e995ULL;
  int precision_;
  bool sparse_ = false;
  std::vector<uint8_t> registers_;
};

}  // namespace

double SeedCountMinUpdatesPerSec(const std::vector<uint64_t>& keys,
                                 uint32_t width, uint32_t depth, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; r++) {
    SeedCountMin sketch(width, depth);
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t key : keys) sketch.Add(key);
    const auto t1 = std::chrono::steady_clock::now();
    if (sketch.cell0() == ~0ull) return -1;  // Keep the table observable.
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return static_cast<double>(keys.size()) / best;
}

double SeedHyperLogLogUpdatesPerSec(const std::vector<uint64_t>& keys,
                                    int precision, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; r++) {
    SeedHyperLogLog sketch(precision);
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t key : keys) sketch.Add(key);
    const auto t1 = std::chrono::steady_clock::now();
    if (sketch.reg0() == 0xff) return -1;  // Keep the registers observable.
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return static_cast<double>(keys.size()) / best;
}

}  // namespace streamlib::bench
