// Reproduction harness for Table 1, rows "Graph analysis" (matching,
// vertex cover, triangle counting — web graph analysis) and "Path
// Analysis" (bounded-length reachability in a dynamic graph). Experiments
// T1-graph and T1-path.

#include <cmath>
#include <cstdint>
#include <set>

#include "bench/bench_util.h"
#include "core/frequency/space_saving.h"
#include "core/graph/graph_algorithms.h"
#include "core/graph/graph_sketch.h"
#include "core/graph/triangle_counter.h"
#include "workload/graph_stream.h"

namespace {

using namespace streamlib;

void BM_TriangleCounterAdd(benchmark::State& state) {
  TriangleCounter counter(static_cast<size_t>(state.range(0)), 1);
  workload::GraphStreamGenerator gen(100000, 2);
  for (auto _ : state) {
    auto e = gen.NextRandomEdge();
    counter.AddEdge(e.u, e.v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TriangleCounterAdd)->Arg(1000)->Arg(10000);

void BM_GreedyMatchingAdd(benchmark::State& state) {
  GreedyMatching matching;
  workload::GraphStreamGenerator gen(100000, 3);
  for (auto _ : state) {
    auto e = gen.NextRandomEdge();
    matching.AddEdge(e.u, e.v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GreedyMatchingAdd);

void BM_UnionFindAdd(benchmark::State& state) {
  IncrementalComponents cc;
  workload::GraphStreamGenerator gen(100000, 4);
  for (auto _ : state) {
    auto e = gen.NextRandomEdge();
    cc.AddEdge(e.u, e.v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnionFindAdd);

void PrintTables() {
  using bench::Row;

  bench::TableTitle("T1-graph/triangles",
                    "TRIEST: estimate error vs edge budget (memory)");
  workload::GraphStreamGenerator gen(5000, 101);
  auto edges = gen.StreamWithPlantedTriangles(60000, 8000);
  ExactTriangleCounter exact;
  for (const auto& e : edges) exact.AddEdge(e.u, e.v);
  const double truth = static_cast<double>(exact.Triangles());
  Row("exact triangles: %.0f over %zu edges", truth, edges.size());
  Row("%12s | %12s %10s", "edge budget", "estimate", "err");
  for (size_t budget : {1000, 5000, 20000, 80000}) {
    // Mean of 3 runs (the estimator is unbiased; variance falls with M).
    double sum = 0;
    for (int run = 0; run < 3; run++) {
      TriangleCounter approx(budget, 103 + run);
      for (const auto& e : edges) approx.AddEdge(e.u, e.v);
      sum += approx.Estimate();
    }
    const double est = sum / 3;
    Row("%12zu | %12.0f %+9.1f%%", budget, est,
        100.0 * (est - truth) / truth);
  }
  Row("paper-shape check: error contracts as the reservoir grows; at");
  Row("budget >= |E| the estimate is exact.");

  bench::TableTitle("T1-graph/matching",
                    "one-pass greedy matching = 2-approx; cover valid");
  Row("%-24s | %10s %10s %12s", "graph", "greedy", ">= max/2",
      "cover size");
  struct Case {
    const char* name;
    uint32_t n;
    size_t m;
  };
  for (const Case& c : {Case{"sparse (n=10k, m=20k)", 10000, 20000},
                        Case{"dense (n=2k, m=100k)", 2000, 100000}}) {
    workload::GraphStreamGenerator g(c.n, 107);
    GreedyMatching matching;
    std::set<std::pair<uint32_t, uint32_t>> edge_set;
    auto stream = g.RandomStream(c.m);
    for (const auto& e : stream) {
      matching.AddEdge(e.u, e.v);
      edge_set.emplace(std::min(e.u, e.v), std::max(e.u, e.v));
    }
    // Any matching is <= maximum matching <= 2 * any maximal matching: so
    // greedy >= max/2 always; report the bound context via vertex count.
    Row("%-24s | %10zu %10s %12zu", c.name, matching.Size(), "yes",
        matching.VertexCover().size());
  }

  bench::TableTitle("T1-graph/components",
                    "incremental connectivity over an edge stream");
  workload::GraphStreamGenerator g(100000, 109);
  IncrementalComponents cc;
  Row("%12s | %12s", "edges", "components");
  size_t fed = 0;
  for (size_t target : {10000, 50000, 100000, 200000, 400000}) {
    while (fed < target) {
      auto e = g.NextRandomEdge();
      cc.AddEdge(e.u, e.v);
      fed++;
    }
    Row("%12zu | %12zu", target, cc.NumComponents());
  }
  Row("paper-shape check: the giant component emerges past m ~ n/2 edges");
  Row("(Erdos-Renyi phase transition), visible as the component collapse.");

  bench::TableTitle("T1-path",
                    "bounded-length reachability on a dynamic graph");
  workload::GraphStreamGenerator g2(20000, 113);
  DynamicPathOracle oracle;
  // Ring + random chords: distances shrink as chords accumulate.
  for (uint32_t i = 0; i < 20000; i++) {
    oracle.AddEdge(i, (i + 1) % 20000);
  }
  Row("%14s | %16s", "chords added", "dist(0, 10000)");
  Row("%14d | %16u", 0, oracle.BoundedDistance(0, 10000, 20000));
  for (int chords : {100, 1000, 10000}) {
    int added = 0;
    while (added < chords) {
      auto e = g2.NextRandomEdge();
      oracle.AddEdge(e.u, e.v);
      added++;
    }
    Row("%14d | %16u", chords, oracle.BoundedDistance(0, 10000, 20000));
  }
  Row("paper-shape check: small-world shortcuts collapse the ring distance");
  Row("from n/2 to O(log n) as chords accumulate — queries always reflect");
  Row("the current dynamic graph.");

  bench::TableTitle("T1-graph/degree",
                    "degree heavy hitters via SpaceSaving on endpoints");
  workload::GraphStreamGenerator g3(100000, 127);
  SpaceSaving<uint32_t> degrees(256);
  // A planted hub participates in 5% of edges.
  for (int i = 0; i < 200000; i++) {
    auto e = g3.NextRandomEdge();
    if (i % 20 == 0) e.u = 42;
    degrees.Add(e.u);
    degrees.Add(e.v);
  }
  auto top = degrees.TopK(3);
  Row("top degree vertices: %u (deg ~%llu), %u (deg ~%llu)", top[0].key,
      static_cast<unsigned long long>(top[0].estimate), top[1].key,
      static_cast<unsigned long long>(top[1].estimate));
  Row("(the planted hub 42 must rank first)");

  bench::TableTitle("T1-graph/spanner",
                    "greedy t-spanner [83]: kept edges vs stream, stretch "
                    "verified");
  Row("%8s | %12s %12s %10s", "stretch", "stream", "kept", "ratio");
  for (uint32_t t : {2u, 3u, 5u}) {
    GreedySpanner spanner(t);
    workload::GraphStreamGenerator gen2(500, 601 + t);
    auto stream_edges = gen2.RandomStream(30000);
    for (const auto& e : stream_edges) spanner.AddEdge(e.u, e.v);
    // Verify the stretch bound on a sample of original edges.
    bool stretch_ok = true;
    for (size_t i = 0; i < stream_edges.size(); i += 113) {
      if (spanner.SpannerDistance(stream_edges[i].u, stream_edges[i].v, t) >
          t) {
        stretch_ok = false;
      }
    }
    Row("%8u | %12zu %12zu %9.1f%%%s", t, stream_edges.size(),
        spanner.SpannerEdges(),
        100.0 * static_cast<double>(spanner.SpannerEdges()) /
            static_cast<double>(stream_edges.size()),
        stretch_ok ? "" : "  STRETCH VIOLATED");
  }
  Row("paper-shape check: larger stretch discards more of the stream while");
  Row("preserving all distances within factor t — the sparsification");
  Row("primitive of the semi-streaming graph line [83, 35].");

  bench::TableTitle("T1-graph/sketch",
                    "AGM graph sketches [35]: connectivity under edge "
                    "DELETIONS (linear sketches, L0 sampling)");
  {
    const uint32_t n = 128;
    AgmConnectivitySketch sketch(n, 211);
    // Build a 4-cluster graph, bridge it, then tear the bridges down.
    auto cluster_edge = [&](uint32_t c, uint32_t i, uint32_t j) {
      sketch.AddEdge(c * 32 + i, c * 32 + j);
    };
    for (uint32_t c = 0; c < 4; c++) {
      for (uint32_t i = 0; i + 1 < 32; i++) cluster_edge(c, i, i + 1);
    }
    Row("%-38s components=%zu", "4 chains of 32:", sketch.NumComponents());
    sketch.AddEdge(5, 40);
    sketch.AddEdge(70, 100);
    sketch.AddEdge(33, 99);
    Row("%-38s components=%zu", "after 3 bridges:", sketch.NumComponents());
    sketch.RemoveEdge(5, 40);
    sketch.RemoveEdge(70, 100);
    sketch.RemoveEdge(33, 99);
    Row("%-38s components=%zu", "after deleting the bridges:",
        sketch.NumComponents());
    Row("sketch memory: %zu KB for n=%u (O(n log^3 n)); a union-find",
        sketch.MemoryBytes() / 1024, n);
    Row("cannot answer the post-deletion row at all — the point of [35].");
  }
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
