// Reproduction harness for Table 1, row "Estimating Moments" (application:
// databases — self-join size). Experiment T1-moments: F2 error of the AMS
// tug-of-war sketch and Count-Sketch across skew; F_k (k=1..3) via AMS
// sampling; streaming entropy.

#include <cmath>
#include <cstdint>
#include <map>

#include "bench/bench_util.h"
#include "core/frequency/count_sketch.h"
#include "core/moments/ams_sketch.h"
#include "core/moments/fk_estimator.h"
#include "workload/zipf.h"

namespace {

using namespace streamlib;

void BM_AmsAdd(benchmark::State& state) {
  AmsSketch ams(5, static_cast<uint32_t>(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) ams.AddHash(i++ * 0x9e3779b97f4a7c15ULL, 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AmsAdd)->Arg(16)->Arg(64);

void BM_CountSketchAdd(benchmark::State& state) {
  CountSketch cs(4096, 5);
  uint64_t i = 0;
  for (auto _ : state) cs.AddHash(i++ * 0x9e3779b97f4a7c15ULL, 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchAdd);

void PrintTables() {
  using bench::Row;
  const uint64_t kN = 1000000;

  bench::TableTitle("T1-moments",
                    "F2 (self-join size) relative error vs skew");
  Row("%6s | %14s | %12s %12s", "skew", "exact F2", "AMS(9x64)",
      "CountSketch");
  for (double skew : {0.8, 1.1, 1.5}) {
    workload::ZipfGenerator zipf(100000, skew, 41);
    AmsSketch ams(9, 64);
    CountSketch cs(4096, 5);
    std::map<uint64_t, uint64_t> exact;
    for (uint64_t i = 0; i < kN; i++) {
      const uint64_t item = zipf.Next();
      ams.Add(item);
      cs.Add(item);
      exact[item]++;
    }
    double f2 = 0;
    for (const auto& [item, f] : exact) {
      f2 += static_cast<double>(f) * static_cast<double>(f);
    }
    Row("%6.2f | %14.3e | %+11.2f%% %+11.2f%%", skew, f2,
        100.0 * (ams.EstimateF2() - f2) / f2,
        100.0 * (cs.EstimateF2() - f2) / f2);
  }
  Row("paper-shape check: both sketches estimate F2 within a few percent");
  Row("from KBs of state; error is skew-robust (AMS guarantee is");
  Row("distribution-free).");

  bench::TableTitle("T1-moments/fk",
                    "general F_k via AMS suffix sampling (k = 1, 2, 3)");
  Row("%4s | %14s %14s %10s", "k", "exact", "estimate", "err");
  workload::ZipfGenerator zipf(10000, 1.1, 43);
  std::map<uint64_t, uint64_t> exact;
  std::vector<uint64_t> stream;
  for (uint64_t i = 0; i < 300000; i++) {
    const uint64_t item = zipf.Next();
    stream.push_back(item);
    exact[item]++;
  }
  for (int k : {1, 2, 3}) {
    FkEstimator fk(k, 9, 400, 47 + k);
    for (uint64_t item : stream) fk.Add(item);
    double truth = 0;
    for (const auto& [item, f] : exact) {
      truth += std::pow(static_cast<double>(f), k);
    }
    Row("%4d | %14.3e %14.3e %+9.2f%%", k, truth, fk.Estimate(),
        100.0 * (fk.Estimate() - truth) / truth);
  }

  bench::TableTitle("T1-moments/entropy", "streaming empirical entropy");
  Row("%24s | %10s %10s", "stream", "exact H", "estimate");
  struct Case {
    const char* name;
    double skew;
  };
  for (const Case& c : {Case{"uniform-ish (s=0.2)", 0.2},
                        Case{"zipf s=1.0", 1.0}, Case{"zipf s=2.0", 2.0}}) {
    workload::ZipfGenerator gen(4096, c.skew, 53);
    EntropyEstimator ent(9, 400, 59);
    std::map<uint64_t, uint64_t> counts;
    const uint64_t n = 400000;
    for (uint64_t i = 0; i < n; i++) {
      const uint64_t item = gen.Next();
      ent.Add(item);
      counts[item]++;
    }
    double h = 0;
    for (const auto& [item, f] : counts) {
      const double p = static_cast<double>(f) / static_cast<double>(n);
      h -= p * std::log2(p);
    }
    Row("%24s | %10.3f %10.3f", c.name, h, ent.Estimate());
  }
  Row("paper-shape check: entropy falls as skew rises; the sampling");
  Row("estimator tracks it without storing the distribution.");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
