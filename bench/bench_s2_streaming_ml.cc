// Reproduction harness for the paper's incremental machine learning
// discussion (§2: "a field of incremental machine learning has emerged to
// cater to Big Data streaming analytics ... designed to work with
// incomplete data [and] to quantify the change between one or more states
// of the model") and the Heron "online machine learning" use case (§3).
//
// Tables: prequential accuracy of the three one-pass learners; drift
// recovery (the model-state-change the quote calls out), with ADWIN
// detecting the drift the learner then relearns; robustness to missing
// features; and the decayed-counter trending dial.

#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/anomaly/adwin.h"
#include "core/frequency/decayed_counter.h"
#include "core/ml/online_classifiers.h"
#include "workload/zipf.h"

namespace {

using namespace streamlib;

void BM_LogisticUpdate(benchmark::State& state) {
  OnlineLogisticRegression model(16, 0.05);
  Rng rng(1);
  std::vector<double> x(16);
  for (auto _ : state) {
    for (auto& v : x) v = rng.NextGaussian();
    model.Update(x, x[0] > 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogisticUpdate);

void BM_NaiveBayesUpdate(benchmark::State& state) {
  StreamingNaiveBayes model(16);
  Rng rng(2);
  std::vector<double> x(16);
  for (auto _ : state) {
    for (auto& v : x) v = rng.NextGaussian();
    model.Update(x, x[0] > 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaiveBayesUpdate);

void BM_DecayedCounterAdd(benchmark::State& state) {
  DecayedCounter<uint64_t> counter(1000.0);
  workload::ZipfGenerator zipf(100000, 1.1, 3);
  double t = 0;
  for (auto _ : state) {
    counter.Add(zipf.Next(), t);
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecayedCounterAdd);

// Concept: label = sign(w . x + b) with weights that FLIP mid-stream.
std::pair<std::vector<double>, bool> Example(Rng* rng, bool flipped) {
  std::vector<double> x = {rng->NextGaussian(), rng->NextGaussian(),
                           rng->NextGaussian()};
  double z = 1.5 * x[0] - 1.0 * x[1] + 0.5 * x[2];
  if (flipped) z = -z;
  return {x, z + 0.3 * rng->NextGaussian() > 0};
}

void PrintTables() {
  using bench::Row;

  bench::TableTitle("S2-ml",
                    "prequential (test-then-train) accuracy, one pass");
  Row("%-22s | %12s %12s", "learner", "overall", "last-1k");
  {
    Rng rng(11);
    OnlineLogisticRegression logistic(3, 0.1);
    OnlinePerceptron perceptron(3);
    StreamingNaiveBayes bayes(3);
    PrequentialEvaluator e_log(1000);
    PrequentialEvaluator e_per(1000);
    PrequentialEvaluator e_nb(1000);
    for (int i = 0; i < 100000; i++) {
      auto [x, y] = Example(&rng, false);
      e_log.Record(logistic.Predict(x), y);
      logistic.Update(x, y);
      e_per.Record(perceptron.Predict(x), y);
      perceptron.Update(x, y);
      e_nb.Record(bayes.Predict(x), y);
      bayes.Update(x, y);
    }
    Row("%-22s | %11.2f%% %11.2f%%", "logistic (SGD)",
        100 * e_log.OverallAccuracy(), 100 * e_log.WindowAccuracy());
    Row("%-22s | %11.2f%% %11.2f%%", "perceptron",
        100 * e_per.OverallAccuracy(), 100 * e_per.WindowAccuracy());
    Row("%-22s | %11.2f%% %11.2f%%", "gaussian naive bayes",
        100 * e_nb.OverallAccuracy(), 100 * e_nb.WindowAccuracy());
  }

  bench::TableTitle("S2-ml/drift",
                    "concept flips at t=50k: window accuracy around the "
                    "flip + ADWIN change alarm on the error stream");
  {
    Rng rng(13);
    OnlineLogisticRegression model(3, 0.1);
    PrequentialEvaluator eval(500);
    AdwinDetector drift_alarm(0.002);
    int alarm_at = -1;
    Row("%10s | %12s", "step", "window acc");
    for (int i = 0; i < 100000; i++) {
      auto [x, y] = Example(&rng, i >= 50000);
      const bool predicted = model.Predict(x);
      eval.Record(predicted, y);
      model.Update(x, y);
      if (drift_alarm.AddAndDetect(predicted == y ? 0.0 : 1.0) &&
          i >= 50000 && alarm_at < 0) {
        alarm_at = i;
      }
      if (i == 49999 || i == 50400 || i == 52000 || i == 99999) {
        Row("%10d | %11.2f%%", i + 1, 100 * eval.WindowAccuracy());
      }
    }
    Row("ADWIN flagged the model-state change %d steps after the flip",
        alarm_at - 50000);
    Row("paper-shape check: accuracy collapses at the flip, the change");
    Row("detector fires within a few hundred errors, and the one-pass");
    Row("learner relearns the inverted concept without a restart.");
  }

  bench::TableTitle("S2-ml/incomplete",
                    "'designed to work with incomplete data': accuracy vs "
                    "missing-feature rate (gaussian NB skips NaNs)");
  Row("%14s | %12s", "missing rate", "window acc");
  for (double missing : {0.0, 0.2, 0.5, 0.8}) {
    Rng rng(17);
    StreamingNaiveBayes model(3);
    PrequentialEvaluator eval(2000);
    const double kNan = std::nan("");
    for (int i = 0; i < 50000; i++) {
      auto [x, y] = Example(&rng, false);
      for (auto& v : x) {
        if (rng.NextBool(missing)) v = kNan;
      }
      eval.Record(model.Predict(x), y);
      model.Update(x, y);
    }
    Row("%13.0f%% | %11.2f%%", 100 * missing, 100 * eval.WindowAccuracy());
  }
  Row("(accuracy degrades gracefully rather than failing: each prediction");
  Row("uses whatever features arrived)");

  bench::TableTitle("S2-ml/trending-decay",
                    "exponentially decayed counts: how fast 'trending' "
                    "follows a topic switch");
  Row("%12s | %-12s %-12s", "half-life", "t=1999", "t=2600");
  for (double half_life : {100.0, 1000.0, 10000.0}) {
    DecayedCounter<int> counter(half_life);
    // Topic 1 dominates [0, 2000); topic 2 dominates [2000, 4000). The
    // early query must run before topic 2's (later-timestamped) arrivals.
    for (int t = 0; t < 2000; t++) counter.Add(1, t);
    auto early = counter.Trending(1999.0, 0.0001);
    // Topic 2 takes over, but only 600 occurrences vs topic 1's 2000:
    // whether "trending" flips depends on the recency dial.
    for (int t = 2000; t < 2600; t++) counter.Add(2, t);
    auto late = counter.Trending(2600.0, 0.0001);
    Row("%12.0f | top=%-8d top=%-8d", half_life,
        early.empty() ? -1 : early[0].first,
        late.empty() ? -1 : late[0].first);
  }
  Row("paper-shape check: short half-lives switch 'trending' to the new");
  Row("topic immediately; long half-lives remember history — the recency");
  Row("dial real trending systems expose.");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
