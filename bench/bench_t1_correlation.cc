// Reproduction harness for Table 1, rows "Correlation" (fraud detection /
// correlated time series [163, 99, 165]) and "Temporal Pattern Analysis"
// (traffic analysis [60, 159]). Experiments T1-correlation and T1-temporal:
// correlated-pair screening precision/recall, lag recovery, and
// shape-pattern detection under scale/offset distortion.

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/correlation/dft_sketch.h"
#include "core/correlation/pattern_matcher.h"
#include "core/correlation/streaming_correlation.h"

namespace {

using namespace streamlib;

void BM_WindowedCorrelationAdd(benchmark::State& state) {
  WindowedCorrelation wc(1024);
  Rng rng(1);
  for (auto _ : state) wc.Add(rng.NextGaussian(), rng.NextGaussian());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowedCorrelationAdd);

void BM_CorrelationMatrixAdd(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  CorrelationMatrix cm(m, 512);
  Rng rng(2);
  std::vector<double> v(m);
  for (auto _ : state) {
    for (auto& x : v) x = rng.NextGaussian();
    cm.Add(v);
  }
  state.SetItemsProcessed(state.iterations() * m * (m - 1) / 2);
}
BENCHMARK(BM_CorrelationMatrixAdd)->Arg(10)->Arg(50);

void BM_PatternMatcherAdd(benchmark::State& state) {
  std::vector<double> pattern(64);
  for (int i = 0; i < 64; i++) pattern[i] = std::sin(i * 0.1);
  PatternMatcher matcher(pattern, 0.3);
  Rng rng(3);
  for (auto _ : state) matcher.AddAndMatch(rng.NextGaussian());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatternMatcherAdd);

void PrintTables() {
  using bench::Row;

  bench::TableTitle("T1-correlation",
                    "correlated-pair screen: planted pairs among noise");
  Row("%8s | %8s %10s | %10s", "streams", "planted", "recovered",
      "spurious");
  for (size_t m : {10, 30, 60}) {
    Rng rng(101);
    CorrelationMatrix cm(m, 1024);
    // Plant floor(m/10) correlated pairs.
    std::set<std::pair<size_t, size_t>> planted;
    for (size_t p = 0; p < m / 10; p++) {
      planted.emplace(2 * p, 2 * p + 1);
    }
    for (int t = 0; t < 5000; t++) {
      std::vector<double> v(m);
      for (auto& x : v) x = rng.NextGaussian();
      for (const auto& [i, j] : planted) {
        v[j] = 0.85 * v[i] + 0.5 * rng.NextGaussian();
      }
      cm.Add(v);
    }
    auto found = cm.CorrelatedPairs(0.6);
    size_t recovered = 0;
    size_t spurious = 0;
    for (const auto& pair : found) {
      if (planted.count(pair)) {
        recovered++;
      } else {
        spurious++;
      }
    }
    Row("%8zu | %8zu %10zu | %10zu", m, planted.size(), recovered,
        spurious);
  }
  Row("paper-shape check: exact windowed co-moments recover every planted");
  Row("pair with no spurious hits at threshold 0.6 over %d pairs.", 60 * 59 / 2);

  bench::TableTitle("T1-correlation/lag",
                    "lead/lag discovery (Sayal [146]): recovery rate");
  Row("%8s | %12s", "true lag", "recovered");
  for (size_t true_lag : {0, 3, 9, 18}) {
    int hits = 0;
    const int kTrials = 10;
    for (int trial = 0; trial < kTrials; trial++) {
      Rng rng(200 + trial);
      CrossCorrelator cc(1024, 20);
      std::vector<double> base(6000 + 32);
      for (auto& b : base) b = rng.NextGaussian();
      for (size_t t = true_lag; t < 6000; t++) {
        cc.Add(base[t - true_lag], base[t]);
      }
      if (cc.BestLag() == true_lag) hits++;
    }
    Row("%8zu | %10d/%d", true_lag, hits, kTrials);
  }

  bench::TableTitle("T1-temporal",
                    "shape pattern detection (z-normalized, SpADe-style)");
  std::vector<double> pattern;
  for (int i = 0; i < 48; i++) {
    pattern.push_back(std::sin(2.0 * 3.14159265 * i / 48.0) +
                      0.5 * std::sin(4.0 * 3.14159265 * i / 48.0));
  }
  Row("%12s %12s | %10s %10s %10s", "amplitude", "offset", "planted",
      "found", "false+");
  for (double scale : {1.0, 10.0, 0.1}) {
    Rng rng(300);
    PatternMatcher matcher(pattern, 0.35);
    int planted = 0;
    int nplanted_pos = 0;
    std::vector<uint64_t> plant_ends;
    for (int block = 0; block < 40; block++) {
      // 400 noise points, then (sometimes) the pattern at this scale.
      for (int i = 0; i < 400; i++) {
        if (matcher.AddAndMatch(rng.NextGaussian() * 0.4)) nplanted_pos++;
      }
      if (block % 2 == 0) {
        planted++;
        for (double p : pattern) {
          matcher.AddAndMatch(1000.0 + scale * p +
                              rng.NextGaussian() * 0.01 * scale);
        }
        plant_ends.push_back(matcher.position());
      }
    }
    // Count matches landing within 4 steps of a planted end.
    int found = 0;
    for (uint64_t end : plant_ends) {
      for (const auto& m : matcher.matches()) {
        if (m.end_position + 4 >= end && m.end_position <= end + 4) {
          found++;
          break;
        }
      }
    }
    Row("%12.1f %12.0f | %10d %10d %10d", scale, 1000.0, planted, found,
        nplanted_pos);
  }
  Row("paper-shape check: z-normalization makes detection invariant to the");
  Row("pattern's amplitude and offset — the 0.1x and 10x rows match the");
  Row("1x row, with no false positives in pure noise.");

  bench::TableTitle("T1-correlation/dft",
                    "StatStream-style DFT synopses [99]: correlation error "
                    "vs retained coefficients (window 256)");
  Row("%8s | %14s | %18s", "m", "max |err|", "doubles compared");
  const size_t kW = 256;
  for (size_t m : {2, 4, 8, 16, 32}) {
    DftCorrelationSketch a(kW, m);
    DftCorrelationSketch b(kW, m);
    WindowedCorrelation exact(kW);
    Rng rng(501);
    double max_err = 0;
    for (int t = 0; t < 6000; t++) {
      const double base = std::sin(t * 0.05) +
                          0.6 * std::sin(t * 0.11 + 1.0) +
                          0.3 * std::sin(t * 0.023);
      const double x = base + 0.2 * rng.NextGaussian();
      const double y = 0.8 * base + 0.3 * rng.NextGaussian();
      a.Add(x);
      b.Add(y);
      exact.Add(x, y);
      if (t > static_cast<int>(kW) && t % 37 == 0) {
        max_err = std::max(
            max_err,
            std::fabs(DftCorrelationSketch::ApproxCorrelation(a, b) -
                      exact.Correlation()));
      }
    }
    Row("%8zu | %14.4f | %11zu vs %zu", m, max_err, 2 * m + 2, kW);
  }
  Row("paper-shape check: a handful of coefficients capture smooth-series");
  Row("correlation, shrinking each pair comparison ~10-60x — what makes");
  Row("all-pairs screens over thousands of streams feasible [99].");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
