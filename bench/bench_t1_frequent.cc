// Reproduction harness for Table 1, row "Finding Frequent Elements"
// (application: trending hashtags). Experiments T1-frequent and ablation
// A-cms-conservative — the head-to-head follows the methodology of the
// experimental studies the paper cites (Cormode–Hadjieleftheriou [65],
// Manerikar–Palpanas [124]): recall/precision at threshold theta over
// Zipf streams of varying skew, plus space and update cost.

#include <cstdint>
#include <map>
#include <set>

#include "bench/bench_util.h"
#include "core/frequency/count_min_sketch.h"
#include "core/frequency/count_sketch.h"
#include "core/frequency/dyadic_count_min.h"
#include "core/frequency/lossy_counting.h"
#include "core/frequency/misra_gries.h"
#include "core/frequency/space_saving.h"
#include "core/frequency/sticky_sampling.h"
#include "core/frequency/topk_tracker.h"
#include "workload/zipf.h"

namespace {

using namespace streamlib;

void BM_SpaceSavingAdd(benchmark::State& state) {
  SpaceSaving<uint64_t> ss(static_cast<size_t>(state.range(0)));
  workload::ZipfGenerator zipf(1000000, 1.1, 1);
  for (auto _ : state) ss.Add(zipf.Next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingAdd)->Arg(64)->Arg(1024)->Arg(16384);

void BM_MisraGriesAdd(benchmark::State& state) {
  MisraGries<uint64_t> mg(1024);
  workload::ZipfGenerator zipf(1000000, 1.1, 2);
  for (auto _ : state) mg.Add(zipf.Next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MisraGriesAdd);

void BM_CountMinAdd(benchmark::State& state) {
  CountMinSketch cms(4096, 4, state.range(0) != 0);
  workload::ZipfGenerator zipf(1000000, 1.1, 3);
  for (auto _ : state) cms.Add(zipf.Next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinAdd)->Arg(0)->Arg(1);  // plain / conservative

void BM_LossyCountingAdd(benchmark::State& state) {
  LossyCounting<uint64_t> lc(0.001);
  workload::ZipfGenerator zipf(1000000, 1.1, 4);
  for (auto _ : state) lc.Add(zipf.Next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LossyCountingAdd);

struct Quality {
  double recall;
  double precision;
  double avg_rel_err;  // Over true heavy hitters.
  size_t space_entries;
};

template <typename Reported>
Quality Score(const std::map<uint64_t, uint64_t>& exact,
              const Reported& reported_items, uint64_t threshold,
              size_t space) {
  std::set<uint64_t> truth;
  for (const auto& [item, count] : exact) {
    if (count >= threshold) truth.insert(item);
  }
  std::set<uint64_t> reported;
  std::map<uint64_t, uint64_t> estimates;
  for (const auto& r : reported_items) {
    reported.insert(r.key);
    estimates[r.key] = r.estimate;
  }
  size_t hit = 0;
  double rel_err = 0.0;
  for (uint64_t item : truth) {
    if (reported.count(item)) hit++;
    const double est = static_cast<double>(estimates.count(item)
                                               ? estimates[item]
                                               : 0);
    const double ex = static_cast<double>(exact.at(item));
    rel_err += std::abs(est - ex) / ex;
  }
  size_t true_pos = 0;
  for (uint64_t item : reported) {
    if (truth.count(item)) true_pos++;
  }
  Quality q;
  q.recall = truth.empty() ? 1.0 : static_cast<double>(hit) / truth.size();
  q.precision = reported.empty()
                    ? 1.0
                    : static_cast<double>(true_pos) / reported.size();
  q.avg_rel_err = truth.empty() ? 0.0 : rel_err / truth.size();
  q.space_entries = space;
  return q;
}

void PrintTables() {
  using bench::Row;
  const uint64_t kN = 2000000;
  const double kTheta = 0.001;  // Heavy = >= 0.1% of the stream.
  const uint64_t kThreshold = static_cast<uint64_t>(kTheta * kN);

  bench::TableTitle(
      "T1-frequent",
      "heavy hitters @ theta=0.1%: recall / precision / relative error");
  Row("%6s %-14s %8s %10s %10s %10s", "skew", "algorithm", "recall",
      "precision", "avg err", "entries");

  for (double skew : {1.0, 1.25, 1.5}) {
    workload::ZipfGenerator zipf(1000000, skew, 17);
    std::map<uint64_t, uint64_t> exact;
    MisraGries<uint64_t> mg(2000);
    SpaceSaving<uint64_t> ss(2000);
    LossyCounting<uint64_t> lc(kTheta / 2);
    StickySampling<uint64_t> sticky(kTheta / 2, kTheta, 0.01, 19);
    TopKTracker<uint64_t> topk(200, 8192, 4);
    for (uint64_t i = 0; i < kN; i++) {
      const uint64_t item = zipf.Next();
      exact[item]++;
      mg.Add(item);
      ss.Add(item);
      lc.Add(item);
      sticky.Add(item);
      topk.Add(item);
    }
    // Query each at the theta threshold, adjusted per algorithm contract.
    const Quality q_mg =
        Score(exact, mg.HeavyHitters(kThreshold - mg.MaxError()), kThreshold,
              mg.size());
    const Quality q_ss =
        Score(exact, ss.HeavyHitters(kThreshold), kThreshold, ss.size());
    const Quality q_lc = Score(
        exact,
        lc.HeavyHitters(kThreshold -
                        static_cast<uint64_t>(kTheta / 2 * kN)),
        kThreshold, lc.size());
    const Quality q_st = Score(
        exact,
        sticky.HeavyHitters(kThreshold -
                            static_cast<uint64_t>(kTheta / 2 * kN)),
        kThreshold, sticky.size());
    const Quality q_tk =
        Score(exact, topk.TopK(), kThreshold, 200);

    Row("%6.2f %-14s %7.1f%% %9.1f%% %9.2f%% %10zu", skew, "misra-gries",
        100 * q_mg.recall, 100 * q_mg.precision, 100 * q_mg.avg_rel_err,
        q_mg.space_entries);
    Row("%6s %-14s %7.1f%% %9.1f%% %9.2f%% %10zu", "", "space-saving",
        100 * q_ss.recall, 100 * q_ss.precision, 100 * q_ss.avg_rel_err,
        q_ss.space_entries);
    Row("%6s %-14s %7.1f%% %9.1f%% %9.2f%% %10zu", "", "lossy-counting",
        100 * q_lc.recall, 100 * q_lc.precision, 100 * q_lc.avg_rel_err,
        q_lc.space_entries);
    Row("%6s %-14s %7.1f%% %9.1f%% %9.2f%% %10zu", "", "sticky-sampling",
        100 * q_st.recall, 100 * q_st.precision, 100 * q_st.avg_rel_err,
        q_st.space_entries);
    Row("%6s %-14s %7.1f%% %9.1f%% %9.2f%% %10zu", "", "cms-topk",
        100 * q_tk.recall, 100 * q_tk.precision, 100 * q_tk.avg_rel_err,
        q_tk.space_entries);
  }
  Row("paper-shape check (per [65]): counter-based methods (SpaceSaving)");
  Row("achieve 100%% recall with high precision at small space; all methods");
  Row("improve with skew.");

  bench::TableTitle("A-cms-conservative",
                    "conservative update halves (or better) CMS overestimate");
  Row("%10s | %14s %14s | %10s", "width", "plain avg-over",
      "conservative", "ratio");
  workload::ZipfGenerator zipf(1000000, 1.05, 23);
  std::map<uint64_t, uint64_t> exact;
  std::vector<uint64_t> stream;
  stream.reserve(kN / 2);
  for (uint64_t i = 0; i < kN / 2; i++) {
    const uint64_t item = zipf.Next();
    stream.push_back(item);
    exact[item]++;
  }
  for (uint32_t width : {512u, 2048u, 8192u}) {
    CountMinSketch plain(width, 4, false);
    CountMinSketch conservative(width, 4, true);
    for (uint64_t item : stream) {
      plain.Add(item);
      conservative.Add(item);
    }
    double over_plain = 0;
    double over_cons = 0;
    for (const auto& [item, count] : exact) {
      over_plain += static_cast<double>(plain.Estimate(item) - count);
      over_cons += static_cast<double>(conservative.Estimate(item) - count);
    }
    over_plain /= static_cast<double>(exact.size());
    over_cons /= static_cast<double>(exact.size());
    Row("%10u | %14.1f %14.1f | %9.2fx", width, over_plain, over_cons,
        over_plain / std::max(over_cons, 1e-9));
  }

  bench::TableTitle("T1-frequent/range",
                    "dyadic Count-Min: range counts & quantiles from point "
                    "sketches (CM paper §4 [66])");
  {
    DyadicCountMin dcm(16, 4096, 5);
    workload::ZipfGenerator value_gen(1 << 16, 0.4, 29);
    std::vector<uint32_t> values;
    const int n = 500000;
    values.reserve(n);
    for (int i = 0; i < n; i++) {
      const uint32_t v = static_cast<uint32_t>(value_gen.Next());
      dcm.Add(v);
      values.push_back(v);
    }
    Row("%18s | %12s %12s", "range", "exact", "dyadic-CM");
    for (auto [lo, hi] : std::vector<std::pair<uint32_t, uint32_t>>{
             {0, 100}, {0, 1000}, {500, 5000}, {10000, 65535}}) {
      uint64_t exact_count = 0;
      for (uint32_t v : values) {
        if (v >= lo && v <= hi) exact_count++;
      }
      Row("[%7u, %7u] | %12llu %12llu", lo, hi,
          static_cast<unsigned long long>(exact_count),
          static_cast<unsigned long long>(dcm.EstimateRange(lo, hi)));
    }
    std::vector<uint32_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    Row("quantiles: p50 dyadic=%u exact=%u, p90 dyadic=%u exact=%u",
        dcm.Quantile(0.5), sorted[n / 2], dcm.Quantile(0.9),
        sorted[n * 9 / 10]);
    Row("memory: %zu KB across 17 levels", dcm.MemoryBytes() / 1024);
  }
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
