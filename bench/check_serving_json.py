#!/usr/bin/env python3
"""Validates the I-serving-qps JSON emitted by `bench_f1_lambda --serving`.

Usage: check_serving_json.py PATH

Checks, in order:
  * the file parses as JSON and carries a "serving_bench" object;
  * the pair-consistency gate passed (no query ever observed batch
    coverage beyond total coverage — the snapshot-isolation contract);
  * every cell has the expected keys with sane values, and mutex/frontend
    runs come in pairs per (readers, tenants);
  * the speedups array covers every pair with positive ratios;
  * frontend cells actually used the cache and account every query
    (served == queries when nothing was rejected);
  * the embedded "serving" telemetry section is present with per-tenant
    rows (its schema is validated by `telemetry_schema_check --serving`).

Exit 0 on success, 1 with a diagnostic on the first failure. Throughput
ratios are NOT asserted here — a loaded CI host must not flake the suite;
the measured speedups live in EXPERIMENTS.md (I-serving-qps).
"""

import json
import sys

CELL_KEYS = {
    "mode", "readers", "tenants", "seconds", "queries", "qps", "p50_us",
    "p99_us", "ingest_records", "ingest_per_sec", "served",
    "rejected_quota", "rejected_queue", "cache_hits", "cache_misses",
}


def fail(msg):
    print("check_serving_json: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_serving_json.py PATH")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail("cannot load %s: %s" % (sys.argv[1], e))

    bench = doc.get("serving_bench")
    if not isinstance(bench, dict):
        fail("no \"serving_bench\" object in %s" % sys.argv[1])
    if bench.get("pair_consistent") is not True:
        fail("pair_consistent is not true: a query observed a torn "
             "(batch, speed) pair")

    cells = bench.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("serving_bench.cells missing or empty")
    pairs = {}
    for cell in cells:
        missing = CELL_KEYS - set(cell)
        if missing:
            fail("cell %r missing keys %s" % (cell.get("mode"),
                                              sorted(missing)))
        if cell["mode"] not in ("mutex", "frontend"):
            fail("bad mode %r" % cell["mode"])
        if cell["readers"] <= 0 or cell["tenants"] <= 0:
            fail("non-positive readers/tenants in a cell")
        if cell["seconds"] <= 0 or cell["queries"] <= 0 or cell["qps"] <= 0:
            fail("non-positive seconds/queries/qps in %s r%d t%d" %
                 (cell["mode"], cell["readers"], cell["tenants"]))
        if cell["ingest_records"] <= 0:
            fail("ingest thread appended nothing in %s r%d t%d" %
                 (cell["mode"], cell["readers"], cell["tenants"]))
        if cell["mode"] == "frontend":
            accounted = (cell["served"] + cell["rejected_quota"] +
                         cell["rejected_queue"])
            if accounted < cell["queries"]:
                fail("frontend cell r%d t%d accounts %d of %d queries" %
                     (cell["readers"], cell["tenants"], accounted,
                      cell["queries"]))
        key = (cell["readers"], cell["tenants"])
        pairs.setdefault(key, set()).add(cell["mode"])
    for key, modes in pairs.items():
        if modes != {"mutex", "frontend"}:
            fail("cell (readers=%d, tenants=%d) lacks a mutex/frontend "
                 "pair (has %s)" % (key[0], key[1], sorted(modes)))
    if not any(c["mode"] == "frontend" and c["cache_hits"] > 0
               for c in cells):
        fail("no frontend cell ever hit the result cache")

    speedups = bench.get("speedups")
    if not isinstance(speedups, list):
        fail("serving_bench.speedups missing")
    covered = {(s["readers"], s["tenants"]) for s in speedups}
    if covered != set(pairs):
        fail("speedups cover %s but cells pair %s" %
             (sorted(covered), sorted(pairs)))
    for s in speedups:
        if s["speedup"] <= 0 or s["mutex_qps"] <= 0 or s["frontend_qps"] <= 0:
            fail("non-positive speedup entry for readers=%d tenants=%d" %
                 (s["readers"], s["tenants"]))

    serving = doc.get("serving")
    if not isinstance(serving, dict):
        fail("no embedded \"serving\" telemetry section")
    if serving.get("enabled") is not True:
        fail("embedded serving section is not enabled")
    tenants = serving.get("tenants")
    if not isinstance(tenants, list) or not tenants:
        fail("embedded serving section has no per-tenant rows")

    print("check_serving_json: OK (%d cells, %d pairs, %d tenants)" %
          (len(cells), len(pairs), len(tenants)))


if __name__ == "__main__":
    main()
