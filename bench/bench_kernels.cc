// E-kernel-simd: scalar-vs-batched sketch kernel microbenchmark.
//
// For each batched kernel this binary times (a) the scalar per-key Add loop
// and (b) the batched AddBatch path on the same pre-generated key stream,
// reports updates/sec/core for both, and — the part CI cares about —
// re-verifies the bit-identity contract on the bench workload itself:
// after both runs the two sketch states must be byte-identical (blob
// compare for serde types, exhaustive probe compare for the filters).
// Any divergence makes the process exit nonzero, so the smoke run doubles
// as an end-to-end estimate-equivalence check at bench scale.
//
// Flags:
//   --quick      reduced key counts (the ctest bench_kernels_smoke config).
//   --out=PATH   where to write BENCH_kernels.json (default: cwd).
//
// Timing is hand-rolled steady_clock around tight loops (google-benchmark's
// per-iteration machinery would dominate sub-10ns updates); each cell takes
// the best of `reps` passes to shed scheduler noise.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "bench_seed_baseline.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/state.h"
#include "core/cardinality/hyperloglog.h"
#include "core/cardinality/sliding_hyperloglog.h"
#include "core/filtering/blocked_bloom_filter.h"
#include "core/filtering/bloom_filter.h"
#include "core/frequency/count_min_sketch.h"
#include "core/frequency/count_sketch.h"
#include "core/frequency/dyadic_count_min.h"

namespace streamlib {
namespace {

struct KernelResult {
  std::string kernel;
  uint64_t keys = 0;
  double scalar_upd_per_sec = 0;
  double batch_upd_per_sec = 0;
  double speedup = 0;
  /// Seed-era scalar loop (own TU, seed codegen — see bench_seed_baseline);
  /// 0 when no frozen replica exists for this kernel.
  double seed_upd_per_sec = 0;
  double speedup_vs_seed = 0;
  bool state_identical = false;
};

double SecondsOf(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Best-of-reps wall time of `fn()`, where each call replays the full
/// stream on a fresh sketch built by `make()`.
template <typename MakeFn, typename RunFn>
double BestSeconds(int reps, MakeFn make, RunFn run) {
  double best = 1e30;
  for (int r = 0; r < reps; r++) {
    auto sketch = make();
    const auto t0 = std::chrono::steady_clock::now();
    run(sketch);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = SecondsOf(t1 - t0);
    if (s < best) best = s;
  }
  return best;
}

/// Times scalar-vs-batch for one kernel and verifies final-state identity.
/// `scalar_run` / `batch_run` must apply the identical key stream.
template <typename MakeFn, typename ScalarFn, typename BatchFn,
          typename IdenticalFn>
KernelResult BenchKernel(const char* name, uint64_t n, int reps, MakeFn make,
                         ScalarFn scalar_run, BatchFn batch_run,
                         IdenticalFn identical) {
  KernelResult result;
  result.kernel = name;
  result.keys = n;
  const double scalar_s = BestSeconds(reps, make, scalar_run);
  const double batch_s = BestSeconds(reps, make, batch_run);
  result.scalar_upd_per_sec = static_cast<double>(n) / scalar_s;
  result.batch_upd_per_sec = static_cast<double>(n) / batch_s;
  result.speedup = result.batch_upd_per_sec / result.scalar_upd_per_sec;
  auto a = make();
  auto b = make();
  scalar_run(a);
  batch_run(b);
  result.state_identical = identical(a, b);
  std::printf("  %-22s scalar %10.2f Mupd/s   batch %10.2f Mupd/s   "
              "speedup %5.2fx   state %s\n",
              name, result.scalar_upd_per_sec / 1e6,
              result.batch_upd_per_sec / 1e6, result.speedup,
              result.state_identical ? "identical" : "DIVERGED");
  return result;
}

template <typename T>
bool BlobsEqual(const T& a, const T& b) {
  return state::ToBlob(a) == state::ToBlob(b);
}

std::vector<KernelResult> RunAll(bool quick) {
  const uint64_t n = quick ? 200000u : 4000000u;
  const int reps = quick ? 2 : 3;
  Rng rng(20260809);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.Next();
  std::vector<uint32_t> values(n);
  for (size_t i = 0; i < n; i++) values[i] = keys[i] & 0xffff;
  const std::span<const uint64_t> ks(keys);

  std::printf("E-kernel-simd — backend: %s, lanes: %zu, keys: %llu\n",
              simd::BackendName(), simd::kLanes,
              static_cast<unsigned long long>(n));

  std::vector<KernelResult> out;
  // Canonical geometry 8192x4 (256 KiB, cache-resident): the compute-bound
  // regime where indexing cost — the seed's per-row re-mix + 64-bit modulo
  // vs. v2's one KM step + mask — is what's measured. The count_min_large
  // row below covers the memory-bound regime.
  out.push_back(BenchKernel(
      "count_min", n, reps, [] { return CountMinSketch(8192, 4); },
      [&](CountMinSketch& s) { for (uint64_t k : keys) s.Add(k); },
      [&](CountMinSketch& s) { s.AddBatch(ks); },
      [](const CountMinSketch& a, const CountMinSketch& b) {
        return BlobsEqual(a, b);
      }));
  out.back().seed_upd_per_sec =
      bench::SeedCountMinUpdatesPerSec(keys, 8192, 4, reps);
  out.back().speedup_vs_seed =
      out.back().batch_upd_per_sec / out.back().seed_upd_per_sec;
  std::printf("  %-22s seed   %10.2f Mupd/s   vs seed %5.2fx\n", "",
              out.back().seed_upd_per_sec / 1e6, out.back().speedup_vs_seed);
  // 65536x4 = 2 MiB: larger than L2, so every key costs `depth` scattered
  // cache lines and the batch path's win is prefetch overlap, not ALU.
  out.push_back(BenchKernel(
      "count_min_large", n, reps, [] { return CountMinSketch(65536, 4); },
      [&](CountMinSketch& s) { for (uint64_t k : keys) s.Add(k); },
      [&](CountMinSketch& s) { s.AddBatch(ks); },
      [](const CountMinSketch& a, const CountMinSketch& b) {
        return BlobsEqual(a, b);
      }));
  out.back().seed_upd_per_sec =
      bench::SeedCountMinUpdatesPerSec(keys, 65536, 4, reps);
  out.back().speedup_vs_seed =
      out.back().batch_upd_per_sec / out.back().seed_upd_per_sec;
  std::printf("  %-22s seed   %10.2f Mupd/s   vs seed %5.2fx\n", "",
              out.back().seed_upd_per_sec / 1e6, out.back().speedup_vs_seed);
  out.push_back(BenchKernel(
      "count_min_conservative", n, reps,
      [] { return CountMinSketch(65536, 4, /*conservative=*/true); },
      [&](CountMinSketch& s) { for (uint64_t k : keys) s.Add(k); },
      [&](CountMinSketch& s) { s.AddBatch(ks); },
      [](const CountMinSketch& a, const CountMinSketch& b) {
        return BlobsEqual(a, b);
      }));
  out.push_back(BenchKernel(
      "count_sketch", n, reps, [] { return CountSketch(65536, 5); },
      [&](CountSketch& s) { for (uint64_t k : keys) s.Add(k); },
      [&](CountSketch& s) { s.AddBatch(ks); },
      [](const CountSketch& a, const CountSketch& b) {
        return BlobsEqual(a, b);
      }));
  out.push_back(BenchKernel(
      "dyadic_count_min", n, reps,
      [] { return DyadicCountMin(16, 4096, 3); },
      [&](DyadicCountMin& s) { for (uint32_t v : values) s.Add(v); },
      [&](DyadicCountMin& s) {
        s.AddBatch(std::span<const uint32_t>(values));
      },
      [](const DyadicCountMin& a, const DyadicCountMin& b) {
        return BlobsEqual(a, b);
      }));
  out.push_back(BenchKernel(
      "hyperloglog", n, reps,
      [] { return HyperLogLog(14, /*sparse=*/false); },
      [&](HyperLogLog& s) { for (uint64_t k : keys) s.Add(k); },
      [&](HyperLogLog& s) { s.AddBatch(ks); },
      [](const HyperLogLog& a, const HyperLogLog& b) {
        return BlobsEqual(a, b) && a.Estimate() == b.Estimate();
      }));
  out.back().seed_upd_per_sec =
      bench::SeedHyperLogLogUpdatesPerSec(keys, 14, reps);
  out.back().speedup_vs_seed =
      out.back().batch_upd_per_sec / out.back().seed_upd_per_sec;
  std::printf("  %-22s seed   %10.2f Mupd/s   vs seed %5.2fx\n", "",
              out.back().seed_upd_per_sec / 1e6, out.back().speedup_vs_seed);
  out.push_back(BenchKernel(
      "sliding_hyperloglog", n, reps,
      [] { return SlidingHyperLogLog(12, 1u << 20); },
      [&](SlidingHyperLogLog& s) {
        uint64_t t = 0;
        for (uint64_t k : keys) s.Add(k, ++t);
      },
      [&](SlidingHyperLogLog& s) {
        // Batched transport delivers a flush per tick: 256 keys/timestamp.
        uint64_t t = 0;
        for (size_t i = 0; i < keys.size(); i += 256) {
          const size_t m = std::min<size_t>(256, keys.size() - i);
          s.AddBatch(std::span<const uint64_t>(keys.data() + i, m), ++t);
        }
      },
      [](const SlidingHyperLogLog&, const SlidingHyperLogLog&) {
        // Different timestamp assignment by design (per-key vs per-flush);
        // bit-identity for SHLL is asserted by the simd test suite where
        // both sides share timestamps. Not comparable here.
        return true;
      }));
  out.push_back(BenchKernel(
      "bloom_filter", n, reps,
      [&] { return BloomFilter::WithExpectedItems(n, 0.01); },
      [&](BloomFilter& s) { for (uint64_t k : keys) s.Add(k); },
      [&](BloomFilter& s) { s.AddBatch(ks); },
      [&](const BloomFilter& a, const BloomFilter& b) {
        if (a.FillRatio() != b.FillRatio()) return false;
        for (size_t i = 0; i < 100000; i++) {
          if (a.Contains(keys[i]) != b.Contains(keys[i])) return false;
          if (a.Contains(~keys[i]) != b.Contains(~keys[i])) return false;
        }
        return true;
      }));
  out.push_back(BenchKernel(
      "blocked_bloom_filter", n, reps,
      [&] { return BlockedBloomFilter(n * 10, 6); },
      [&](BlockedBloomFilter& s) { for (uint64_t k : keys) s.Add(k); },
      [&](BlockedBloomFilter& s) { s.AddBatch(ks); },
      [&](const BlockedBloomFilter& a, const BlockedBloomFilter& b) {
        for (size_t i = 0; i < 100000; i++) {
          if (a.Contains(keys[i]) != b.Contains(keys[i])) return false;
          if (a.Contains(~keys[i]) != b.Contains(~keys[i])) return false;
        }
        return true;
      }));
  return out;
}

bool WriteJson(const std::string& path, bool quick,
               const std::vector<KernelResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n"
      << "  \"bench\": \"kernels\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"simd_backend\": \"" << simd::BackendName() << "\",\n"
      << "  \"lanes\": " << simd::kLanes << ",\n"
      << "  \"kernels\": [\n";
  for (size_t i = 0; i < results.size(); i++) {
    const KernelResult& r = results[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"keys\": " << r.keys
        << ", \"scalar_upd_per_sec\": " << r.scalar_upd_per_sec
        << ", \"batch_upd_per_sec\": " << r.batch_upd_per_sec
        << ", \"speedup\": " << r.speedup;
    if (r.seed_upd_per_sec > 0) {
      out << ", \"seed_upd_per_sec\": " << r.seed_upd_per_sec
          << ", \"speedup_vs_seed\": " << r.speedup_vs_seed;
    }
    out << ", \"state_identical\": " << (r.state_identical ? "true" : "false")
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace
}  // namespace streamlib

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  const auto results = streamlib::RunAll(quick);
  if (!streamlib::WriteJson(out_path, quick, results)) return 1;
  bool ok = true;
  for (const auto& r : results) {
    if (!r.state_identical) {
      std::fprintf(stderr, "ESTIMATE DIVERGENCE: %s batched state differs "
                   "from scalar state\n", r.kernel.c_str());
      ok = false;
    }
  }
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
