// Reproduction harness for Table 2 (streaming platforms) — the design axes
// the paper's Section 3 narrative turns on, measured on the in-process
// topology engine:
//   * A-executor-model: Storm-style multiplexed executors vs Heron-style
//     dedicated per-task threads ("running each task in a process of its
//     own ... improved performance").
//   * A-ack-overhead: at-most-once vs at-least-once (XOR-ledger acking,
//     Storm's reliability model) — the throughput cost of guarantees.
//   * queue capacity: the backpressure knob.
//
// Workload: the word-count topology every platform paper uses
// (spout -> splitter x3 -> fields-grouped counter x4 -> sink).

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/event_time.h"
#include "platform/topology.h"
#include "workload/zipf.h"

namespace {

using namespace streamlib;
using namespace streamlib::platform;

struct RunResult {
  double throughput_ktps;  // Spout tuples per second / 1000.
  double p50_latency_us;
  double p99_latency_us;
  uint64_t backpressure_stalls;
  uint64_t completed;
  uint64_t failed;
};

RunResult RunWordCount(uint64_t n_tuples, const EngineConfig& config) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  auto sink = std::make_shared<TupleSink>();

  TopologyBuilder builder;
  builder.AddSpout(
      "spout",
      [counter, n_tuples]() -> std::unique_ptr<Spout> {
        auto zipf = std::make_shared<workload::ZipfGenerator>(10000, 1.1,
                                                              counter->load() + 7);
        return std::make_unique<GeneratorSpout>(
            [counter, n_tuples, zipf]() -> std::optional<Tuple> {
              if (counter->fetch_add(1) >= n_tuples) return std::nullopt;
              std::string word("w");  // Avoids GCC 12 -Wrestrict FP.
              word += std::to_string(zipf->Next() % 5000);
              return Tuple::Of(std::move(word));
            });
      },
      2);
  builder.AddBolt(
      "split",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& in, OutputCollector* out) {
              out->Emit(Tuple::Of(in.Str(0)));
            });
      },
      3, {{"spout", Grouping::Shuffle()}});
  builder.AddBolt(
      "count", []() -> std::unique_ptr<Bolt> {
        return std::make_unique<CountingBolt>();
      },
      4, {{"split", Grouping::Fields(0)}});
  builder.AddBolt(
      "sink",
      [sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(sink.get());
      },
      1, {{"count", Grouping::Global()}});

  TopologyEngine engine(builder.Build().value(), config);
  WallTimer timer;
  engine.Run();
  const double seconds = timer.ElapsedSeconds();

  RunResult result;
  result.throughput_ktps =
      static_cast<double>(n_tuples) / seconds / 1000.0;
  auto& split_metrics = engine.metrics().ForComponent("count");
  result.p50_latency_us = split_metrics.LatencyPercentileNanos(0.5) / 1000.0;
  result.p99_latency_us = split_metrics.LatencyPercentileNanos(0.99) / 1000.0;
  result.backpressure_stalls =
      engine.metrics().ForComponent("spout").backpressure_stalls() +
      engine.metrics().ForComponent("split").backpressure_stalls();
  result.completed = engine.completed_roots();
  result.failed = engine.failed_roots();
  return result;
}

void BM_TopologyWordCount(benchmark::State& state) {
  // End-to-end engine runs (30k tuples each) under the default config.
  for (auto _ : state) {
    EngineConfig config;
    const RunResult r = RunWordCount(30000, config);
    benchmark::DoNotOptimize(r.throughput_ktps);
  }
  state.SetItemsProcessed(state.iterations() * 30000);
}
BENCHMARK(BM_TopologyWordCount)->Unit(benchmark::kMillisecond);

void PrintTables() {
  using bench::Row;
  const uint64_t kTuples = 300000;

  bench::TableTitle("T2-platforms / A-executor-model",
                    "Storm-style multiplexing vs Heron-style dedicated "
                    "executors (word count, 8 bolt tasks)");
  Row("%-26s | %12s %12s %12s", "execution model", "ktuples/s",
      "p50 lat us", "p99 lat us");
  {
    EngineConfig config;
    config.mode = ExecutionMode::kDedicated;
    const RunResult r = RunWordCount(kTuples, config);
    Row("%-26s | %12.0f %12.0f %12.0f", "dedicated (Heron-like)",
        r.throughput_ktps, r.p50_latency_us, r.p99_latency_us);
  }
  for (uint32_t threads : {1u, 2u, 4u}) {
    EngineConfig config;
    config.mode = ExecutionMode::kMultiplexed;
    config.multiplexed_threads = threads;
    const RunResult r = RunWordCount(kTuples, config);
    char label[64];
    std::snprintf(label, sizeof(label), "multiplexed x%u (Storm-like)",
                  threads);
    Row("%-26s | %12.0f %12.0f %12.0f", label, r.throughput_ktps,
        r.p50_latency_us, r.p99_latency_us);
  }
  Row("paper-shape check (Heron, Section 3): a starved multiplexed pool");
  Row("(x1) loses to dedicated executors on throughput and median latency");
  Row("because every tuple crosses the multiplexer's polling loop; growing");
  Row("the pool recovers throughput — but only dedicated executors get the");
  Row("right parallelism with no pool-size tuning, Heron's operability");
  Row("argument. (Multiplexed mode also buffers unboundedly under");
  Row("imbalance — see the backpressure table — the other Storm pain.)");

  bench::TableTitle("A-ack-overhead",
                    "delivery guarantees: at-most-once vs at-least-once "
                    "(XOR-ledger acker)");
  Row("%-26s | %12s %12s %12s", "semantics", "ktuples/s", "completed",
      "failed");
  {
    EngineConfig config;
    config.semantics = DeliverySemantics::kAtMostOnce;
    const RunResult r = RunWordCount(kTuples, config);
    Row("%-26s | %12.0f %12s %12s", "at-most-once", r.throughput_ktps, "-",
        "-");
  }
  {
    EngineConfig config;
    config.semantics = DeliverySemantics::kAtLeastOnce;
    const RunResult r = RunWordCount(kTuples, config);
    Row("%-26s | %12.0f %12llu %12llu", "at-least-once",
        r.throughput_ktps, static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed));
  }
  Row("paper-shape check (Storm, Section 3): tuple-tree tracking costs");
  Row("throughput — every edge is ledgered — in exchange for the");
  Row("completed/failed accounting that enables replay.");

  bench::TableTitle("T2-platforms/backpressure",
                    "bounded queues: capacity vs stalls (flow control)");
  Row("%-14s | %12s %14s", "queue cap", "ktuples/s", "producer stalls");
  for (size_t capacity : {16, 256, 4096}) {
    EngineConfig config;
    config.queue_capacity = capacity;
    const RunResult r = RunWordCount(kTuples, config);
    Row("%-14zu | %12.0f %14llu", capacity, r.throughput_ktps,
        static_cast<unsigned long long>(r.backpressure_stalls));
  }
  Row("paper-shape check: small queues convert imbalance into producer");
  Row("stalls (backpressure) rather than unbounded buffering — the");
  Row("flow-control requirement the platform section lists.");

  bench::TableTitle("T2-platforms/out-of-order",
                    "event-time windows + watermarks: lateness bound vs "
                    "drops and correctness (the 'stream imperfections' "
                    "requirement)");
  Row("%12s | %10s %14s %14s", "lateness", "drops", "drop rate",
      "window counts");
  for (int64_t lateness : {0, 20, 100, 400}) {
    // Events arrive shuffled by up to +-100 positions around real time.
    platform::EventTimeWindower<int> windower(100, lateness);
    Rng rng(881);
    uint64_t fired_total = 0;
    const int kEvents = 50000;
    for (int i = 0; i < kEvents; i++) {
      const int64_t event_time =
          i + static_cast<int64_t>(rng.NextBounded(200)) - 100;
      for (const auto& window : windower.Add(event_time, 1)) {
        fired_total += window.values.size();
      }
    }
    for (const auto& window : windower.Flush()) {
      fired_total += window.values.size();
    }
    Row("%12lld | %10llu %13.2f%% %14llu",
        static_cast<long long>(lateness),
        static_cast<unsigned long long>(windower.late_drops()),
        100.0 * static_cast<double>(windower.late_drops()) / kEvents,
        static_cast<unsigned long long>(fired_total));
  }
  Row("paper-shape check: drops + windowed always equals the event count");
  Row("(nothing silently lost); raising the lateness bound past the");
  Row("disorder spread (two adjacent arrivals can differ by 200 here)");
  Row("drives drops to zero — bounded, explicit out-of-order handling.");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
