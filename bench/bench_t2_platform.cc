// Reproduction harness for Table 2 (streaming platforms) — the design axes
// the paper's Section 3 narrative turns on, measured on the in-process
// topology engine:
//   * A-executor-model: Storm-style multiplexed executors vs Heron-style
//     dedicated per-task threads ("running each task in a process of its
//     own ... improved performance").
//   * A-ack-overhead: at-most-once vs at-least-once (XOR-ledger acking,
//     Storm's reliability model) — the throughput cost of guarantees.
//   * queue capacity: the backpressure knob.
//   * A-transport-batching: the batched data plane (per-target staging
//     buffers + batch queue ops + SPSC rings) vs the per-tuple transport
//     it replaced — measured as a full mode x semantics x grouping matrix
//     on a 1-spout/4-bolt topology, with results written to
//     BENCH_platform.json.
//
// Flags (handled before google-benchmark sees argv):
//   --quick      reduced tuple counts, matrix + JSON only (the ctest
//                smoke run) — skips the timing section and word-count
//                tables.
//   --out=PATH   where to write BENCH_platform.json (default: cwd).
//   --telemetry-out=PATH  run a telemetry-instrumented word count (sampler
//                + sampled tracing) and write the TelemetryReport JSON to
//                PATH (validated by the telemetry_schema_check ctest).
//   --record-out=PATH  run the word count with the flight recorder
//                (recorder.h) attached and write the SLFR recording to
//                PATH — inspectable with `streamlib_debug dump-trace`.
//   --rescale    run ONLY the G-rescale acceptance bench: exactly-once
//                crash/resume with the last complete epoch's key-grouped
//                frames resharded N -> 2N, verified against an unsharded
//                baseline (recovery + rescale timings to stdout).
//   --fusion     run ONLY the H-fusion matrix (fused-operator chains vs
//                queued execution, DESIGN.md §13) plus the fused-vs-queued
//                sketch bit-identity check, writing a self-contained JSON
//                to --out (the bench_fusion_smoke ctest fixture).
//   --shards=N   run ONLY the D-shard-merge sweep: key-sharded
//                SketchBolt tasks (1..N, powers of two) feeding a global
//                SketchCombinerBolt, verifying merged estimates equal a
//                single-instance run and measuring throughput per shard
//                count. Writes BENCH_shard_merge.json (--shards-out=PATH
//                to relocate).
//
// Workload: the word-count topology every platform paper uses
// (spout -> splitter x3 -> fields-grouped counter x4 -> sink).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/state.h"
#include "common/timer.h"
#include "core/cardinality/hyperloglog.h"
#include "core/frequency/count_min_sketch.h"
#include "platform/checkpoint.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/epoch.h"
#include "platform/event_time.h"
#include "platform/recorder.h"
#include "platform/stream_operators.h"
#include "platform/topology.h"
#include "workload/zipf.h"

namespace {

using namespace streamlib;
using namespace streamlib::platform;

struct RunResult {
  double throughput_ktps;  // Spout tuples per second / 1000.
  double p50_latency_us;
  double p99_latency_us;
  uint64_t backpressure_stalls;
  uint64_t completed;
  uint64_t failed;
};

/// The shared word-count topology (spout x2 -> split x3 -> count x4 ->
/// sink x1) used by the timing sections and the telemetry report run.
Topology MakeWordCountTopology(uint64_t n_tuples,
                               std::shared_ptr<TupleSink> sink) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  TopologyBuilder builder;
  builder.AddSpout(
      "spout",
      [counter, n_tuples]() -> std::unique_ptr<Spout> {
        auto zipf = std::make_shared<workload::ZipfGenerator>(10000, 1.1,
                                                              counter->load() + 7);
        return std::make_unique<GeneratorSpout>(
            [counter, n_tuples, zipf]() -> std::optional<Tuple> {
              if (counter->fetch_add(1) >= n_tuples) return std::nullopt;
              std::string word("w");  // Avoids GCC 12 -Wrestrict FP.
              word += std::to_string(zipf->Next() % 5000);
              return Tuple::Of(std::move(word));
            });
      },
      2);
  builder.AddBolt(
      "split",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& in, OutputCollector* out) {
              out->Emit(Tuple::Of(in.Str(0)));
            });
      },
      3, {{"spout", Grouping::Shuffle()}});
  builder.AddBolt(
      "count", []() -> std::unique_ptr<Bolt> {
        return std::make_unique<CountingBolt>();
      },
      4, {{"split", Grouping::Fields(0)}});
  builder.AddBolt(
      "sink",
      [sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(sink.get());
      },
      1, {{"count", Grouping::Global()}});

  return builder.Build().value();
}

RunResult RunWordCount(uint64_t n_tuples, const EngineConfig& config) {
  auto sink = std::make_shared<TupleSink>();
  TopologyEngine engine(MakeWordCountTopology(n_tuples, sink), config);
  WallTimer timer;
  engine.Run();
  const double seconds = timer.ElapsedSeconds();

  RunResult result;
  result.throughput_ktps =
      static_cast<double>(n_tuples) / seconds / 1000.0;
  auto count_metrics = engine.metrics().ForComponent("count");
  result.p50_latency_us = count_metrics.LatencyPercentileNanos(0.5) / 1000.0;
  result.p99_latency_us = count_metrics.LatencyPercentileNanos(0.99) / 1000.0;
  result.backpressure_stalls =
      engine.metrics().ForComponent("spout").backpressure_stalls() +
      engine.metrics().ForComponent("split").backpressure_stalls();
  result.completed = engine.completed_roots();
  result.failed = engine.failed_roots();
  return result;
}

void BM_TopologyWordCount(benchmark::State& state) {
  // End-to-end engine runs (30k tuples each) under the default config.
  for (auto _ : state) {
    EngineConfig config;
    const RunResult r = RunWordCount(30000, config);
    benchmark::DoNotOptimize(r.throughput_ktps);
  }
  state.SetItemsProcessed(state.iterations() * 30000);
}
BENCHMARK(BM_TopologyWordCount)->Unit(benchmark::kMillisecond);

void PrintTables() {
  using bench::Row;
  const uint64_t kTuples = 300000;

  bench::TableTitle("T2-platforms / A-executor-model",
                    "Storm-style multiplexing vs Heron-style dedicated "
                    "executors (word count, 8 bolt tasks)");
  Row("%-26s | %12s %12s %12s", "execution model", "ktuples/s",
      "p50 lat us", "p99 lat us");
  {
    EngineConfig config;
    config.mode = ExecutionMode::kDedicated;
    const RunResult r = RunWordCount(kTuples, config);
    Row("%-26s | %12.0f %12.0f %12.0f", "dedicated (Heron-like)",
        r.throughput_ktps, r.p50_latency_us, r.p99_latency_us);
  }
  for (uint32_t threads : {1u, 2u, 4u}) {
    EngineConfig config;
    config.mode = ExecutionMode::kMultiplexed;
    config.multiplexed_threads = threads;
    const RunResult r = RunWordCount(kTuples, config);
    char label[64];
    std::snprintf(label, sizeof(label), "multiplexed x%u (Storm-like)",
                  threads);
    Row("%-26s | %12.0f %12.0f %12.0f", label, r.throughput_ktps,
        r.p50_latency_us, r.p99_latency_us);
  }
  Row("paper-shape check (Heron, Section 3): a starved multiplexed pool");
  Row("(x1) loses to dedicated executors on throughput and median latency");
  Row("because every tuple crosses the multiplexer's polling loop; growing");
  Row("the pool recovers throughput — but only dedicated executors get the");
  Row("right parallelism with no pool-size tuning, Heron's operability");
  Row("argument. (Multiplexed mode also buffers unboundedly under");
  Row("imbalance — see the backpressure table — the other Storm pain.)");

  bench::TableTitle("A-ack-overhead",
                    "delivery guarantees: at-most-once vs at-least-once "
                    "(XOR-ledger acker)");
  Row("%-26s | %12s %12s %12s", "semantics", "ktuples/s", "completed",
      "failed");
  {
    EngineConfig config;
    config.semantics = DeliverySemantics::kAtMostOnce;
    const RunResult r = RunWordCount(kTuples, config);
    Row("%-26s | %12.0f %12s %12s", "at-most-once", r.throughput_ktps, "-",
        "-");
  }
  {
    EngineConfig config;
    config.semantics = DeliverySemantics::kAtLeastOnce;
    const RunResult r = RunWordCount(kTuples, config);
    Row("%-26s | %12.0f %12llu %12llu", "at-least-once",
        r.throughput_ktps, static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed));
  }
  Row("paper-shape check (Storm, Section 3): tuple-tree tracking costs");
  Row("throughput — every edge is ledgered — in exchange for the");
  Row("completed/failed accounting that enables replay.");

  bench::TableTitle("T2-platforms/backpressure",
                    "bounded queues: capacity vs stalls (flow control)");
  Row("%-14s | %12s %14s", "queue cap", "ktuples/s", "producer stalls");
  for (size_t capacity : {16, 256, 4096}) {
    EngineConfig config;
    config.queue_capacity = capacity;
    const RunResult r = RunWordCount(kTuples, config);
    Row("%-14zu | %12.0f %14llu", capacity, r.throughput_ktps,
        static_cast<unsigned long long>(r.backpressure_stalls));
  }
  Row("paper-shape check: small queues convert imbalance into producer");
  Row("stalls (backpressure) rather than unbounded buffering — the");
  Row("flow-control requirement the platform section lists.");

  bench::TableTitle("T2-platforms/out-of-order",
                    "event-time windows + watermarks: lateness bound vs "
                    "drops and correctness (the 'stream imperfections' "
                    "requirement)");
  Row("%12s | %10s %14s %14s", "lateness", "drops", "drop rate",
      "window counts");
  for (int64_t lateness : {0, 20, 100, 400}) {
    // Events arrive shuffled by up to +-100 positions around real time.
    platform::EventTimeWindower<int> windower(100, lateness);
    Rng rng(881);
    uint64_t fired_total = 0;
    const int kEvents = 50000;
    for (int i = 0; i < kEvents; i++) {
      const int64_t event_time =
          i + static_cast<int64_t>(rng.NextBounded(200)) - 100;
      for (const auto& window : windower.Add(event_time, 1)) {
        fired_total += window.values.size();
      }
    }
    for (const auto& window : windower.Flush()) {
      fired_total += window.values.size();
    }
    Row("%12lld | %10llu %13.2f%% %14llu",
        static_cast<long long>(lateness),
        static_cast<unsigned long long>(windower.late_drops()),
        100.0 * static_cast<double>(windower.late_drops()) / kEvents,
        static_cast<unsigned long long>(fired_total));
  }
  Row("paper-shape check: drops + windowed always equals the event count");
  Row("(nothing silently lost); raising the lateness bound past the");
  Row("disorder spread (two adjacent arrivals can differ by 200 here)");
  Row("drives drops to zero — bounded, explicit out-of-order handling.");
}

// ---------------------------------------------------------------------------
// A-transport-batching: batched vs per-tuple transport matrix.

struct MatrixCell {
  ExecutionMode mode;
  DeliverySemantics semantics;
  GroupingKind grouping;
  bool batched;  // false = emit/execute batch 1, no SPSC (per-tuple plane).
  uint64_t tuples = 0;
  double seconds = 0;
  double tuples_per_sec = 0;
  double p50_latency_us = 0;
  double p99_latency_us = 0;
  uint64_t flushes = 0;
  double avg_flush_size = 0;
  uint64_t max_queue_depth = 0;
  uint64_t spsc_edges = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
};

const char* ModeName(ExecutionMode mode) {
  return mode == ExecutionMode::kDedicated ? "dedicated" : "multiplexed";
}
const char* SemanticsName(DeliverySemantics s) {
  return s == DeliverySemantics::kAtMostOnce ? "at-most-once"
                                             : "at-least-once";
}
const char* GroupingName(GroupingKind g) {
  return g == GroupingKind::kShuffle ? "shuffle" : "fields";
}

/// One matrix run: generator spout x1 -> trivial work bolt x4. The
/// telemetry knobs default to the engine defaults; the overhead section
/// overrides them to compare instrumented vs dark runs on the same cell.
void RunMatrixCell(MatrixCell& cell,
                   uint32_t telemetry_interval_ms =
                       EngineConfig{}.telemetry_sample_interval_ms,
                   uint32_t trace_every = 0) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  const uint64_t n = cell.tuples;

  TopologyBuilder builder;
  builder.AddSpout(
      "spout",
      [counter, n]() -> std::unique_ptr<Spout> {
        return std::make_unique<GeneratorSpout>(
            [counter, n]() -> std::optional<Tuple> {
              const uint64_t i = counter->fetch_add(1);
              if (i >= n) return std::nullopt;
              return Tuple::Of(static_cast<int64_t>(i));
            });
      },
      1);
  builder.AddBolt(
      "work",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& in, OutputCollector*) {
              benchmark::DoNotOptimize(in.Int(0));
            });
      },
      4,
      {{"spout", cell.grouping == GroupingKind::kShuffle
                     ? Grouping::Shuffle()
                     : Grouping::Fields(0)}});

  EngineConfig config;
  config.mode = cell.mode;
  config.semantics = cell.semantics;
  config.multiplexed_threads = 2;
  config.telemetry_sample_interval_ms = telemetry_interval_ms;
  config.trace_sample_every = trace_every;
  if (!cell.batched) {
    // The pre-batching data plane: one queue operation per tuple, no
    // staging, no SPSC rings.
    config.emit_batch_size = 1;
    config.execute_batch_size = 1;
    config.enable_spsc = false;
  }

  TopologyEngine engine(builder.Build().value(), config);
  WallTimer timer;
  engine.Run();
  cell.seconds = timer.ElapsedSeconds();
  cell.tuples_per_sec = static_cast<double>(n) / cell.seconds;

  auto work = engine.metrics().ForComponent("work");
  auto spout = engine.metrics().ForComponent("spout");
  cell.p50_latency_us = work.LatencyPercentileNanos(0.5) / 1000.0;
  cell.p99_latency_us = work.LatencyPercentileNanos(0.99) / 1000.0;
  cell.flushes = spout.flushes();
  cell.avg_flush_size = spout.AvgFlushSize();
  cell.max_queue_depth = work.max_queue_depth();
  cell.spsc_edges = engine.spsc_edges();
  cell.completed = engine.completed_roots();
  cell.failed = engine.failed_roots();
}

// H-fusion results (defined with the fusion section below) ride along in
// the combined BENCH_platform.json document.
struct FusionCell;
void WriteFusionSection(std::ostream& out, bool sketch_identical,
                        const std::vector<FusionCell>& cells);

bool WriteMatrixJson(const std::string& path, bool quick,
                     const std::vector<MatrixCell>& cells,
                     bool fusion_sketch_identical,
                     const std::vector<FusionCell>& fusion_cells) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"bench_t2_platform\",\n"
      << "  \"experiment\": \"A-transport-batching\",\n"
      << "  \"topology\": \"generator spout x1 -> work bolt x4\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); i++) {
    const MatrixCell& c = cells[i];
    out << "    {\"mode\": \"" << ModeName(c.mode) << "\", \"semantics\": \""
        << SemanticsName(c.semantics) << "\", \"grouping\": \""
        << GroupingName(c.grouping) << "\", \"transport\": \""
        << (c.batched ? "batched" : "unbatched") << "\", \"tuples\": "
        << c.tuples << ", \"seconds\": " << c.seconds
        << ", \"tuples_per_sec\": " << static_cast<uint64_t>(c.tuples_per_sec)
        << ", \"p50_latency_us\": " << c.p50_latency_us
        << ", \"p99_latency_us\": " << c.p99_latency_us
        << ", \"flushes\": " << c.flushes
        << ", \"avg_flush_size\": " << c.avg_flush_size
        << ", \"max_queue_depth\": " << c.max_queue_depth
        << ", \"spsc_edges\": " << c.spsc_edges
        << ", \"completed_roots\": " << c.completed
        << ", \"failed_roots\": " << c.failed << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedups\": [\n";
  // Batched vs unbatched ratio per (mode, semantics, grouping) triple.
  bool first = true;
  for (const MatrixCell& b : cells) {
    if (!b.batched) continue;
    for (const MatrixCell& u : cells) {
      if (u.batched || u.mode != b.mode || u.semantics != b.semantics ||
          u.grouping != b.grouping) {
        continue;
      }
      if (!first) out << ",\n";
      first = false;
      out << "    {\"mode\": \"" << ModeName(b.mode)
          << "\", \"semantics\": \"" << SemanticsName(b.semantics)
          << "\", \"grouping\": \"" << GroupingName(b.grouping)
          << "\", \"speedup\": "
          << (u.tuples_per_sec > 0 ? b.tuples_per_sec / u.tuples_per_sec : 0)
          << "}";
    }
  }
  out << "\n  ],\n";
  WriteFusionSection(out, fusion_sketch_identical, fusion_cells);
  out << "\n}\n";
  return out.good();
}

bool RunTransportMatrix(bool quick, const std::string& out_path,
                        bool fusion_sketch_identical,
                        const std::vector<FusionCell>& fusion_cells) {
  using bench::Row;
  const int reps = quick ? 1 : 2;
  std::vector<MatrixCell> cells;
  for (ExecutionMode mode :
       {ExecutionMode::kDedicated, ExecutionMode::kMultiplexed}) {
    for (DeliverySemantics sem : {DeliverySemantics::kAtMostOnce,
                                  DeliverySemantics::kAtLeastOnce}) {
      for (GroupingKind grouping :
           {GroupingKind::kShuffle, GroupingKind::kFields}) {
        for (bool batched : {true, false}) {
          MatrixCell best;
          best.mode = mode;
          best.semantics = sem;
          best.grouping = grouping;
          best.batched = batched;
          best.tuples = quick ? (sem == DeliverySemantics::kAtMostOnce
                                     ? 50000u
                                     : 20000u)
                              : (sem == DeliverySemantics::kAtMostOnce
                                     ? 1000000u
                                     : 300000u);
          for (int rep = 0; rep < reps; rep++) {
            MatrixCell attempt = best;
            attempt.tuples_per_sec = 0;
            RunMatrixCell(attempt);
            if (attempt.tuples_per_sec > best.tuples_per_sec) best = attempt;
          }
          cells.push_back(best);
        }
      }
    }
  }

  bench::TableTitle("A-transport-batching",
                    "batched lock-amortized transport vs per-tuple "
                    "queue ops (spout x1 -> bolt x4)");
  Row("%-12s %-14s %-8s %-10s | %12s %10s %10s %8s", "mode", "semantics",
      "grouping", "transport", "tuples/s", "avg flush", "p99 us", "spsc");
  for (const MatrixCell& c : cells) {
    Row("%-12s %-14s %-8s %-10s | %12.0f %10.1f %10.0f %8llu",
        ModeName(c.mode), SemanticsName(c.semantics), GroupingName(c.grouping),
        c.batched ? "batched" : "unbatched", c.tuples_per_sec,
        c.avg_flush_size, c.p99_latency_us,
        static_cast<unsigned long long>(c.spsc_edges));
  }
  Row("paper-shape check (Section 3, throughput): amortizing per-tuple");
  Row("synchronization over batches lifts every mode x semantics cell;");
  Row("the single-producer dedicated pipeline additionally rides the");
  Row("lock-free SPSC ring. Unbatched rows replay the per-tuple data");
  Row("plane (emit/execute batch = 1, SPSC off) for the comparison.");

  if (!WriteMatrixJson(out_path, quick, cells, fusion_sketch_identical,
                       fusion_cells)) {
    return false;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return true;
}

/// Telemetry overhead: the dedicated/at-most-once/shuffle batched cell
/// run dark (sampler + tracing off) vs instrumented (10 ms sampler,
/// 1/1024 tracing) — the acceptance bar is instrumented within 5% of
/// dark. Best-of-`reps` per config to denoise scheduler jitter.
void RunTelemetryOverhead(bool quick) {
  using bench::Row;
  const int reps = quick ? 1 : 3;
  const uint64_t n = quick ? 100000u : 1000000u;

  auto best_of = [&](uint32_t interval_ms, uint32_t trace_every) {
    MatrixCell best;
    best.mode = ExecutionMode::kDedicated;
    best.semantics = DeliverySemantics::kAtMostOnce;
    best.grouping = GroupingKind::kShuffle;
    best.batched = true;
    best.tuples = n;
    for (int rep = 0; rep < reps; rep++) {
      MatrixCell attempt = best;
      attempt.tuples_per_sec = 0;
      RunMatrixCell(attempt, interval_ms, trace_every);
      if (attempt.tuples_per_sec > best.tuples_per_sec) best = attempt;
    }
    return best;
  };

  const MatrixCell off = best_of(0, 0);
  const MatrixCell on = best_of(10, 1024);
  const double ratio =
      off.tuples_per_sec > 0 ? on.tuples_per_sec / off.tuples_per_sec : 0;

  bench::TableTitle("B-telemetry-overhead",
                    "10 ms sampler + 1/1024 tracing vs dark run "
                    "(dedicated / at-most-once / shuffle, batched)");
  Row("%-24s | %12s %10s", "telemetry", "tuples/s", "p99 us");
  Row("%-24s | %12.0f %10.0f", "off", off.tuples_per_sec, off.p99_latency_us);
  Row("%-24s | %12.0f %10.0f", "sampler 10ms + trace 1/1024",
      on.tuples_per_sec, on.p99_latency_us);
  Row("instrumented/dark throughput ratio: %.3f (bar: >= 0.95)", ratio);
}

/// Runs the word-count topology with the sampler at 5 ms and tracing at
/// 1/64, then writes the TelemetryReport JSON to `path` and prints the
/// human-readable table. This is what the telemetry_schema_check ctest
/// consumes: the quick run still lasts long enough for >= 2 sampler
/// intervals and emits >= 1 complete trace tree.
bool EmitTelemetryReport(const std::string& path, bool quick) {
  auto sink = std::make_shared<TupleSink>();
  const uint64_t n = quick ? 150000u : 500000u;

  EngineConfig config;
  config.telemetry_sample_interval_ms = 5;
  config.trace_sample_every = 64;

  TopologyEngine engine(MakeWordCountTopology(n, sink), config);
  engine.Run();

  const TelemetryReport report = engine.telemetry().BuildReport();
  report.WriteTable(std::cout);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  report.WriteJson(out);
  if (!out.good()) return false;
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// RunWordCount with the flight recorder attached: builds the topology
/// once so the recording's fingerprint and the engine's topology are the
/// same object, runs, finalizes. `record_path` empty means a dark run
/// through the identical code path (the overhead comparison below).
struct RecordedWordCount {
  RunResult result{};
  uint64_t records = 0;
  uint64_t bytes = 0;
  bool ok = true;
};

RecordedWordCount RunWordCountRecorded(uint64_t n_tuples, EngineConfig config,
                                       const std::string& record_path) {
  RecordedWordCount out;
  auto sink = std::make_shared<TupleSink>();
  Topology topology = MakeWordCountTopology(n_tuples, sink);
  std::unique_ptr<RunRecorder> recorder;
  if (!record_path.empty()) {
    Result<std::unique_ptr<RunRecorder>> created =
        RunRecorder::Create(record_path, config, topology);
    if (!created.ok()) {
      std::fprintf(stderr, "error: recorder create failed: %s\n",
                   created.status().ToString().c_str());
      out.ok = false;
      return out;
    }
    recorder = std::move(created).value();
    config.recorder = recorder.get();
  }

  WallTimer timer;
  double seconds = 0;
  {
    TopologyEngine engine(std::move(topology), config);
    engine.Run();
    seconds = timer.ElapsedSeconds();
    auto count_metrics = engine.metrics().ForComponent("count");
    out.result.throughput_ktps =
        static_cast<double>(n_tuples) / seconds / 1000.0;
    out.result.p50_latency_us =
        count_metrics.LatencyPercentileNanos(0.5) / 1000.0;
    out.result.p99_latency_us =
        count_metrics.LatencyPercentileNanos(0.99) / 1000.0;
    out.result.completed = engine.completed_roots();
    out.result.failed = engine.failed_roots();
  }
  if (recorder != nullptr) {
    const Status finalized = recorder->Finalize();
    if (!finalized.ok()) {
      std::fprintf(stderr, "error: recorder finalize failed: %s\n",
                   finalized.ToString().c_str());
      out.ok = false;
    }
    out.records = recorder->records_written();
    out.bytes = recorder->bytes_written();
  }
  return out;
}

/// --record-out: capture a word-count run to `path` as an SLFR recording
/// and verify it parses back. The quick run is sized like the telemetry
/// fixture run. `streamlib_debug dump-trace --in=PATH` inspects the file
/// (replaying it needs the word-count topology, which only this binary
/// builds — the CLI's replay commands pair with its own demo recordings).
bool EmitRecording(const std::string& path, bool quick) {
  const uint64_t n = quick ? 150000u : 500000u;
  EngineConfig config;
  const RecordedWordCount run = RunWordCountRecorded(n, config, path);
  if (!run.ok) return false;
  const Result<RecordedRun> parsed = ReadRecording(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: recording readback failed: %s\n",
                 parsed.status().ToString().c_str());
    return false;
  }
  std::printf("wrote %s (%llu records, %llu bytes, %.1f ktuples/s, "
              "summary=%s)\n",
              path.c_str(), static_cast<unsigned long long>(run.records),
              static_cast<unsigned long long>(run.bytes),
              run.result.throughput_ktps,
              parsed.value().has_summary ? "yes" : "no");
  return true;
}

/// Recorder overhead: the word-count run dark vs with the flight recorder
/// capturing every spout emission. Runs are *paired* (dark then recording,
/// back to back) and the reported ratio is the median of the per-pair
/// ratios — on a noisy host the absolute numbers drift ±10% between
/// runs, which a best-of-each-side comparison inherits in full, while
/// adjacent paired runs share host state and their ratio stays tight.
/// Acceptance bar: recording within 2% of dark (EXPERIMENTS.md
/// F-record-replay). The scratch recording is deleted afterwards.
void RunRecorderOverhead(bool quick) {
  using bench::Row;
  const int pairs = quick ? 1 : 7;
  const uint64_t n = quick ? 100000u : 1000000u;
  const std::string scratch = "BENCH_record_overhead.slfr";

  // Host throughput drifts by more than the ~2% being measured, so the
  // comparison is paired (dark and recording back to back), the pair
  // order alternates (cancels monotone drift instead of crediting it to
  // whichever side always runs second), a throwaway run warms the page
  // cache and allocator, and the reported number is the median of the
  // per-pair ratios.
  (void)RunWordCountRecorded(n / 4, EngineConfig{}, scratch);
  RecordedWordCount dark_best;
  RecordedWordCount rec_best;
  std::vector<double> ratios;
  for (int i = 0; i < pairs; i++) {
    RecordedWordCount dark;
    RecordedWordCount rec;
    if (i % 2 == 0) {
      dark = RunWordCountRecorded(n, EngineConfig{}, "");
      rec = RunWordCountRecorded(n, EngineConfig{}, scratch);
    } else {
      rec = RunWordCountRecorded(n, EngineConfig{}, scratch);
      dark = RunWordCountRecorded(n, EngineConfig{}, "");
    }
    if (!dark.ok || !rec.ok) continue;
    ratios.push_back(rec.result.throughput_ktps /
                     dark.result.throughput_ktps);
    if (dark.result.throughput_ktps > dark_best.result.throughput_ktps) {
      dark_best = dark;
    }
    if (rec.result.throughput_ktps > rec_best.result.throughput_ktps) {
      rec_best = rec;
    }
  }
  std::remove(scratch.c_str());
  std::sort(ratios.begin(), ratios.end());
  const double median = ratios.empty() ? 0 : ratios[ratios.size() / 2];

  bench::TableTitle("F-recorder-overhead",
                    "flight recorder capturing every spout emission vs "
                    "dark run (word count, default config, paired runs)");
  Row("%-24s | %12s %10s %12s %12s", "recorder", "ktuples/s", "p99 us",
      "records", "bytes");
  Row("%-24s | %12.0f %10.0f %12s %12s", "off (best)",
      dark_best.result.throughput_ktps, dark_best.result.p99_latency_us, "-",
      "-");
  Row("%-24s | %12.0f %10.0f %12llu %12llu", "on (best)",
      rec_best.result.throughput_ktps, rec_best.result.p99_latency_us,
      static_cast<unsigned long long>(rec_best.records),
      static_cast<unsigned long long>(rec_best.bytes));
  Row("recording/dark throughput ratio (median of %zu pairs): %.3f "
      "(bar: >= 0.98)",
      ratios.size(), median);
  if (!ratios.empty()) {
    Row("per-pair ratio spread: [%.3f .. %.3f]", ratios.front(),
        ratios.back());
  }
}

/// Chaos characterization (--chaos): one fixed fault mix, both delivery
/// modes, measured loss and duplication rates at the sink. The numbers
/// make the semantics gap concrete: at-most-once loses tuples silently,
/// at-least-once converts the same injected faults into failed roots the
/// spout is told about (and a replaying spout would recover). Feeds the
/// EXPERIMENTS.md C-fault-injection table.
void RunChaosBench(bool quick) {
  const uint64_t n = quick ? 20000u : 100000u;
  std::printf("\n== chaos: loss/duplication per delivery mode "
              "(n=%llu, drop=2%%, dup=2%%, throw=1%%) ==\n",
              static_cast<unsigned long long>(n));
  std::printf("  %-14s %10s %10s %10s %10s %10s %10s\n", "semantics",
              "delivered", "loss%", "dup_inj", "drop_inj", "completed",
              "failed");
  for (const DeliverySemantics sem :
       {DeliverySemantics::kAtMostOnce, DeliverySemantics::kAtLeastOnce}) {
    auto counter = std::make_shared<std::atomic<uint64_t>>(0);
    auto delivered = std::make_shared<std::atomic<uint64_t>>(0);
    TopologyBuilder builder;
    builder.AddSpout("src", [counter, n]() -> std::unique_ptr<Spout> {
      return std::make_unique<GeneratorSpout>(
          [counter, n]() -> std::optional<Tuple> {
            const uint64_t i = counter->fetch_add(1);
            if (i >= n) return std::nullopt;
            return Tuple::Of(static_cast<int64_t>(i));
          });
    });
    builder.AddBolt(
        "relay",
        []() -> std::unique_ptr<Bolt> {
          return std::make_unique<FunctionBolt>(
              [](const Tuple& t, OutputCollector* out) { out->Emit(t); });
        },
        2, {{"src", Grouping::Shuffle()}});
    builder.AddBolt(
        "sink",
        [delivered]() -> std::unique_ptr<Bolt> {
          return std::make_unique<FunctionBolt>(
              [delivered](const Tuple&, OutputCollector*) {
                delivered->fetch_add(1, std::memory_order_relaxed);
              });
        },
        2, {{"relay", Grouping::Shuffle()}});

    EngineConfig config;
    config.semantics = sem;
    config.ack_timeout_seconds = 1.0;
    config.faults.seed = 0xbe9c;
    config.faults.drop_tuple_prob = 0.02;
    config.faults.duplicate_tuple_prob = 0.02;
    config.faults.bolt_throw_prob = 0.01;
    TopologyEngine engine(builder.Build().value(), config);
    engine.Run();

    const FaultPlan* plan = engine.fault_plan();
    const uint64_t got = delivered->load();
    const double loss =
        got >= n ? 0.0
                 : 100.0 * static_cast<double>(n - got) /
                       static_cast<double>(n);
    std::printf("  %-14s %10llu %9.2f%% %10llu %10llu %10llu %10llu\n",
                sem == DeliverySemantics::kAtMostOnce ? "at-most-once"
                                                      : "at-least-once",
                static_cast<unsigned long long>(got), loss,
                static_cast<unsigned long long>(
                    plan->injected(FaultKind::kDuplicateTuple)),
                static_cast<unsigned long long>(
                    plan->injected(FaultKind::kDropTuple)),
                static_cast<unsigned long long>(engine.completed_roots()),
                static_cast<unsigned long long>(engine.failed_roots()));
  }
}

// ---------------------------------------------------------------------------
// G-rescale (--rescale): live rescaling through epoch-aligned barrier
// checkpoints. Phase 1 runs a key-grouped sketch pipeline on N shards
// under exactly-once semantics and halts the source mid-stream (a
// simulated failure); the last complete epoch's frames are resharded
// N -> 2N with RescaleEpochFrames and phase 2 resumes on 2N shards to
// finish the stream. Reports the recovery timeline (resume epoch, frame
// surgery time, resumed-run wall time) and verifies the merged sketch is
// identical — total count and every key estimate — to an unsharded
// baseline fed each payload exactly once. Feeds EXPERIMENTS.md section
// G-exactly-once.

struct RescaleBlobs {
  std::mutex mu;
  std::vector<std::string> blobs;
};

Topology MakeRescaleTopology(uint32_t parallelism, int64_t limit,
                             int64_t halt, int64_t keys,
                             std::shared_ptr<RescaleBlobs> blobs) {
  TopologyBuilder builder;
  builder.AddSpout("src", [limit, halt, keys]() -> std::unique_ptr<Spout> {
    return std::make_unique<ReplayableSequenceSpout>(
        limit,
        [keys](int64_t seq) { return Tuple::Of(seq % keys, seq); },
        halt);
  });
  builder.AddBolt(
      "shard",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<KeyGroupedSketchBolt<CountMinSketch>>(
            [] { return CountMinSketch(64, 4); },
            [](CountMinSketch& sketch, const Tuple& t) {
              sketch.Add(static_cast<uint64_t>(t.Int(0)));
            },
            /*key_field=*/0, /*dedup_seq_field=*/1);
      },
      parallelism, {{"src", Grouping::Fields(0)}});
  builder.AddBolt(
      "collect",
      [blobs]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [blobs](const Tuple& t, OutputCollector*) {
              std::lock_guard<std::mutex> lock(blobs->mu);
              blobs->blobs.push_back(t.Str(0));
            });
      },
      1, {{"shard", Grouping::Global()}});
  return builder.Build().value();
}

bool RunRescaleBench(bool quick) {
  const int64_t n = quick ? 60000 : 400000;
  const int64_t halt = n / 2;
  const uint64_t interval = quick ? 2000 : 5000;
  const int64_t keys = 997;
  std::printf("\n== rescale: exactly-once crash/resume onto 2N shards "
              "(n=%lld, halt=%lld, epoch every %llu tuples) ==\n",
              static_cast<long long>(n), static_cast<long long>(halt),
              static_cast<unsigned long long>(interval));
  std::printf("  %-10s %-10s %12s %10s %12s %10s %9s\n", "shards_in",
              "shards_out", "resume_epoch", "p1_ms", "rescale_us", "p2_ms",
              "verified");
  bool all_ok = true;
  for (const uint32_t base : {2u, 4u}) {
    KvCheckpointStore store;
    EngineConfig config;
    config.semantics = DeliverySemantics::kExactlyOnce;
    config.checkpoint_store = &store;
    config.epoch_interval_tuples = interval;

    WallTimer phase1_timer;
    {
      auto ignored = std::make_shared<RescaleBlobs>();
      TopologyEngine engine(MakeRescaleTopology(base, n, halt, keys, ignored),
                            config);
      engine.Run();
    }
    const double phase1_ms = phase1_timer.ElapsedSeconds() * 1e3;

    const uint64_t resume = LastCompleteEpoch(store);
    if (resume == 0) {
      std::printf("  %-10u %-10u  no complete epoch before halt — FAILED\n",
                  base, 2 * base);
      all_ok = false;
      continue;
    }
    WallTimer rescale_timer;
    const Status rescaled =
        RescaleEpochFrames(store, resume, "shard", base, 2 * base);
    const double rescale_us = rescale_timer.ElapsedSeconds() * 1e6;
    if (!rescaled.ok()) {
      std::printf("  %-10u %-10u  rescale failed: %s\n", base, 2 * base,
                  rescaled.ToString().c_str());
      all_ok = false;
      continue;
    }

    config.resume_from_epoch = resume;
    auto blobs = std::make_shared<RescaleBlobs>();
    WallTimer phase2_timer;
    TopologyEngine engine(
        MakeRescaleTopology(2 * base, n, /*halt=*/-1, keys, blobs), config);
    engine.Run();
    const double phase2_ms = phase2_timer.ElapsedSeconds() * 1e3;

    // Merge the 2N shard blobs and compare against an unsharded baseline
    // fed every payload exactly once: linearity of the sketch makes the
    // comparison exact, so any lost, duplicated, or misrouted key group
    // shows up as a mismatch.
    bool verified = blobs->blobs.size() == 2 * base;
    CountMinSketch merged(64, 4);
    for (const std::string& blob : blobs->blobs) {
      verified =
          verified &&
          state::MergeBlob(merged,
                           std::vector<uint8_t>(blob.begin(), blob.end()))
              .ok();
    }
    CountMinSketch baseline(64, 4);
    for (int64_t seq = 0; seq < n; seq++) {
      baseline.Add(static_cast<uint64_t>(seq % keys));
    }
    verified = verified && merged.total_count() == baseline.total_count();
    for (uint64_t key = 0; verified && key < static_cast<uint64_t>(keys);
         key++) {
      verified = merged.Estimate(key) == baseline.Estimate(key);
    }
    std::printf("  %-10u %-10u %12llu %10.1f %12.1f %10.1f %9s\n", base,
                2 * base, static_cast<unsigned long long>(resume), phase1_ms,
                rescale_us, phase2_ms, verified ? "OK" : "FAILED");
    all_ok = all_ok && verified;
  }
  return all_ok;
}

// ---------------------------------------------------------------------------
// D-shard-merge: the key-sharded partial-aggregation pattern. N fields-
// grouped SketchBolt tasks each summarize their key partition; one global
// SketchCombinerBolt merges the shard blobs. Mergeability (Agarwal et al.)
// says the merged estimates must EQUAL a single-instance run — this sweep
// checks that on every cell while measuring throughput per shard count.

struct ShardCell {
  size_t shards = 0;
  uint64_t tuples = 0;
  double seconds = 0;
  double tuples_per_sec = 0;
  double hll_merged = 0;
  double hll_single = 0;
  bool hll_equal = false;
  size_t cms_probes = 0;
  bool cms_equal = false;
};

/// Result slots filled by the combiner bolts' Finish callbacks; the engine
/// joins its threads before Run() returns, so plain members are safe to
/// read afterwards.
struct ShardOutcome {
  double hll_estimate = 0;
  bool cms_equal = false;
  size_t cms_probes = 0;
};

ShardCell RunShardCell(size_t shards,
                       const std::shared_ptr<std::vector<std::string>>& words,
                       const HyperLogLog& hll_single,
                       const CountMinSketch& cms_single,
                       const std::vector<std::string>& probe_keys) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  auto outcome = std::make_shared<ShardOutcome>();
  const uint64_t n = words->size();

  TopologyBuilder builder;
  builder.AddSpout("spout", [counter, words, n]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter, words, n]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= n) return std::nullopt;
          return Tuple::Of((*words)[i]);
        });
  });
  builder.AddBolt(
      "hll_shard",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchBolt<HyperLogLog>>(
            HyperLogLog(12), [](HyperLogLog& sketch, const Tuple& t) {
              sketch.Add(t.Str(0));
            });
      },
      static_cast<uint32_t>(shards), {{"spout", Grouping::Fields(0)}});
  builder.AddBolt(
      "hll_merge",
      [outcome]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchCombinerBolt<HyperLogLog>>(
            HyperLogLog(12),
            [outcome](const HyperLogLog& merged, OutputCollector*) {
              outcome->hll_estimate = merged.Estimate();
            });
      },
      1, {{"hll_shard", Grouping::Global()}});
  builder.AddBolt(
      "cms_shard",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchBolt<CountMinSketch>>(
            CountMinSketch(2048, 4), [](CountMinSketch& sketch,
                                        const Tuple& t) {
              sketch.Add(t.Str(0));
            });
      },
      static_cast<uint32_t>(shards), {{"spout", Grouping::Fields(0)}});
  builder.AddBolt(
      "cms_merge",
      [outcome, &cms_single, &probe_keys]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchCombinerBolt<CountMinSketch>>(
            CountMinSketch(2048, 4),
            [outcome, &cms_single, &probe_keys](const CountMinSketch& merged,
                                                OutputCollector*) {
              bool equal = merged.total_count() == cms_single.total_count();
              for (const std::string& key : probe_keys) {
                equal = equal &&
                        merged.Estimate(key) == cms_single.Estimate(key);
              }
              outcome->cms_equal = equal;
              outcome->cms_probes = probe_keys.size();
            });
      },
      1, {{"cms_shard", Grouping::Global()}});

  EngineConfig config;
  TopologyEngine engine(builder.Build().value(), config);
  WallTimer timer;
  engine.Run();

  ShardCell cell;
  cell.shards = shards;
  cell.tuples = n;
  cell.seconds = timer.ElapsedSeconds();
  cell.tuples_per_sec = static_cast<double>(n) / cell.seconds;
  cell.hll_merged = outcome->hll_estimate;
  cell.hll_single = hll_single.Estimate();
  cell.hll_equal = cell.hll_merged == cell.hll_single;
  cell.cms_probes = outcome->cms_probes;
  cell.cms_equal = outcome->cms_equal;
  return cell;
}

bool WriteShardMergeJson(const std::string& path, bool quick,
                         const std::vector<ShardCell>& cells) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"bench_t2_platform\",\n"
      << "  \"experiment\": \"D-shard-merge\",\n"
      << "  \"topology\": \"spout x1 -> SketchBolt xN (fields) -> "
         "SketchCombinerBolt x1 (global)\",\n"
      << "  \"sketches\": \"hll(p=12), count-min(2048x4)\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); i++) {
    const ShardCell& c = cells[i];
    out << "    {\"shards\": " << c.shards << ", \"tuples\": " << c.tuples
        << ", \"seconds\": " << c.seconds
        << ", \"tuples_per_sec\": " << static_cast<uint64_t>(c.tuples_per_sec)
        << ", \"hll_merged\": " << c.hll_merged
        << ", \"hll_single\": " << c.hll_single
        << ", \"hll_equal\": " << (c.hll_equal ? "true" : "false")
        << ", \"cms_probes\": " << c.cms_probes
        << ", \"cms_equal\": " << (c.cms_equal ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

bool RunShardMergeSweep(size_t max_shards, bool quick,
                        const std::string& out_path) {
  using bench::Row;
  const uint64_t n = quick ? 60000u : 1000000u;

  // Deterministic Zipf word stream shared by every cell and the
  // single-instance references.
  auto words = std::make_shared<std::vector<std::string>>();
  words->reserve(n);
  workload::ZipfGenerator zipf(20000, 1.1, 42);
  for (uint64_t i = 0; i < n; i++) {
    std::string word("w");  // Avoids GCC 12 -Wrestrict FP.
    word += std::to_string(zipf.Next() % 5000);
    words->push_back(std::move(word));
  }
  HyperLogLog hll_single(12);
  CountMinSketch cms_single(2048, 4);
  for (const std::string& w : *words) {
    hll_single.Add(w);
    cms_single.Add(w);
  }
  std::vector<std::string> probe_keys;
  for (int k = 0; k < 200; k++) {
    std::string key("w");  // Avoids GCC 12 -Wrestrict FP.
    key += std::to_string(k);
    probe_keys.push_back(std::move(key));
  }

  std::vector<ShardCell> cells;
  for (size_t shards = 1; shards <= max_shards; shards *= 2) {
    cells.push_back(
        RunShardCell(shards, words, hll_single, cms_single, probe_keys));
  }

  bench::TableTitle("D-shard-merge",
                    "key-sharded SketchBolt tasks -> global combiner: "
                    "merged estimate vs single instance, throughput per "
                    "shard count");
  Row("%-8s | %12s %14s %14s %8s %10s", "shards", "ktuples/s", "hll merged",
      "hll single", "equal", "cms equal");
  bool all_equal = true;
  for (const ShardCell& c : cells) {
    Row("%-8zu | %12.0f %14.1f %14.1f %8s %10s", c.shards,
        c.tuples_per_sec / 1000.0, c.hll_merged, c.hll_single,
        c.hll_equal ? "yes" : "NO", c.cms_equal ? "yes" : "NO");
    all_equal = all_equal && c.hll_equal && c.cms_equal;
  }
  Row("paper-shape check (mergeable summaries, Agarwal et al.): sharding");
  Row("the stream by key and merging the shard sketches through the");
  Row("SketchBlob envelope reproduces the single-instance estimates");
  Row("exactly on every cell — accuracy is free, parallelism is not.");

  if (!WriteShardMergeJson(out_path, quick, cells)) return false;
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!all_equal) {
    std::fprintf(stderr,
                 "error: merged shard estimates diverged from the "
                 "single-instance reference\n");
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// E-batched-sketch-path: the end-to-end payoff of the batched kernels.
// One spout feeds fields-grouped SketchBolt tasks (CM + HLL, both carrying
// a FieldKeyBatchUpdate batched update fn); the engine's fused ExecuteBatch
// path hands each transport batch to the kernel in ONE call. Measured with
// EngineConfig::enable_bolt_batch on vs off on the identical topology; the
// combiner blobs from both runs must be byte-identical (the fused path is
// an optimization, never a semantics change).

struct BatchedPathOutcome {
  std::vector<uint8_t> cms_blob;
  std::vector<uint8_t> hll_blob;
  double seconds = 0;
};

BatchedPathOutcome RunBatchedSketchCell(uint64_t n, bool fused) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  auto outcome = std::make_shared<BatchedPathOutcome>();

  TopologyBuilder builder;
  builder.AddSpout("keys", [counter, n]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter, n]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= n) return std::nullopt;
          // Zipf-ish skew without a per-spout generator: square a cheap
          // mixed draw so hot keys repeat.
          const uint64_t k = HashInt64(i, 7) % 4096;
          return Tuple::Of(static_cast<int64_t>((k * k) >> 6));
        });
  });
  builder.AddBolt(
      "cms_acc",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchBolt<CountMinSketch>>(
            CountMinSketch(8192, 4),
            [](CountMinSketch& sketch, const Tuple& t) {
              sketch.Add(static_cast<uint64_t>(t.Int(0)));
            },
            FieldKeyBatchUpdate<CountMinSketch>(0));
      },
      2, {{"keys", Grouping::Fields(0)}});
  builder.AddBolt(
      "cms_out",
      [outcome]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchCombinerBolt<CountMinSketch>>(
            CountMinSketch(8192, 4),
            [outcome](const CountMinSketch& merged, OutputCollector*) {
              outcome->cms_blob = state::ToBlob(merged);
            });
      },
      1, {{"cms_acc", Grouping::Global()}});
  builder.AddBolt(
      "hll_acc",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchBolt<HyperLogLog>>(
            HyperLogLog(12, /*sparse=*/false),
            [](HyperLogLog& sketch, const Tuple& t) {
              sketch.Add(static_cast<uint64_t>(t.Int(0)));
            },
            FieldKeyBatchUpdate<HyperLogLog>(0));
      },
      2, {{"keys", Grouping::Fields(0)}});
  builder.AddBolt(
      "hll_out",
      [outcome]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchCombinerBolt<HyperLogLog>>(
            HyperLogLog(12, /*sparse=*/false),
            [outcome](const HyperLogLog& merged, OutputCollector*) {
              outcome->hll_blob = state::ToBlob(merged);
            });
      },
      1, {{"hll_acc", Grouping::Global()}});

  EngineConfig config;
  config.enable_bolt_batch = fused;
  TopologyEngine engine(builder.Build().value(), config);
  WallTimer timer;
  engine.Run();
  outcome->seconds = timer.ElapsedSeconds();
  return *outcome;
}

bool RunBatchedSketchPath(bool quick) {
  using bench::Row;
  const uint64_t n = quick ? 100000u : 2000000u;
  const BatchedPathOutcome fused = RunBatchedSketchCell(n, true);
  const BatchedPathOutcome unfused = RunBatchedSketchCell(n, false);
  const bool identical = fused.cms_blob == unfused.cms_blob &&
                         fused.hll_blob == unfused.hll_blob;

  bench::TableTitle("E-batched-sketch-path",
                    "transport batches fused into one kernel call per "
                    "batch (enable_bolt_batch) vs per-tuple Execute");
  Row("%-28s | %12s %14s", "path", "ktuples/s", "sketch state");
  Row("%-28s | %12.0f %14s", "per-tuple Execute",
      static_cast<double>(n) / unfused.seconds / 1000.0, "reference");
  Row("%-28s | %12.0f %14s", "fused ExecuteBatch",
      static_cast<double>(n) / fused.seconds / 1000.0,
      identical ? "identical" : "DIVERGED");
  if (!identical) {
    std::fprintf(stderr, "error: fused batch path produced different "
                 "sketch state than the per-tuple path\n");
  }
  return identical;
}

// ---------------------------------------------------------------------------
// H-fusion: fused-operator compilation (DESIGN.md §13). Each shape runs
// twice on the identical topology — enable_fusion on vs off — and the
// matrix reports the throughput ratio alongside how many edges actually
// fused (0 for the honest no-fusion-possible rows). A separate fusible
// sketch chain must produce byte-identical CountMinSketch state on both
// channels: fusion is an execution strategy, never a semantics change.

struct FusionCell {
  std::string shape;
  DeliverySemantics semantics = DeliverySemantics::kAtMostOnce;
  bool fused = false;  // enable_fusion for this run
  uint64_t tuples = 0;
  double seconds = 0;
  double tuples_per_sec = 0;
  uint64_t fused_edges = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
};

/// Builds one of the named fusion-matrix shapes over `n` generated tuples.
/// Every bolt ends in a DoNotOptimize sink stage so the work survives -O2.
Topology MakeFusionShape(const std::string& shape, uint64_t n) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  auto spout_factory = [counter, n]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter, n]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= n) return std::nullopt;
          return Tuple::Of(static_cast<int64_t>(i));
        });
  };
  auto map_factory = []() -> std::unique_ptr<Bolt> {
    return std::make_unique<FunctionBolt>(
        [](const Tuple& in, OutputCollector* out) { out->Emit(Tuple(in)); });
  };
  auto sink_factory = []() -> std::unique_ptr<Bolt> {
    return std::make_unique<FunctionBolt>(
        [](const Tuple& in, OutputCollector*) {
          benchmark::DoNotOptimize(in.Int(0));
        });
  };

  TopologyBuilder builder;
  if (shape == "3stage_shuffle_p1") {
    // The acceptance chain: spout -> map -> sink, all parallelism 1.
    builder.AddSpout("spout", spout_factory);
    builder.AddBolt("map", map_factory, 1, {{"spout", Grouping::Shuffle()}});
    builder.AddBolt("sink", sink_factory, 1, {{"map", Grouping::Shuffle()}});
  } else if (shape == "2stage_pipeline_p1") {
    builder.AddSpout("spout", spout_factory);
    builder.AddBolt("sink", sink_factory, 1, {{"spout", Grouping::Shuffle()}});
  } else if (shape == "3stage_parallel2") {
    // Equal-parallelism shuffle: fused pairs producer task i with
    // consumer task i; two independent fused chains.
    builder.AddSpout("spout", spout_factory, 2);
    builder.AddBolt("map", map_factory, 2, {{"spout", Grouping::Shuffle()}});
    builder.AddBolt("sink", sink_factory, 2, {{"map", Grouping::Shuffle()}});
  } else if (shape == "fields_tail") {
    // Partial fusion: spout -> map fuses, the fields-grouped tail keeps
    // hash routing across 4 shards on a queued edge.
    builder.AddSpout("spout", spout_factory);
    builder.AddBolt("map", map_factory, 1, {{"spout", Grouping::Shuffle()}});
    builder.AddBolt("sink", sink_factory, 4, {{"map", Grouping::Fields(0)}});
  } else {  // "mixed_parallelism": nothing fuses; the honest ~1.0x row.
    builder.AddSpout("spout", spout_factory);
    builder.AddBolt("sink", sink_factory, 4, {{"spout", Grouping::Shuffle()}});
  }
  return builder.Build().value();
}

void RunFusionCell(FusionCell& cell) {
  EngineConfig config;
  config.semantics = cell.semantics;
  config.enable_fusion = cell.fused;
  TopologyEngine engine(MakeFusionShape(cell.shape, cell.tuples), config);
  WallTimer timer;
  engine.Run();
  cell.seconds = timer.ElapsedSeconds();
  cell.tuples_per_sec = static_cast<double>(cell.tuples) / cell.seconds;
  cell.fused_edges = engine.fused_edges();
  cell.completed = engine.completed_roots();
  cell.failed = engine.failed_roots();
}

/// Fused-vs-queued bit-identity on a fully fusible sketch chain:
/// keys x1 -> CountMinSketch SketchBolt x1 (shuffle) -> combiner x1
/// (global). Same inputs, both channels, byte-compared ToBlob state.
bool CheckFusionSketchIdentity(uint64_t n) {
  auto run = [n](bool fused) {
    auto counter = std::make_shared<std::atomic<uint64_t>>(0);
    auto blob = std::make_shared<std::vector<uint8_t>>();
    TopologyBuilder builder;
    builder.AddSpout("keys", [counter, n]() -> std::unique_ptr<Spout> {
      return std::make_unique<GeneratorSpout>(
          [counter, n]() -> std::optional<Tuple> {
            const uint64_t i = counter->fetch_add(1);
            if (i >= n) return std::nullopt;
            const uint64_t k = HashInt64(i, 7) % 4096;
            return Tuple::Of(static_cast<int64_t>((k * k) >> 6));
          });
    });
    builder.AddBolt(
        "cms",
        []() -> std::unique_ptr<Bolt> {
          return std::make_unique<SketchBolt<CountMinSketch>>(
              CountMinSketch(8192, 4),
              [](CountMinSketch& sketch, const Tuple& t) {
                sketch.Add(static_cast<uint64_t>(t.Int(0)));
              });
        },
        1, {{"keys", Grouping::Shuffle()}});
    builder.AddBolt(
        "out",
        [blob]() -> std::unique_ptr<Bolt> {
          return std::make_unique<SketchCombinerBolt<CountMinSketch>>(
              CountMinSketch(8192, 4),
              [blob](const CountMinSketch& merged, OutputCollector*) {
                *blob = state::ToBlob(merged);
              });
        },
        1, {{"cms", Grouping::Global()}});
    EngineConfig config;
    config.enable_fusion = fused;
    TopologyEngine engine(builder.Build().value(), config);
    engine.Run();
    return *blob;
  };
  return run(true) == run(false) && !run(true).empty();
}

void WriteFusionSection(std::ostream& out, bool sketch_identical,
                        const std::vector<FusionCell>& cells) {
  out << "  \"fusion\": {\n"
      << "    \"experiment\": \"H-fusion\",\n"
      << "    \"sketch_state_identical\": "
      << (sketch_identical ? "true" : "false") << ",\n"
      << "    \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); i++) {
    const FusionCell& c = cells[i];
    out << "      {\"shape\": \"" << c.shape << "\", \"semantics\": \""
        << SemanticsName(c.semantics) << "\", \"channel\": \""
        << (c.fused ? "fused" : "queued") << "\", \"tuples\": " << c.tuples
        << ", \"seconds\": " << c.seconds << ", \"tuples_per_sec\": "
        << static_cast<uint64_t>(c.tuples_per_sec)
        << ", \"fused_edges\": " << c.fused_edges
        << ", \"completed_roots\": " << c.completed
        << ", \"failed_roots\": " << c.failed << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "    ],\n    \"speedups\": [\n";
  bool first = true;
  for (const FusionCell& f : cells) {
    if (!f.fused) continue;
    for (const FusionCell& q : cells) {
      if (q.fused || q.shape != f.shape || q.semantics != f.semantics) {
        continue;
      }
      if (!first) out << ",\n";
      first = false;
      out << "      {\"shape\": \"" << f.shape << "\", \"semantics\": \""
          << SemanticsName(f.semantics) << "\", \"fused_edges\": "
          << f.fused_edges << ", \"speedup\": "
          << (q.tuples_per_sec > 0 ? f.tuples_per_sec / q.tuples_per_sec : 0)
          << "}";
    }
  }
  out << "\n    ]\n  }";
}

bool RunFusionMatrix(bool quick, std::vector<FusionCell>* cells_out,
                     bool* sketch_identical_out) {
  using bench::Row;
  const int reps = quick ? 1 : 2;
  const std::vector<std::string> shapes = {
      "3stage_shuffle_p1", "2stage_pipeline_p1", "3stage_parallel2",
      "fields_tail", "mixed_parallelism"};
  std::vector<FusionCell> cells;
  for (const std::string& shape : shapes) {
    for (DeliverySemantics sem : {DeliverySemantics::kAtMostOnce,
                                  DeliverySemantics::kAtLeastOnce}) {
      for (bool fused : {true, false}) {
        FusionCell best;
        best.shape = shape;
        best.semantics = sem;
        best.fused = fused;
        best.tuples = quick ? (sem == DeliverySemantics::kAtMostOnce
                                   ? 60000u
                                   : 25000u)
                            : (sem == DeliverySemantics::kAtMostOnce
                                   ? 1000000u
                                   : 300000u);
        for (int rep = 0; rep < reps; rep++) {
          FusionCell attempt = best;
          attempt.tuples_per_sec = 0;
          RunFusionCell(attempt);
          if (attempt.tuples_per_sec > best.tuples_per_sec) best = attempt;
        }
        cells.push_back(best);
      }
    }
  }
  const bool sketch_identical =
      CheckFusionSketchIdentity(quick ? 100000u : 1000000u);

  bench::TableTitle("H-fusion",
                    "fused-operator chains (in-thread, no queue hop) vs "
                    "queued execution of the identical topology");
  Row("%-20s %-14s | %12s %12s %8s %7s", "shape", "semantics", "queued t/s",
      "fused t/s", "speedup", "edges");
  for (size_t i = 0; i + 1 < cells.size(); i += 2) {
    const FusionCell& f = cells[i];      // fused run pushed first
    const FusionCell& q = cells[i + 1];  // queued partner
    Row("%-20s %-14s | %12.0f %12.0f %7.2fx %7llu", f.shape.c_str(),
        SemanticsName(f.semantics), q.tuples_per_sec, f.tuples_per_sec,
        q.tuples_per_sec > 0 ? f.tuples_per_sec / q.tuples_per_sec : 0,
        static_cast<unsigned long long>(f.fused_edges));
  }
  Row("sketch state fused vs queued: %s",
      sketch_identical ? "byte-identical" : "DIVERGED");
  Row("paper-shape check (Section 3, operator chains): collapsing a");
  Row("linear chain into one thread removes the queue handoff and the");
  Row("per-hop ack edge; shapes that need routing (fields, fan-out to");
  Row("shards) keep queued edges and show ~1x — fusion helps pipelines,");
  Row("not shuffles-to-many.");

  if (!sketch_identical) {
    std::fprintf(stderr, "error: fused chain produced different sketch "
                 "state than the queued run\n");
  }
  *cells_out = std::move(cells);
  *sketch_identical_out = sketch_identical;
  return sketch_identical;
}

/// --fusion standalone mode: matrix + identity check only, written as a
/// self-contained JSON document (the bench_fusion_smoke ctest fixture).
bool RunFusionOnly(bool quick, const std::string& out_path) {
  std::vector<FusionCell> cells;
  bool sketch_identical = false;
  if (!RunFusionMatrix(quick, &cells, &sketch_identical)) return false;
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"bench_t2_platform\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  WriteFusionSection(out, sketch_identical, cells);
  out << "\n}\n";
  if (!out.good()) return false;
  out.close();
  std::printf("\nwrote %s\n", out_path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool chaos = false;
  size_t shards = 0;
  std::string out_path = "BENCH_platform.json";
  std::string shards_out = "BENCH_shard_merge.json";
  std::string telemetry_out;
  std::string record_out;
  bool recorder_overhead_only = false;
  bool rescale = false;
  bool fusion_only = false;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; i++) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--chaos") {
      chaos = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = static_cast<size_t>(std::stoul(std::string(arg.substr(9))));
    } else if (arg.rfind("--shards-out=", 0) == 0) {
      shards_out = std::string(arg.substr(13));
    } else if (arg.rfind("--telemetry-out=", 0) == 0) {
      telemetry_out = std::string(arg.substr(16));
    } else if (arg.rfind("--record-out=", 0) == 0) {
      record_out = std::string(arg.substr(13));
    } else if (arg == "--recorder-overhead") {
      recorder_overhead_only = true;
    } else if (arg == "--rescale") {
      rescale = true;
    } else if (arg == "--fusion") {
      fusion_only = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (rescale) {
    return RunRescaleBench(quick) ? 0 : 1;
  }
  if (fusion_only) {
    return RunFusionOnly(quick, out_path) ? 0 : 1;
  }
  if (chaos) {
    RunChaosBench(quick);
    return 0;
  }
  if (recorder_overhead_only) {
    RunRecorderOverhead(quick);
    return 0;
  }
  if (shards > 0) {
    return RunShardMergeSweep(shards, quick, shards_out) ? 0 : 1;
  }
  int pass_argc = static_cast<int>(passthrough.size());
  if (!quick) {
    ::benchmark::Initialize(&pass_argc, passthrough.data());
    if (::benchmark::ReportUnrecognizedArguments(pass_argc,
                                                 passthrough.data())) {
      return 1;
    }
    ::benchmark::RunSpecifiedBenchmarks();
  }
  if (!telemetry_out.empty()) {
    if (!EmitTelemetryReport(telemetry_out, quick)) return 1;
    if (quick) return 0;  // ctest fixture setup: telemetry report only.
  }
  if (!record_out.empty()) {
    if (!EmitRecording(record_out, quick)) return 1;
    if (quick) return 0;  // fixture-style run: recording only.
  }
  std::vector<FusionCell> fusion_cells;
  bool fusion_sketch_identical = false;
  const bool fusion_ok =
      RunFusionMatrix(quick, &fusion_cells, &fusion_sketch_identical);
  if (!RunTransportMatrix(quick, out_path, fusion_sketch_identical,
                          fusion_cells)) {
    return 1;
  }
  if (!fusion_ok) return 1;
  if (!RunBatchedSketchPath(quick)) return 1;
  if (!quick) {
    RunTelemetryOverhead(quick);
    RunRecorderOverhead(quick);
    PrintTables();
  }
  return 0;
}
