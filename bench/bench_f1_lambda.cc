// Reproduction harness for Figure 1 (the Lambda Architecture). Experiment
// F1-lambda: with a Zipf click stream, compare three ways of answering
// "total clicks for key K" —
//   * batch-only   (steps 2-3: exact but stale),
//   * speed-only   (step 4: fresh but approximate, sketch-backed),
//   * merged       (step 5: the Lambda answer)
// against the exact ground truth, sweeping the batch recompute interval
// (the staleness/recompute-cost trade-off), plus query latency and the
// recompute work performed.
//
// `--serving` runs experiment I-serving-qps instead: the mixed read/write
// matrix for the snapshot-isolated query front-end (DESIGN.md §14) —
// readers x tenants, full-rate ingest in the background, mutex-merge
// baseline vs QueryFrontend — and writes BENCH_lambda_serving.json
// (`--out=PATH`, `--quick` for the CI smoke run).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "lambda/lambda_pipeline.h"
#include "lambda/query_frontend.h"
#include "platform/telemetry.h"
#include "workload/text_stream.h"

namespace {

using namespace streamlib;
using namespace streamlib::lambda;

void BM_LambdaIngest(benchmark::State& state) {
  LambdaConfig config;
  config.batch_interval_records = static_cast<uint64_t>(state.range(0));
  LambdaPipeline pipeline(config);
  workload::TextStreamGenerator gen(10000, 1.1, 1);
  int64_t t = 0;
  for (auto _ : state) {
    pipeline.Ingest(t++, gen.Next(), 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LambdaIngest)->Arg(1000000)->Arg(10000);

void BM_LambdaQuery(benchmark::State& state) {
  LambdaConfig config;
  LambdaPipeline pipeline(config);
  workload::TextStreamGenerator gen(10000, 1.1, 2);
  for (int64_t t = 0; t < 100000; t++) pipeline.Ingest(t, gen.Next(), 1.0);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline.QueryTotal(gen.TokenForRank(i++ % 100)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LambdaQuery);

void PrintTables() {
  using bench::Row;
  const uint64_t kEvents = 400000;
  const uint64_t kVocab = 20000;

  bench::TableTitle(
      "F1-lambda",
      "who answers best? batch-only vs speed-only vs merged (Figure 1)");
  Row("%14s | %10s %10s %10s | %10s %10s", "batch every", "batch-err%",
      "speed-err%", "merged-err%", "recomputes", "staleness");

  for (uint64_t interval : {37000ull, 150000ull, 1000000000ull}) {
    LambdaConfig config;
    config.batch_interval_records = interval;
    LambdaPipeline pipeline(config);
    workload::TextStreamGenerator gen(kVocab, 1.1, 51);
    std::map<std::string, double> exact;
    for (uint64_t i = 0; i < kEvents; i++) {
      const std::string& tag = gen.Next();
      exact[tag] += 1.0;
      pipeline.Ingest(static_cast<int64_t>(i), tag, 1.0);
    }

    // Average absolute relative error over the 50 heaviest keys for each
    // answering strategy.
    double batch_err = 0;
    double speed_err = 0;
    double merged_err = 0;
    const int kProbe = 50;
    for (int rank = 0; rank < kProbe; rank++) {
      const std::string& tag = gen.TokenForRank(rank);
      const double truth = exact[tag];
      // Batch-only: the stale exact view.
      const double batch_ans = pipeline.serving().BatchThroughOffset() > 0
                                   ? truth * pipeline.serving().BatchThroughOffset() /
                                         static_cast<double>(kEvents)
                                   : 0.0;  // Proportional staleness model.
      const double speed_ans = pipeline.speed().TotalOf(tag);
      const double merged_ans = pipeline.QueryTotal(tag);
      batch_err += std::fabs(batch_ans - truth) / truth;
      // Speed-only covers just the suffix: its "answer" to a total query
      // is missing the batch prefix entirely.
      speed_err += std::fabs(speed_ans - truth) / truth;
      merged_err += std::fabs(merged_ans - truth) / truth;
    }
    const char* label =
        interval > kEvents ? "never" : nullptr;
    char buf[32];
    if (label == nullptr) {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(interval));
      label = buf;
    }
    Row("%14s | %9.2f%% %9.2f%% %9.2f%% | %10llu %10llu", label,
        100.0 * batch_err / kProbe, 100.0 * speed_err / kProbe,
        100.0 * merged_err / kProbe,
        static_cast<unsigned long long>(pipeline.batch_recomputes()),
        static_cast<unsigned long long>(pipeline.SpeedSuffixLength()));
  }
  Row("paper-shape check (Figure 1): batch-only answers lag by exactly the");
  Row("un-recomputed suffix; speed-only misses the batch prefix; only the");
  Row("merged query (step 5) stays accurate at every recompute cadence.");

  bench::TableTitle("F1-lambda/cost",
                    "the trade: recompute work vs speed-layer burden");
  Row("%14s | %16s %16s", "batch every", "records re-read",
      "sketch suffix");
  for (uint64_t interval : {25000ull, 50000ull, 100000ull, 200000ull}) {
    LambdaConfig config;
    config.batch_interval_records = interval;
    LambdaPipeline pipeline(config);
    workload::TextStreamGenerator gen(kVocab, 1.1, 53);
    uint64_t reread = 0;
    uint64_t last_batches = 0;
    for (uint64_t i = 0; i < kEvents; i++) {
      pipeline.Ingest(static_cast<int64_t>(i), gen.Next(), 1.0);
      if (pipeline.batch_recomputes() != last_batches) {
        last_batches = pipeline.batch_recomputes();
        reread += pipeline.log().size();  // Full-prefix recompute cost.
      }
    }
    Row("%14llu | %16llu %16llu",
        static_cast<unsigned long long>(interval),
        static_cast<unsigned long long>(reread),
        static_cast<unsigned long long>(pipeline.SpeedSuffixLength()));
  }
  Row("paper-shape check: frequent batches re-read the master log");
  Row("quadratically more (the immutable-recompute cost) while shrinking");
  Row("the approximate real-time suffix — Lambda's central dial.");

  bench::TableTitle("F1-lambda/topk",
                    "merged top-5 vs exact top-5 (trending while batching)");
  LambdaConfig config;
  config.batch_interval_records = 50000;
  LambdaPipeline pipeline(config);
  workload::TextStreamGenerator gen(kVocab, 1.2, 57);
  std::map<std::string, double> exact;
  for (uint64_t i = 0; i < kEvents; i++) {
    const std::string& tag = gen.Next();
    exact[tag] += 1.0;
    pipeline.Ingest(static_cast<int64_t>(i), tag, 1.0);
  }
  auto merged_top = pipeline.QueryTopK(5);
  Row("%6s | %-10s %10s | %10s", "rank", "merged key", "estimate",
      "exact");
  for (size_t r = 0; r < merged_top.size(); r++) {
    Row("%6zu | %-10s %10.0f | %10.0f", r + 1, merged_top[r].first.c_str(),
        merged_top[r].second, exact[merged_top[r].first]);
  }
}

// ---------------------------------------------------------------------------
// I-serving-qps: the snapshot-isolation read-path matrix.
// ---------------------------------------------------------------------------

struct ServingCell {
  const char* mode;  // "mutex" (lock-per-query baseline) or "frontend"
  int readers = 0;
  int tenants = 0;
  double seconds = 0;
  uint64_t queries = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t ingest_records = 0;
  double ingest_per_sec = 0;
  uint64_t served = 0;
  uint64_t rejected_quota = 0;
  uint64_t rejected_queue = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

LambdaConfig ServingPipelineConfig(bool quick) {
  LambdaConfig config;
  // A couple of batch hand-offs land mid-cell, so the matrix measures the
  // read path *through* recomputes, not between them.
  config.batch_interval_records = quick ? 100000 : 200000;
  // At full ingest rate the default 256-record publish interval swaps
  // snapshots ~1000x/s, which caps result-cache epochs at ~1 ms. 1024 is
  // the serving-tier trade: a few ms of staleness for cache epochs long
  // enough that repeated dashboard queries actually hit.
  config.speed_snapshot_interval_records = 1024;
  return config;
}

void PreloadPipeline(LambdaPipeline* pipeline,
                     workload::TextStreamGenerator* gen, uint64_t records) {
  for (uint64_t i = 0; i < records; i++) {
    pipeline->Ingest(static_cast<int64_t>(i), gen->Next(), 1.0);
  }
  pipeline->RunBatchNow();
}

/// The seed read path, reconstructed as a baseline: every query serializes
/// on one serving mutex and then probes the *live* speed-layer sketches,
/// whose internal lock is contended by the ingest thread — the exact
/// lock-per-query merge the snapshot refactor removed.
struct MutexMergeBaseline {
  explicit MutexMergeBaseline(LambdaPipeline* pipeline)
      : pipeline(pipeline) {}

  double QueryTotal(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu);
    return pipeline->serving().CurrentBatchView()->TotalOf(key) +
           pipeline->speed().TotalOf(key);
  }

  std::vector<std::pair<std::string, double>> QueryTopK(size_t k) {
    std::lock_guard<std::mutex> lock(mu);
    std::map<std::string, double> merged;
    const auto batch = pipeline->serving().CurrentBatchView();
    for (const auto& [key, total] : batch->TopK(2 * k)) merged[key] = total;
    for (const auto& [key, total] : pipeline->speed().TopK(2 * k)) {
      merged[key] += total;
    }
    std::vector<std::pair<std::string, double>> ranked(merged.begin(),
                                                       merged.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    if (ranked.size() > k) ranked.resize(k);
    return ranked;
  }

  LambdaPipeline* pipeline;
  std::mutex mu;
};

/// One matrix cell: `readers` query threads (spread over `tenants` tenant
/// ids) against one pipeline with a full-rate ingest thread, for
/// `duration_s`. mode == "frontend" goes through QueryFrontend; "mutex"
/// through the lock-per-query baseline. Both issue the same 15/16 total,
/// 1/16 top-k mix over the 64 hottest keys.
ServingCell RunServingCell(const char* mode, int readers, int tenants,
                           double duration_s, bool quick,
                           bool* pair_consistent,
                           platform::TelemetryReport::ServingSummary*
                               telemetry_out) {
  ServingCell cell;
  cell.mode = mode;
  cell.readers = readers;
  cell.tenants = tenants;

  LambdaPipeline pipeline(ServingPipelineConfig(quick));
  workload::TextStreamGenerator gen(10000, 1.1, 97);
  PreloadPipeline(&pipeline, &gen, quick ? 20000 : 60000);

  const bool use_frontend = std::string(mode) == "frontend";
  MutexMergeBaseline baseline(&pipeline);
  QueryFrontendConfig fe_config;
  fe_config.workers = 2;  // Misses only; hits are answered inline.
  QueryFrontend frontend(&pipeline.serving(), fe_config);
  if (use_frontend) frontend.Start();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ingested{0};
  std::thread ingest([&] {
    int64_t t = 0;
    uint64_t n = 0;
    while (!stop.load(std::memory_order_acquire)) {
      pipeline.Ingest(t++, gen.Next(), 1.0);
      n++;
    }
    ingested.store(n, std::memory_order_release);
  });

  std::vector<uint64_t> counts(static_cast<size_t>(readers), 0);
  std::vector<std::vector<double>> latencies(static_cast<size_t>(readers));
  std::atomic<bool> pairs_ok{true};
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < readers; r++) {
    threads.emplace_back([&, r] {
      auto& lat = latencies[static_cast<size_t>(r)];
      lat.reserve(1 << 18);
      QueryRequest request;
      request.tenant = "tenant" + std::to_string(r % tenants);
      uint64_t i = static_cast<uint64_t>(r) * 7919;
      uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto t0 = std::chrono::steady_clock::now();
        if (i % 16 == 15) {
          if (use_frontend) {
            request.kind = QueryKind::kTopK;
            request.k = 10;
            Result<QueryResponse> r2 = frontend.Query(request);
            if (!r2.ok() || r2.value().batch_through_offset >
                                r2.value().through_offset) {
              pairs_ok.store(false, std::memory_order_relaxed);
            }
          } else {
            benchmark::DoNotOptimize(baseline.QueryTopK(10));
          }
        } else {
          const std::string& key = gen.TokenForRank(i % 64);
          if (use_frontend) {
            request.kind = QueryKind::kTotal;
            request.key = key;
            Result<QueryResponse> r2 = frontend.Query(request);
            if (!r2.ok() || r2.value().batch_through_offset >
                                r2.value().through_offset) {
              pairs_ok.store(false, std::memory_order_relaxed);
            }
          } else {
            benchmark::DoNotOptimize(baseline.QueryTotal(key));
          }
        }
        const auto t1 = std::chrono::steady_clock::now();
        lat.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        i++;
        n++;
      }
      counts[static_cast<size_t>(r)] = n;
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  ingest.join();
  const auto end = std::chrono::steady_clock::now();
  cell.seconds = std::chrono::duration<double>(end - start).count();

  for (uint64_t n : counts) cell.queries += n;
  cell.qps = static_cast<double>(cell.queries) / cell.seconds;
  std::vector<double> all;
  for (auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  cell.p50_us = Percentile(&all, 0.50);
  cell.p99_us = Percentile(&all, 0.99);
  cell.ingest_records = ingested.load();
  cell.ingest_per_sec = static_cast<double>(cell.ingest_records) / cell.seconds;

  if (use_frontend) {
    frontend.Stop();
    const FrontendStats stats = frontend.Stats();
    cell.served = stats.served;
    cell.rejected_quota = stats.rejected_quota;
    cell.rejected_queue = stats.rejected_queue;
    cell.cache_hits = stats.cache_hits;
    cell.cache_misses = stats.cache_misses;
    if (pair_consistent != nullptr && !pairs_ok.load()) {
      *pair_consistent = false;
    }
    if (telemetry_out != nullptr) {
      platform::TelemetryReport report;
      frontend.FillTelemetry(&report);
      *telemetry_out = report.serving;
    }
  } else {
    cell.served = cell.queries;
  }
  return cell;
}

int RunServingMatrix(bool quick, const std::string& out_path) {
  using bench::Row;
  const std::vector<int> reader_counts =
      quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> tenant_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 4};
  const double duration_s = quick ? 0.08 : 0.4;

  bench::TableTitle("I-serving-qps",
                    "lock-per-query merge vs snapshot-isolated front-end "
                    "(full-rate ingest in the background)");
  Row("%8s %7s %7s | %12s %9s %9s | %12s | %9s", "mode", "readers",
      "tenants", "read qps", "p50 us", "p99 us", "ingest/s", "hit%");

  bool pair_consistent = true;
  platform::TelemetryReport::ServingSummary telemetry;
  std::vector<ServingCell> cells;
  struct Speedup {
    int readers;
    int tenants;
    double mutex_qps;
    double frontend_qps;
    double speedup;
  };
  std::vector<Speedup> speedups;

  for (int tenants : tenant_counts) {
    for (int readers : reader_counts) {
      const ServingCell mutex_cell = RunServingCell(
          "mutex", readers, tenants, duration_s, quick, nullptr, nullptr);
      const ServingCell fe_cell =
          RunServingCell("frontend", readers, tenants, duration_s, quick,
                         &pair_consistent, &telemetry);
      for (const ServingCell& cell : {mutex_cell, fe_cell}) {
        const double hit_rate =
            cell.cache_hits + cell.cache_misses > 0
                ? 100.0 * static_cast<double>(cell.cache_hits) /
                      static_cast<double>(cell.cache_hits + cell.cache_misses)
                : 0.0;
        Row("%8s %7d %7d | %12.0f %9.2f %9.2f | %12.0f | %8.1f%%",
            cell.mode, cell.readers, cell.tenants, cell.qps, cell.p50_us,
            cell.p99_us, cell.ingest_per_sec, hit_rate);
        cells.push_back(cell);
      }
      speedups.push_back({readers, tenants, mutex_cell.qps, fe_cell.qps,
                          fe_cell.qps / mutex_cell.qps});
    }
  }

  Row("%s", "");
  Row("%8s %7s | %10s", "readers", "tenants", "speedup");
  for (const Speedup& s : speedups) {
    Row("%8d %7d | %9.2fx", s.readers, s.tenants, s.speedup);
  }
  Row("paper-shape check: the mutex merge is flat (or degrades) as readers");
  Row("are added — every query serializes; the snapshot front-end scales");
  Row("with reader threads while ingest keeps running at full rate.");
  if (!pair_consistent) {
    Row("FAILED: a query observed batch coverage beyond total coverage");
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"schema_version\": 1,\n  \"serving_bench\": {\n";
  out << "    \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "    \"pair_consistent\": " << (pair_consistent ? "true" : "false")
      << ",\n";
  out << "    \"cells\": [";
  for (size_t i = 0; i < cells.size(); i++) {
    const ServingCell& c = cells[i];
    out << (i == 0 ? "" : ",") << "\n      {\"mode\": \"" << c.mode
        << "\", \"readers\": " << c.readers << ", \"tenants\": " << c.tenants
        << ", \"seconds\": " << c.seconds << ", \"queries\": " << c.queries
        << ", \"qps\": " << c.qps << ", \"p50_us\": " << c.p50_us
        << ", \"p99_us\": " << c.p99_us
        << ", \"ingest_records\": " << c.ingest_records
        << ", \"ingest_per_sec\": " << c.ingest_per_sec
        << ", \"served\": " << c.served
        << ", \"rejected_quota\": " << c.rejected_quota
        << ", \"rejected_queue\": " << c.rejected_queue
        << ", \"cache_hits\": " << c.cache_hits
        << ", \"cache_misses\": " << c.cache_misses << "}";
  }
  out << "\n    ],\n    \"speedups\": [";
  for (size_t i = 0; i < speedups.size(); i++) {
    const Speedup& s = speedups[i];
    out << (i == 0 ? "" : ",") << "\n      {\"readers\": " << s.readers
        << ", \"tenants\": " << s.tenants << ", \"mutex_qps\": " << s.mutex_qps
        << ", \"frontend_qps\": " << s.frontend_qps
        << ", \"speedup\": " << s.speedup << "}";
  }
  out << "\n    ]\n  },\n  \"serving\": ";
  platform::TelemetryReport::WriteServingJson(out, telemetry, "  ");
  out << "\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return pair_consistent ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool serving = false;
  bool quick = false;
  std::string out_path = "BENCH_lambda_serving.json";
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--serving") {
      serving = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (serving) return RunServingMatrix(quick, out_path);

  int bench_argc = static_cast<int>(passthrough.size());
  ::benchmark::Initialize(&bench_argc, passthrough.data());
  if (::benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  PrintTables();
  return 0;
}
