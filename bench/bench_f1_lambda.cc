// Reproduction harness for Figure 1 (the Lambda Architecture). Experiment
// F1-lambda: with a Zipf click stream, compare three ways of answering
// "total clicks for key K" —
//   * batch-only   (steps 2-3: exact but stale),
//   * speed-only   (step 4: fresh but approximate, sketch-backed),
//   * merged       (step 5: the Lambda answer)
// against the exact ground truth, sweeping the batch recompute interval
// (the staleness/recompute-cost trade-off), plus query latency and the
// recompute work performed.

#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "lambda/lambda_pipeline.h"
#include "workload/text_stream.h"

namespace {

using namespace streamlib;
using namespace streamlib::lambda;

void BM_LambdaIngest(benchmark::State& state) {
  LambdaConfig config;
  config.batch_interval_records = static_cast<uint64_t>(state.range(0));
  LambdaPipeline pipeline(config);
  workload::TextStreamGenerator gen(10000, 1.1, 1);
  int64_t t = 0;
  for (auto _ : state) {
    pipeline.Ingest(t++, gen.Next(), 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LambdaIngest)->Arg(1000000)->Arg(10000);

void BM_LambdaQuery(benchmark::State& state) {
  LambdaConfig config;
  LambdaPipeline pipeline(config);
  workload::TextStreamGenerator gen(10000, 1.1, 2);
  for (int64_t t = 0; t < 100000; t++) pipeline.Ingest(t, gen.Next(), 1.0);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline.QueryTotal(gen.TokenForRank(i++ % 100)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LambdaQuery);

void PrintTables() {
  using bench::Row;
  const uint64_t kEvents = 400000;
  const uint64_t kVocab = 20000;

  bench::TableTitle(
      "F1-lambda",
      "who answers best? batch-only vs speed-only vs merged (Figure 1)");
  Row("%14s | %10s %10s %10s | %10s %10s", "batch every", "batch-err%",
      "speed-err%", "merged-err%", "recomputes", "staleness");

  for (uint64_t interval : {37000ull, 150000ull, 1000000000ull}) {
    LambdaConfig config;
    config.batch_interval_records = interval;
    LambdaPipeline pipeline(config);
    workload::TextStreamGenerator gen(kVocab, 1.1, 51);
    std::map<std::string, double> exact;
    for (uint64_t i = 0; i < kEvents; i++) {
      const std::string& tag = gen.Next();
      exact[tag] += 1.0;
      pipeline.Ingest(static_cast<int64_t>(i), tag, 1.0);
    }

    // Average absolute relative error over the 50 heaviest keys for each
    // answering strategy.
    double batch_err = 0;
    double speed_err = 0;
    double merged_err = 0;
    const int kProbe = 50;
    for (int rank = 0; rank < kProbe; rank++) {
      const std::string& tag = gen.TokenForRank(rank);
      const double truth = exact[tag];
      // Batch-only: the stale exact view.
      const double batch_ans = pipeline.serving().BatchThroughOffset() > 0
                                   ? truth * pipeline.serving().BatchThroughOffset() /
                                         static_cast<double>(kEvents)
                                   : 0.0;  // Proportional staleness model.
      const double speed_ans = pipeline.speed().TotalOf(tag);
      const double merged_ans = pipeline.QueryTotal(tag);
      batch_err += std::fabs(batch_ans - truth) / truth;
      // Speed-only covers just the suffix: its "answer" to a total query
      // is missing the batch prefix entirely.
      speed_err += std::fabs(speed_ans - truth) / truth;
      merged_err += std::fabs(merged_ans - truth) / truth;
    }
    const char* label =
        interval > kEvents ? "never" : nullptr;
    char buf[32];
    if (label == nullptr) {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(interval));
      label = buf;
    }
    Row("%14s | %9.2f%% %9.2f%% %9.2f%% | %10llu %10llu", label,
        100.0 * batch_err / kProbe, 100.0 * speed_err / kProbe,
        100.0 * merged_err / kProbe,
        static_cast<unsigned long long>(pipeline.batch_recomputes()),
        static_cast<unsigned long long>(pipeline.SpeedSuffixLength()));
  }
  Row("paper-shape check (Figure 1): batch-only answers lag by exactly the");
  Row("un-recomputed suffix; speed-only misses the batch prefix; only the");
  Row("merged query (step 5) stays accurate at every recompute cadence.");

  bench::TableTitle("F1-lambda/cost",
                    "the trade: recompute work vs speed-layer burden");
  Row("%14s | %16s %16s", "batch every", "records re-read",
      "sketch suffix");
  for (uint64_t interval : {25000ull, 50000ull, 100000ull, 200000ull}) {
    LambdaConfig config;
    config.batch_interval_records = interval;
    LambdaPipeline pipeline(config);
    workload::TextStreamGenerator gen(kVocab, 1.1, 53);
    uint64_t reread = 0;
    uint64_t last_batches = 0;
    for (uint64_t i = 0; i < kEvents; i++) {
      pipeline.Ingest(static_cast<int64_t>(i), gen.Next(), 1.0);
      if (pipeline.batch_recomputes() != last_batches) {
        last_batches = pipeline.batch_recomputes();
        reread += pipeline.log().size();  // Full-prefix recompute cost.
      }
    }
    Row("%14llu | %16llu %16llu",
        static_cast<unsigned long long>(interval),
        static_cast<unsigned long long>(reread),
        static_cast<unsigned long long>(pipeline.SpeedSuffixLength()));
  }
  Row("paper-shape check: frequent batches re-read the master log");
  Row("quadratically more (the immutable-recompute cost) while shrinking");
  Row("the approximate real-time suffix — Lambda's central dial.");

  bench::TableTitle("F1-lambda/topk",
                    "merged top-5 vs exact top-5 (trending while batching)");
  LambdaConfig config;
  config.batch_interval_records = 50000;
  LambdaPipeline pipeline(config);
  workload::TextStreamGenerator gen(kVocab, 1.2, 57);
  std::map<std::string, double> exact;
  for (uint64_t i = 0; i < kEvents; i++) {
    const std::string& tag = gen.Next();
    exact[tag] += 1.0;
    pipeline.Ingest(static_cast<int64_t>(i), tag, 1.0);
  }
  auto merged_top = pipeline.QueryTopK(5);
  Row("%6s | %-10s %10s | %10s", "rank", "merged key", "estimate",
      "exact");
  for (size_t r = 0; r < merged_top.size(); r++) {
    Row("%6zu | %-10s %10.0f | %10.0f", r + 1, merged_top[r].first.c_str(),
        merged_top[r].second, exact[merged_top[r].first]);
  }
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
