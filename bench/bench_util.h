#ifndef STREAMLIB_BENCH_BENCH_UTIL_H_
#define STREAMLIB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace streamlib::bench {

/// Prints the header of a reproduction table (the paper-artifact section
/// each bench binary emits after its google-benchmark timing section).
inline void TableTitle(const char* experiment_id, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("REPRODUCTION %s — %s\n", experiment_id, description);
  std::printf("================================================================\n");
}

/// printf-style row helper so tables align.
inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);
  va_end(args);
  std::printf("\n");
}

/// Standard main body: run the registered google-benchmark timings, then
/// the caller's reproduction tables.
#define STREAMLIB_BENCH_MAIN(print_tables_fn)                          \
  int main(int argc, char** argv) {                                    \
    ::benchmark::Initialize(&argc, argv);                              \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                             \
    print_tables_fn();                                                 \
    return 0;                                                          \
  }

}  // namespace streamlib::bench

#endif  // STREAMLIB_BENCH_BENCH_UTIL_H_
