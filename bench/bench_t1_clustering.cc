// Reproduction harness for Table 1, row "Clustering" (application: medical
// imaging / any feature stream). Experiment T1-clustering: SSE of online
// k-means, CluStream micro-clusters and STREAM k-median against the batch
// k-means++ baseline on Gaussian mixtures; memory; throughput; and a
// concept-drift scenario where recency-aware micro-clusters shine.

#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/clustering/kmeans_util.h"
#include "core/clustering/micro_clusters.h"
#include "core/clustering/online_kmeans.h"
#include "core/clustering/stream_kmedian.h"

namespace {

using namespace streamlib;

std::vector<Point> Mixture(const std::vector<Point>& centers, double sigma,
                           size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; i++) {
    const Point& c = centers[rng.NextBounded(centers.size())];
    Point p(c.size());
    for (size_t j = 0; j < c.size(); j++) {
      p[j] = c[j] + sigma * rng.NextGaussian();
    }
    out.push_back(std::move(p));
  }
  return out;
}

const std::vector<Point> kCenters = {{0, 0},   {12, 0}, {0, 12},
                                     {12, 12}, {6, 20}, {20, 6}};

void BM_OnlineKMeansAdd(benchmark::State& state) {
  OnlineKMeans km(8, 4, 1);
  Rng rng(2);
  Point p(4);
  for (auto _ : state) {
    for (auto& v : p) v = rng.NextGaussian();
    km.Add(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineKMeansAdd);

void BM_CluStreamAdd(benchmark::State& state) {
  CluStream cs(100, 4, 2.0, 3);
  Rng rng(4);
  Point p(4);
  uint64_t t = 0;
  for (auto _ : state) {
    for (auto& v : p) v = rng.NextGaussian();
    cs.Add(p, static_cast<double>(t++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CluStreamAdd);

void BM_StreamKMedianAdd(benchmark::State& state) {
  StreamKMedian skm(8, 256, 5);
  Rng rng(6);
  Point p(4);
  for (auto _ : state) {
    for (auto& v : p) v = rng.NextGaussian();
    skm.Add(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamKMedianAdd);

void PrintTables() {
  using bench::Row;
  const size_t kN = 50000;
  const size_t kK = kCenters.size();

  bench::TableTitle("T1-clustering",
                    "SSE vs batch k-means++ baseline (lower is better)");
  auto data = Mixture(kCenters, 1.0, kN, 41);
  std::vector<WeightedPoint> weighted;
  weighted.reserve(data.size());
  for (auto& p : data) weighted.push_back(WeightedPoint{p, 1.0});

  Rng rng(43);
  auto batch = WeightedKMeans(weighted, kK, 25, &rng);
  const double batch_sse = WeightedSse(weighted, batch);

  OnlineKMeans online(kK, 2, 47);
  CluStream clustream(80, 2, 2.0, 53);
  StreamKMedian skm(kK, 400, 59);
  for (size_t i = 0; i < data.size(); i++) {
    online.Add(data[i]);
    clustream.Add(data[i], static_cast<double>(i));
    skm.Add(data[i]);
  }
  std::vector<WeightedPoint> online_centers;
  for (size_t c = 0; c < online.centers().size(); c++) {
    online_centers.push_back(WeightedPoint{
        online.centers()[c], static_cast<double>(online.counts()[c])});
  }
  const double online_sse = WeightedSse(weighted, online_centers);
  const double clustream_sse =
      WeightedSse(weighted, clustream.MacroClusters(kK));
  const double skm_sse = WeightedSse(weighted, skm.Centers());

  Row("%-22s %14s %10s %14s", "algorithm", "SSE", "vs batch", "state");
  Row("%-22s %14.0f %9.2fx %14s", "batch k-means++ (ref)", batch_sse, 1.0,
      "full dataset");
  Row("%-22s %14.0f %9.2fx %10zu pts", "online k-means", online_sse,
      online_sse / batch_sse, online.centers().size());
  Row("%-22s %14.0f %9.2fx %7zu micro", "CluStream", clustream_sse,
      clustream_sse / batch_sse, clustream.micro_clusters().size());
  Row("%-22s %14.0f %9.2fx %10zu pts", "STREAM k-median", skm_sse,
      skm_sse / batch_sse, skm.RetainedPoints());
  Row("paper-shape check: all streaming clusterers land within a small");
  Row("constant of the batch optimum while holding O(k)..O(q) state.");

  bench::TableTitle("T1-clustering/drift",
                    "concept drift: clusters move mid-stream");
  // Phase 1 around kCenters; phase 2 shifted by (30, 30).
  std::vector<Point> shifted;
  for (const Point& c : kCenters) shifted.push_back({c[0] + 30, c[1] + 30});
  auto phase1 = Mixture(kCenters, 1.0, kN / 2, 61);
  auto phase2 = Mixture(shifted, 1.0, kN / 2, 67);

  CluStream drift_cs(80, 2, 2.0, 71);
  OnlineKMeans drift_km(kK, 2, 73);
  uint64_t t = 0;
  for (const auto& p : phase1) {
    drift_cs.Add(p, static_cast<double>(t++));
    drift_km.Add(p);
  }
  for (const auto& p : phase2) {
    drift_cs.Add(p, static_cast<double>(t++));
    drift_km.Add(p);
  }
  // Score against the *current* (phase 2) distribution only.
  std::vector<WeightedPoint> current;
  for (auto& p : phase2) current.push_back(WeightedPoint{p, 1.0});
  Rng rng2(79);
  const double ref = WeightedSse(
      current, WeightedKMeans(current, kK, 25, &rng2));
  std::vector<WeightedPoint> km_centers;
  for (size_t c = 0; c < drift_km.centers().size(); c++) {
    km_centers.push_back(WeightedPoint{
        drift_km.centers()[c], static_cast<double>(drift_km.counts()[c])});
  }
  Row("%-22s %14s %10s", "algorithm", "SSE(now)", "vs batch-now");
  Row("%-22s %14.0f %9.2fx", "batch on phase2 (ref)", ref, 1.0);
  const double cs_sse = WeightedSse(current, drift_cs.MacroClusters(kK));
  const double km_sse = WeightedSse(current, km_centers);
  Row("%-22s %14.0f %9.2fx", "CluStream", cs_sse, cs_sse / ref);
  Row("%-22s %14.0f %9.2fx", "online k-means", km_sse, km_sse / ref);
  Row("paper-shape check: CluStream's micro-clusters migrate with the");
  Row("drift; online k-means' 1/n learning rate freezes centers at the");
  Row("historical mixture — the stream-evolution motivation of [33, 34].");

  bench::TableTitle("T1-clustering/horizon",
                    "CluStream pyramidal time frame: clustering any "
                    "recent horizon by snapshot subtraction");
  {
    CluStream pyramidal(80, 2, 2.0, 83);
    uint64_t t2 = 0;
    for (const auto& p : phase1) pyramidal.Add(p, static_cast<double>(t2++));
    for (const auto& p : phase2) pyramidal.Add(p, static_cast<double>(t2++));
    const double full_ref = WeightedSse(
        current, pyramidal.MacroClustersOverHorizon(kK, 1e18));
    const double recent_ref = WeightedSse(
        current, pyramidal.MacroClustersOverHorizon(
                     kK, static_cast<double>(phase2.size()) * 0.8));
    Row("%-30s %14s", "query", "SSE vs phase-2 data");
    Row("%-30s %14.0f", "horizon = all history", full_ref);
    Row("%-30s %14.0f", "horizon = recent only", recent_ref);
    Row("snapshots retained: %zu (O(log T), not one per tick)",
        pyramidal.SnapshotCount());
    Row("paper-shape check: subtracting the pre-horizon snapshot (CF");
    Row("additivity + id lists) recovers the *current* mixture that the");
    Row("all-history query smears — CluStream's signature query.");
  }
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
