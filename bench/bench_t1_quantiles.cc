// Reproduction harness for Table 1, row "Estimating Quantiles"
// (application: network analysis / latency tracking). Experiment
// T1-quantiles: rank error and space of GK, CKMS (targeted), Frugal-2U and
// t-digest across value distributions and quantiles.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/quantiles/ckms_quantile.h"
#include "core/quantiles/frugal.h"
#include "core/quantiles/gk_quantile.h"
#include "core/quantiles/qdigest.h"
#include "core/quantiles/sliding_quantile.h"
#include "core/quantiles/tdigest.h"
#include "workload/zipf.h"

namespace {

using namespace streamlib;

void BM_GkAdd(benchmark::State& state) {
  GkQuantile gk(0.01);
  Rng rng(1);
  for (auto _ : state) gk.Add(rng.NextDouble());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GkAdd);

void BM_CkmsAdd(benchmark::State& state) {
  CkmsQuantile ckms({{0.5, 0.01}, {0.99, 0.001}});
  Rng rng(2);
  for (auto _ : state) ckms.Add(rng.NextDouble());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CkmsAdd);

void BM_TDigestAdd(benchmark::State& state) {
  TDigest digest(100);
  Rng rng(3);
  for (auto _ : state) digest.Add(rng.NextDouble());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TDigestAdd);

void BM_Frugal2UAdd(benchmark::State& state) {
  Frugal2U frugal(0.99, 4);
  Rng rng(5);
  for (auto _ : state) frugal.Add(rng.NextDouble());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Frugal2UAdd);

std::vector<double> MakeStream(const char* kind, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  if (std::string(kind) == "uniform") {
    for (auto& v : out) v = rng.NextDouble() * 1000.0;
  } else if (std::string(kind) == "gaussian") {
    for (auto& v : out) v = 500.0 + 80.0 * rng.NextGaussian();
  } else {  // zipf-valued: heavy-tailed latencies.
    workload::ZipfGenerator zipf(100000, 1.3, seed);
    for (auto& v : out) v = static_cast<double>(zipf.Next() + 1);
  }
  return out;
}

// Rank of `value` as a fraction of n.
double FracRank(const std::vector<double>& sorted, double value) {
  return static_cast<double>(std::upper_bound(sorted.begin(), sorted.end(),
                                              value) -
                             sorted.begin()) /
         static_cast<double>(sorted.size());
}

void PrintTables() {
  using bench::Row;
  const size_t kN = 1000000;

  bench::TableTitle("T1-quantiles",
                    "rank error (in %% of n) at p50/p90/p99/p999 + space");
  for (const char* kind : {"uniform", "gaussian", "zipf"}) {
    auto data = MakeStream(kind, kN, 11);
    GkQuantile gk(0.001);
    CkmsQuantile ckms({{0.5, 0.001}, {0.9, 0.001}, {0.99, 0.0005},
                       {0.999, 0.0002}});
    TDigest digest(100);
    Frugal2U frugal50(0.5, 7);
    Frugal2U frugal99(0.99, 8);
    for (double v : data) {
      gk.Add(v);
      ckms.Add(v);
      digest.Add(v);
      frugal50.Add(v);
      frugal99.Add(v);
    }
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());

    Row("-- %s stream --", kind);
    Row("%10s | %10s %10s %10s %10s", "phi", "GK", "CKMS", "t-digest",
        "frugal2u");
    for (double phi : {0.5, 0.9, 0.99, 0.999}) {
      const double gk_err = std::fabs(FracRank(sorted, gk.Query(phi)) - phi);
      const double ck_err =
          std::fabs(FracRank(sorted, ckms.Query(phi)) - phi);
      const double td_err =
          std::fabs(FracRank(sorted, digest.Quantile(phi)) - phi);
      double fr_err = -1.0;
      if (phi == 0.5) {
        fr_err = std::fabs(FracRank(sorted, frugal50.Estimate()) - phi);
      } else if (phi == 0.99) {
        fr_err = std::fabs(FracRank(sorted, frugal99.Estimate()) - phi);
      }
      if (fr_err >= 0) {
        Row("%10.3f | %9.4f%% %9.4f%% %9.4f%% %9.4f%%", phi, 100 * gk_err,
            100 * ck_err, 100 * td_err, 100 * fr_err);
      } else {
        Row("%10.3f | %9.4f%% %9.4f%% %9.4f%% %10s", phi, 100 * gk_err,
            100 * ck_err, 100 * td_err, "-");
      }
    }
    Row("space: GK %zu tuples, CKMS %zu tuples, t-digest %zu centroids, "
        "frugal 1 value",
        gk.SummarySize(), ckms.SummarySize(), digest.NumCentroids());
  }
  Row("paper-shape check: t-digest keeps tail quantiles tight at tiny");
  Row("space; GK honors its uniform eps bound; frugal trades guarantees");
  Row("for two machine words.");

  bench::TableTitle("T1-quantiles/mergeable",
                    "q-digest [148]: lossless merging for in-network "
                    "aggregation (fixed 16-bit universe)");
  // Sensor-network scenario: 8 sites summarize locally, the sink merges.
  Rng rng(71);
  QDigest merged(16, 200);
  std::vector<uint32_t> all;
  for (int site = 0; site < 8; site++) {
    QDigest local(16, 200);
    for (int i = 0; i < 50000; i++) {
      const uint32_t v = static_cast<uint32_t>(
          std::min(65535.0, std::max(0.0, 32768.0 + 6000.0 * rng.NextGaussian() +
                                              site * 800.0)));
      local.Add(v);
      all.push_back(v);
    }
    if (merged.Merge(local).ok()) {
    }
  }
  std::sort(all.begin(), all.end());
  Row("%10s | %10s %10s %10s", "phi", "merged", "exact", "rank err");
  for (double phi : {0.1, 0.5, 0.9, 0.99}) {
    const uint32_t answer = merged.Quantile(phi);
    const double rank = static_cast<double>(
        std::upper_bound(all.begin(), all.end(), answer) - all.begin());
    Row("%10.2f | %10u %10u %9.3f%%", phi, answer,
        all[static_cast<size_t>(phi * (all.size() - 1))],
        100.0 * std::fabs(rank / all.size() - phi));
  }
  Row("space at the sink: %zu q-digest nodes for %zu readings across sites",
      merged.NumNodes(), all.size());

  bench::TableTitle("T1-quantiles/sliding",
                    "sliding-window quantiles (the [42] problem, via "
                    "pane-merged t-digests): latency shift tracking");
  {
    SlidingWindowQuantile swq(10000, 10, 100.0);
    TDigest whole(100.0);
    Rng rng2(91);
    Row("%10s | %12s %12s %12s", "step", "true p99", "windowed", "whole-stream");
    for (int i = 0; i < 60000; i++) {
      // Latency regime doubles at t=30k.
      const double base = i < 30000 ? 100.0 : 200.0;
      const double v = base + 12.0 * std::fabs(rng2.NextGaussian());
      swq.Add(v);
      whole.Add(v);
      if (i == 29999 || i == 34999 || i == 59999) {
        const double true_p99 = base + 12.0 * 2.576;
        Row("%10d | %12.1f %12.1f %12.1f", i + 1, true_p99,
            swq.Quantile(0.99), whole.Quantile(0.99));
      }
    }
    Row("space: %zu centroids across panes", swq.TotalCentroids());
    Row("paper-shape check: the windowed p99 snaps to the new regime one");
    Row("window after the shift; the whole-stream digest never recovers —");
    Row("why [42] poses quantiles over sliding windows at all.");
  }
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
