// Reproduction harness for Table 1, row "Filtering" (application: set
// membership). Experiments T1-filtering and ablation A-bloom-blocked.
//
// Timing section: insert/lookup throughput of the four filters.
// Table section: measured false-positive rate vs target across FPP sweep;
// bits/key accounting; blocked-vs-standard Bloom ablation; cuckoo deletion.

#include <cstdint>
#include <string>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "core/filtering/blocked_bloom_filter.h"
#include "core/filtering/bloom_filter.h"
#include "core/filtering/counting_bloom_filter.h"
#include "core/filtering/cuckoo_filter.h"
#include "core/filtering/deletable_bloom_filter.h"
#include "core/filtering/stable_bloom_filter.h"

namespace {

using namespace streamlib;

constexpr uint64_t kKeys = 1000000;

void BM_BloomAdd(benchmark::State& state) {
  BloomFilter filter = BloomFilter::WithExpectedItems(kKeys, 0.01);
  uint64_t i = 0;
  for (auto _ : state) filter.AddHash(Mix64(i++));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomAdd);

void BM_BloomContains(benchmark::State& state) {
  BloomFilter filter = BloomFilter::WithExpectedItems(kKeys, 0.01);
  for (uint64_t i = 0; i < kKeys; i++) filter.AddHash(Mix64(i));
  uint64_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= filter.ContainsHash(Mix64(i++));
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomContains);

void BM_BlockedBloomContains(benchmark::State& state) {
  BlockedBloomFilter filter =
      BlockedBloomFilter::WithExpectedItems(kKeys, 0.01);
  for (uint64_t i = 0; i < kKeys; i++) filter.AddHash(Mix64(i));
  uint64_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= filter.ContainsHash(Mix64(i++));
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockedBloomContains);

void BM_CuckooContains(benchmark::State& state) {
  CuckooFilter filter(kKeys);
  for (uint64_t i = 0; i < kKeys; i++) filter.AddHash(Mix64(i));
  uint64_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= filter.ContainsHash(Mix64(i++));
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooContains);

double MeasureFpp(const auto& filter, uint64_t probes) {
  uint64_t fps = 0;
  for (uint64_t i = 0; i < probes; i++) {
    if (filter.ContainsHash(Mix64(0xffff0000ULL + i))) fps++;
  }
  return 100.0 * static_cast<double>(fps) / static_cast<double>(probes);
}

void PrintTables() {
  using bench::Row;
  const uint64_t kProbes = 500000;

  bench::TableTitle("T1-filtering",
                    "Bloom family: measured FPP vs target, bits per key");
  Row("%8s | %9s %9s | %9s %9s | %9s", "target", "bloom fpp", "bits/key",
      "blocked", "bits/key", "cuckoo fpp");
  for (double fpp : {0.1, 0.03, 0.01, 0.003, 0.001}) {
    BloomFilter bloom = BloomFilter::WithExpectedItems(kKeys, fpp);
    BlockedBloomFilter blocked =
        BlockedBloomFilter::WithExpectedItems(kKeys, fpp);
    CuckooFilter cuckoo(kKeys);
    for (uint64_t i = 0; i < kKeys; i++) {
      const uint64_t h = Mix64(i);
      bloom.AddHash(h);
      blocked.AddHash(h);
      cuckoo.AddHash(h);
    }
    Row("%7.2f%% | %8.3f%% %9.1f | %8.3f%% %9.1f | %8.4f%%", 100 * fpp,
        MeasureFpp(bloom, kProbes),
        8.0 * static_cast<double>(bloom.MemoryBytes()) / kKeys,
        MeasureFpp(blocked, kProbes),
        8.0 * static_cast<double>(blocked.MemoryBytes()) / kKeys,
        MeasureFpp(cuckoo, kProbes));
  }
  Row("paper-shape check: blocked Bloom trades a small FPP inflation for");
  Row("one-cache-line probes (see BM_BlockedBloomContains speedup above);");
  Row("cuckoo reaches ~0.01%% FPP from 16-bit fingerprints and supports "
      "deletion.");

  bench::TableTitle("T1-filtering/delete",
                    "deletable filters: counting Bloom vs cuckoo");
  CountingBloomFilter counting =
      CountingBloomFilter::WithExpectedItems(kKeys / 10, 0.01);
  CuckooFilter cuckoo(kKeys / 10);
  for (uint64_t i = 0; i < kKeys / 10; i++) {
    counting.AddHash(Mix64(i));
    cuckoo.AddHash(Mix64(i));
  }
  for (uint64_t i = 0; i < kKeys / 20; i++) {
    counting.RemoveHash(Mix64(i));
    cuckoo.RemoveHash(Mix64(i));
  }
  uint64_t counting_fn = 0;
  uint64_t cuckoo_fn = 0;
  for (uint64_t i = kKeys / 20; i < kKeys / 10; i++) {
    if (!counting.ContainsHash(Mix64(i))) counting_fn++;
    if (!cuckoo.ContainsHash(Mix64(i))) cuckoo_fn++;
  }
  Row("after deleting half the keys: false negatives on survivors — "
      "counting: %llu, cuckoo: %llu (both must be 0)",
      static_cast<unsigned long long>(counting_fn),
      static_cast<unsigned long long>(cuckoo_fn));
  Row("memory: counting Bloom %zu B (4-bit counters) vs cuckoo %zu B",
      counting.MemoryBytes(), cuckoo.MemoryBytes());

  // Deletable Bloom [143]: probabilistic deletion at ~1 bit of overhead
  // per region instead of 4 bits per counter.
  DeletableBloomFilter dlbf(1 << 17, 4, 8192);
  const uint64_t kDlbfKeys = kKeys / 100;
  for (uint64_t i = 0; i < kDlbfKeys; i++) dlbf.AddHash(Mix64(i));
  uint64_t deletable = 0;
  for (uint64_t i = 0; i < kDlbfKeys; i++) {
    if (dlbf.RemoveHash(Mix64(i))) deletable++;
  }
  Row("deletable Bloom [143]: %.1f%% of keys deletable at load %.2f "
      "(collided regions: %.1f%%), %zu B total",
      100.0 * static_cast<double>(deletable) / kDlbfKeys,
      static_cast<double>(kDlbfKeys) * 4 / (1 << 17),
      100.0 * dlbf.CollidedRegionFraction(), dlbf.MemoryBytes());

  bench::TableTitle("T1-filtering/dedup",
                    "stable Bloom on an unbounded stream (stream "
                    "imperfections requirement)");
  StableBloomFilter stable(1 << 18, 4, 3, 10, 97);
  BloomFilter plain(1 << 18, 4);
  Row("%12s | %12s %12s", "inserts", "stable fpp%", "plain fpp%");
  for (uint64_t phase = 1; phase <= 4; phase++) {
    for (uint64_t i = (phase - 1) * 250000; i < phase * 250000; i++) {
      stable.AddAndCheckDuplicateHash(Mix64(i));
      plain.AddHash(Mix64(i));
    }
    uint64_t stable_fp = 0;
    uint64_t plain_fp = 0;
    for (uint64_t i = 0; i < 100000; i++) {
      const uint64_t h = Mix64(0xdead0000ULL + i);
      if (stable.ContainsHash(h)) stable_fp++;
      if (plain.ContainsHash(h)) plain_fp++;
    }
    Row("%12llu | %11.2f%% %11.2f%%",
        static_cast<unsigned long long>(phase * 250000),
        stable_fp / 1000.0, plain_fp / 1000.0);
  }
  Row("paper-shape check: the plain filter saturates toward 100%% FPP; the");
  Row("stable filter converges to a bounded plateau.");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
