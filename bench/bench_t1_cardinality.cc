// Reproduction harness for Table 1, row "Estimating Cardinality"
// (application: site audience analysis). See DESIGN.md §4, experiment
// T1-cardinality and ablation A-hll-sparse.
//
// Timing section: per-item update cost of each estimator.
// Table section: relative error and memory of LinearCounting / LogLog /
// HyperLogLog / KMV across true cardinalities 10^2..10^7, plus the HLL++
// sparse-mode ablation at low cardinality.

#include <cmath>
#include <cstdint>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "core/cardinality/hyperloglog.h"
#include "core/cardinality/kmv_sketch.h"
#include "core/cardinality/linear_counter.h"
#include "core/cardinality/loglog.h"
#include "core/cardinality/pcsa.h"
#include "core/cardinality/sliding_hyperloglog.h"
#include "core/cardinality/windowed_minhash.h"

namespace {

using namespace streamlib;

void BM_HyperLogLogAdd(benchmark::State& state) {
  HyperLogLog hll(12, /*sparse=*/false);
  uint64_t i = 0;
  for (auto _ : state) {
    hll.AddHash(Mix64(i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperLogLogAdd);

void BM_LinearCounterAdd(benchmark::State& state) {
  LinearCounter lc(1 << 20);
  uint64_t i = 0;
  for (auto _ : state) {
    lc.AddHash(Mix64(i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearCounterAdd);

void BM_KmvAdd(benchmark::State& state) {
  KmvSketch kmv(1024);
  uint64_t i = 0;
  for (auto _ : state) {
    kmv.AddHash(Mix64(i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KmvAdd);

void BM_SlidingHllAdd(benchmark::State& state) {
  SlidingHyperLogLog shll(12, 1 << 16);
  uint64_t i = 0;
  for (auto _ : state) {
    shll.AddHash(Mix64(i), i);
    i++;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingHllAdd);

double RelErr(double estimate, double truth) {
  return 100.0 * (estimate - truth) / truth;
}

void PrintTables() {
  using bench::Row;
  bench::TableTitle("T1-cardinality",
                    "distinct counting: error & memory vs true cardinality");

  Row("%10s | %9s %9s %9s %9s %9s | %s", "true n", "LC(128KB)", "PCSA4k",
      "LogLog12", "HLL12", "KMV1024", "err% (positive = over)");
  for (uint64_t n : {100ull, 1000ull, 10000ull, 100000ull, 1000000ull,
                     10000000ull}) {
    LinearCounter lc(1 << 20);
    PcsaCounter pcsa(512);  // 512 x 64-bit bitmaps = 4 KB, like HLL12.
    LogLogCounter ll(12);
    HyperLogLog hll(12);
    KmvSketch kmv(1024);
    for (uint64_t i = 0; i < n; i++) {
      const uint64_t h = Mix64(i * 0x9e3779b97f4a7c15ULL + n);
      lc.AddHash(h);
      pcsa.AddHash(h);
      ll.AddHash(h);
      hll.AddHash(h);
      kmv.AddHash(h);
    }
    const double nd = static_cast<double>(n);
    Row("%10llu | %+8.2f%% %+8.2f%% %+8.2f%% %+8.2f%% %+8.2f%% |",
        static_cast<unsigned long long>(n), RelErr(lc.Estimate(), nd),
        RelErr(pcsa.Estimate(), nd), RelErr(ll.Estimate(), nd),
        RelErr(hll.Estimate(), nd), RelErr(kmv.Estimate(), nd));
  }
  Row("paper-shape check — the historical progression [86]->[78]->[85]:");
  Row("PCSA (1983) -> LogLog (2003) -> HyperLogLog (2007) tightens error at");
  Row("equal memory; LC exact-ish until load, then bias.");

  bench::TableTitle("T1-cardinality/precision",
                    "HLL error scaling ~ 1.04/sqrt(2^p)");
  Row("%5s %12s %12s %12s", "p", "memory", "theory %", "measured %");
  const uint64_t kN = 2000000;
  for (int p : {8, 10, 12, 14, 16}) {
    HyperLogLog hll(p, /*sparse=*/false);
    for (uint64_t i = 0; i < kN; i++) {
      hll.AddHash(Mix64(i * 7919 + p));
    }
    const double theory = 104.0 / std::sqrt(std::pow(2.0, p));
    Row("%5d %10zu B %11.2f%% %+11.2f%%", p, hll.MemoryBytes(), theory,
        RelErr(hll.Estimate(), static_cast<double>(kN)));
  }

  bench::TableTitle("A-hll-sparse",
                    "HLL++ sparse mode: exact at low cardinality, same "
                    "memory envelope");
  Row("%10s | %12s %12s | %12s %12s", "true n", "sparse est", "sparse B",
      "dense est", "dense B");
  for (uint64_t n : {10ull, 100ull, 300ull, 1000ull, 10000ull}) {
    HyperLogLog sparse(12, /*sparse=*/true);
    HyperLogLog dense(12, /*sparse=*/false);
    for (uint64_t i = 0; i < n; i++) {
      const uint64_t h = Mix64(i + 31 * n);
      sparse.AddHash(h);
      dense.AddHash(h);
    }
    Row("%10llu | %12.0f %10zu B | %12.0f %10zu B",
        static_cast<unsigned long long>(n), sparse.Estimate(),
        sparse.MemoryBytes(), dense.Estimate(), dense.MemoryBytes());
  }

  bench::TableTitle("T1-cardinality/sliding",
                    "Sliding HyperLogLog: any-window distinct counts");
  SlidingHyperLogLog shll(12, 1 << 16);
  const uint64_t kTicks = 1 << 18;
  for (uint64_t t = 0; t < kTicks; t++) {
    shll.Add(t, t);  // One fresh key per tick: truth == window size.
  }
  Row("%12s %12s %12s %10s", "window", "estimate", "true", "err%");
  for (uint64_t w : {1024ull, 4096ull, 16384ull, 65536ull}) {
    const double est = shll.Estimate(kTicks - 1, w);
    Row("%12llu %12.0f %12llu %+9.2f%%",
        static_cast<unsigned long long>(w), est,
        static_cast<unsigned long long>(w),
        RelErr(est, static_cast<double>(w)));
  }
  Row("memory: %zu LFPM entries across 4096 registers (O(log W)/register)",
      shll.TotalEntries());

  bench::TableTitle("T1-cardinality/similarity",
                    "windowed min-hash [73]: Jaccard similarity of two "
                    "streams' sliding windows");
  Row("%14s | %10s %10s", "true overlap", "true J", "estimate");
  for (uint64_t overlap : {0ull, 100ull, 200ull, 300ull}) {
    WindowedMinHash a(512, 20000);
    WindowedMinHash b(512, 20000);
    // A sees {0..299}; B sees {300-overlap .. 599-overlap}.
    for (uint64_t t = 0; t < 60000; t++) {
      a.Add(t % 300, t);
      b.Add(300 - overlap + (t % 300), t);
    }
    const double true_j =
        static_cast<double>(overlap) / static_cast<double>(600 - overlap);
    Row("%14llu | %10.3f %10.3f",
        static_cast<unsigned long long>(overlap), true_j,
        WindowedMinHash::EstimateJaccard(a, b, 59999));
  }
  Row("paper-shape check: min-wise agreement tracks window-restricted");
  Row("Jaccard across overlap levels with O(k log W) memory per stream.");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
