// Reproduction harness for Table 1, rows "Counting Inversions" (measuring
// sortedness) and "Finding Subsequences" (LIS). Experiments T1-inversions
// and T1-subsequences: estimator error vs sample size across disorder
// levels; LIS memory and bounded-budget accuracy.

#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/order/inversions.h"
#include "core/order/lis.h"

namespace {

using namespace streamlib;

void BM_ExactInversionAdd(benchmark::State& state) {
  ExactInversionCounter counter(1 << 20);
  Rng rng(1);
  for (auto _ : state) {
    counter.Add(static_cast<uint32_t>(rng.NextBounded(1 << 20)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactInversionAdd);

void BM_SampledInversionAdd(benchmark::State& state) {
  SampledInversionEstimator estimator(1024, 2);
  Rng rng(3);
  for (auto _ : state) {
    estimator.Add(static_cast<uint32_t>(rng.NextBounded(1 << 20)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampledInversionAdd);

void BM_LisAdd(benchmark::State& state) {
  LisTracker tracker;
  Rng rng(4);
  for (auto _ : state) tracker.Add(rng.NextDouble());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LisAdd);

// A stream with controlled disorder: mostly ascending, `swap_rate` of
// positions replaced by random values.
std::vector<uint32_t> DisorderedStream(uint64_t n, double swap_rate,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  for (uint64_t i = 0; i < n; i++) {
    out[i] = rng.NextBool(swap_rate)
                 ? static_cast<uint32_t>(rng.NextBounded(n))
                 : static_cast<uint32_t>(i);
  }
  return out;
}

void PrintTables() {
  using bench::Row;
  const uint64_t kN = 100000;

  bench::TableTitle("T1-inversions",
                    "sortedness: estimator vs exact across disorder levels");
  Row("%10s | %14s %14s %8s | %10s", "disorder", "exact inv",
      "sampled(1k)", "err", "sortedness");
  for (double swap_rate : {0.0, 0.01, 0.1, 0.5, 1.0}) {
    auto stream = DisorderedStream(kN, swap_rate, 91);
    ExactInversionCounter exact(static_cast<uint32_t>(kN));
    SampledInversionEstimator sampled(1000, 93);
    for (uint32_t v : stream) {
      exact.Add(v);
      sampled.Add(v);
    }
    const double truth = static_cast<double>(exact.Inversions());
    const double est = sampled.Estimate();
    Row("%9.0f%% | %14.3e %14.3e %+7.1f%% | %10.4f", 100 * swap_rate, truth,
        est, truth > 0 ? 100.0 * (est - truth) / truth : 0.0,
        exact.Sortedness());
  }
  Row("paper-shape check: inversions rise smoothly with disorder; the");
  Row("O(k)-space sampling estimator tracks the O(U)-space exact counter.");

  bench::TableTitle("T1-inversions/samples",
                    "estimator error shrinks with sample size (~1/k)");
  Row("%10s | %10s", "samples", "err");
  auto stream = DisorderedStream(kN, 0.3, 95);
  ExactInversionCounter exact(static_cast<uint32_t>(kN));
  for (uint32_t v : stream) exact.Add(v);
  const double truth = static_cast<double>(exact.Inversions());
  for (size_t k : {64, 256, 1024, 4096}) {
    SampledInversionEstimator sampled(k, 97);
    for (uint32_t v : stream) sampled.Add(v);
    Row("%10zu | %+9.2f%%", k,
        100.0 * (sampled.Estimate() - truth) / truth);
  }

  bench::TableTitle("T1-subsequences",
                    "LIS: patience memory O(L); bounded-budget estimates");
  Row("%-26s %10s %10s %10s", "stream", "true LIS", "budget64",
      "memory");
  struct Case {
    const char* name;
    std::vector<double> data;
  };
  std::vector<Case> cases;
  {
    Rng rng(99);
    std::vector<double> random(50000);
    for (auto& v : random) v = rng.NextDouble();
    cases.push_back({"random permutation (50k)", std::move(random)});
    std::vector<double> ascending(50000);
    for (size_t i = 0; i < ascending.size(); i++) {
      ascending[i] = static_cast<double>(i);
    }
    cases.push_back({"fully ascending (50k)", std::move(ascending)});
    std::vector<double> noisy(50000);
    for (size_t i = 0; i < noisy.size(); i++) {
      noisy[i] = rng.NextBool(0.7) ? static_cast<double>(i)
                                   : rng.NextDouble() * 50000.0;
    }
    cases.push_back({"70% ascending (50k)", std::move(noisy)});
  }
  for (const Case& c : cases) {
    LisTracker tracker;
    BoundedLisEstimator bounded(64);
    for (double v : c.data) {
      tracker.Add(v);
      bounded.Add(v);
    }
    Row("%-26s %10zu %10zu %7zu vals", c.name, tracker.Length(),
        bounded.Estimate(), tracker.MemoryValues());
  }
  Row("paper-shape check: random streams need only O(sqrt n) memory for");
  Row("exact LIS; monotone streams stay exact even under a 64-value budget");
  Row("(the Omega(n) lower bound [87, 152] bites only for adversarial");
  Row("streams, where the bounded estimator degrades to an upper bound).");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
