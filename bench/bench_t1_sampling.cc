// Reproduction harness for Table 1, row "Sampling" (application: A/B
// testing). Experiment T1-sampling: uniformity of the reservoir family
// (chi-square over inclusion counts), weighted-sampling bias fidelity,
// sliding-window chain-sample memory, and update throughput.

#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "core/sampling/biased_reservoir.h"
#include "core/sampling/chain_sampler.h"
#include "core/sampling/distributed_sampler.h"
#include "core/sampling/reservoir_sampler.h"
#include "core/sampling/weighted_reservoir.h"

namespace {

using namespace streamlib;

void BM_ReservoirAdd(benchmark::State& state) {
  ReservoirSampler<uint64_t> sampler(1024, 1);
  uint64_t i = 0;
  for (auto _ : state) sampler.Add(i++);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReservoirAdd);

void BM_SkipReservoirAdd(benchmark::State& state) {
  SkipReservoirSampler<uint64_t> sampler(1024, 2);
  uint64_t i = 0;
  for (auto _ : state) sampler.Add(i++);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipReservoirAdd);

void BM_WeightedReservoirAdd(benchmark::State& state) {
  WeightedReservoirSampler<uint64_t> sampler(1024, 3);
  uint64_t i = 0;
  for (auto _ : state) {
    sampler.Add(i, 1.0 + static_cast<double>(i % 17));
    i++;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeightedReservoirAdd);

void BM_ChainSamplerAdd(benchmark::State& state) {
  ChainSampler<uint64_t> sampler(1 << 16, 4);
  uint64_t i = 0;
  for (auto _ : state) sampler.Add(i++);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainSamplerAdd);

// Chi-square of inclusion counts over stream positions; df = n-1.
template <typename SamplerFactory>
double UniformityChi2(SamplerFactory factory, int n, int k, int trials) {
  std::vector<int> inclusion(n, 0);
  for (int t = 0; t < trials; t++) {
    auto sampler = factory(t);
    for (int i = 0; i < n; i++) sampler.Add(i);
    for (int v : sampler.sample()) inclusion[v]++;
  }
  const double expected = static_cast<double>(trials) * k / n;
  double chi2 = 0;
  for (int c : inclusion) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  return chi2;
}

void PrintTables() {
  using bench::Row;
  bench::TableTitle("T1-sampling",
                    "uniformity: chi-square of inclusion counts "
                    "(df=199, 99%% range ~[150, 255])");
  const int kN = 200;
  const int kK = 20;
  const int kTrials = 20000;
  Row("%-22s %10s", "sampler", "chi2");
  Row("%-22s %10.1f", "reservoir (alg R)",
      UniformityChi2(
          [](int t) { return ReservoirSampler<int>(kK, 100 + t); }, kN, kK,
          kTrials));
  Row("%-22s %10.1f", "reservoir (skip/alg L)",
      UniformityChi2(
          [](int t) { return SkipReservoirSampler<int>(kK, 500 + t); }, kN,
          kK, kTrials));
  Row("biased reservoir is *intentionally* non-uniform; see below.");

  bench::TableTitle("T1-sampling/biased",
                    "biased reservoir: inclusion decays with age "
                    "(Aggarwal [33])");
  const uint64_t kStream = 50000;
  std::vector<int> decile_counts(10, 0);
  for (int t = 0; t < 400; t++) {
    BiasedReservoirSampler<uint64_t> sampler(100, 900 + t);
    for (uint64_t i = 0; i < kStream; i++) sampler.Add(i);
    for (uint64_t v : sampler.sample()) {
      decile_counts[v * 10 / kStream]++;
    }
  }
  Row("%12s %10s", "age decile", "share");
  int total = 0;
  for (int c : decile_counts) total += c;
  for (int d = 0; d < 10; d++) {
    Row("%10d%% %9.1f%%", (10 - d) * 10,
        100.0 * decile_counts[d] / total);
  }
  Row("(newest decile should dominate: exponential bias e^{-r/k})");

  bench::TableTitle("T1-sampling/window",
                    "chain sampling: O(1) expected memory for any window");
  Row("%12s %14s %14s", "window", "chain links", "naive buffer");
  for (uint64_t w : {1024ull, 65536ull, 1048576ull}) {
    ChainSampler<uint64_t> sampler(w, 7);
    for (uint64_t i = 0; i < 4 * w; i++) sampler.Add(i);
    Row("%12llu %14zu %14llu", static_cast<unsigned long long>(w),
        sampler.chain_length(), static_cast<unsigned long long>(w));
  }

  bench::TableTitle("T1-sampling/weighted",
                    "Efraimidis–Spirakis: P(select) proportional to weight");
  const int kTrialsW = 30000;
  // Items 0..9 with weight (i+1): P(i in size-1 sample) = (i+1)/55.
  std::vector<int> selected(10, 0);
  for (int t = 0; t < kTrialsW; t++) {
    WeightedReservoirSampler<int> sampler(1, 1300 + t);
    for (int i = 0; i < 10; i++) {
      sampler.Add(i, static_cast<double>(i + 1));
    }
    selected[sampler.Sample()[0]]++;
  }
  Row("%6s %10s %10s", "item", "expected", "measured");
  for (int i = 0; i < 10; i++) {
    Row("%6d %9.2f%% %9.2f%%", i, 100.0 * (i + 1) / 55.0,
        100.0 * selected[i] / kTrialsW);
  }

  bench::TableTitle("T1-sampling/distributed",
                    "continuous sampling from k distributed sites "
                    "(Cormode et al. [69, 70]): communication vs naive");
  Row("%8s %12s | %14s %14s %10s", "sites", "items", "naive msgs",
      "protocol msgs", "saving");
  for (uint64_t items : {100000ull, 1000000ull}) {
    for (uint32_t sites : {4u, 16u}) {
      DistributedSampler<uint64_t> sampler(sites, 256, 900 + sites);
      for (uint64_t i = 0; i < items; i++) {
        sampler.AddAtSite(static_cast<uint32_t>(i % sites), i);
      }
      Row("%8u %12llu | %14llu %14llu %9.0fx", sites,
          static_cast<unsigned long long>(items),
          static_cast<unsigned long long>(items),
          static_cast<unsigned long long>(sampler.total_messages()),
          static_cast<double>(items) /
              static_cast<double>(sampler.total_messages()));
    }
  }
  Row("paper-shape check (§2, 'algorithms should scale out'): message");
  Row("count grows as O((k + s) log n), not with the stream — the saving");
  Row("factor widens as the stream grows.");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
