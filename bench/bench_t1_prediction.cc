// Reproduction harness for Table 1, row "Data Prediction" (application:
// predicting missing values in sensor streams — Kalman filters [111, 160],
// adaptive forecasting [164]). Experiment T1-prediction: one-step-ahead
// RMSE and missing-value imputation RMSE of the four predictors on three
// canonical stream shapes.

#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/prediction/kalman_filter.h"
#include "core/prediction/online_ar.h"
#include "workload/timeseries.h"

namespace {

using namespace streamlib;

void BM_ScalarKalman(benchmark::State& state) {
  ScalarKalmanFilter kf(0.01, 1.0);
  Rng rng(1);
  for (auto _ : state) kf.Update(rng.NextGaussian());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScalarKalman);

void BM_VelocityKalman(benchmark::State& state) {
  VelocityKalmanFilter kf(0.01, 1.0);
  Rng rng(2);
  for (auto _ : state) kf.Update(rng.NextGaussian());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VelocityKalman);

void BM_OnlineAr4(benchmark::State& state) {
  OnlineArModel ar(4, 0.999);
  Rng rng(3);
  for (auto _ : state) ar.Update(rng.NextGaussian());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineAr4);

// Generates a stream; returns values.
std::vector<double> MakeSeries(const char* kind, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  if (std::string(kind) == "level") {
    for (int i = 0; i < n; i++) out.push_back(50.0 + 2.0 * rng.NextGaussian());
  } else if (std::string(kind) == "trend") {
    for (int i = 0; i < n; i++) {
      out.push_back(0.5 * i + 2.0 * rng.NextGaussian());
    }
  } else {  // ar2
    double x1 = 0;
    double x2 = 0;
    for (int i = 0; i < n; i++) {
      const double x = 1.2 * x1 - 0.4 * x2 + rng.NextGaussian();
      out.push_back(x);
      x2 = x1;
      x1 = x;
    }
  }
  return out;
}

struct Rmse {
  double scalar_kf;
  double velocity_kf;
  double ar;
  double holt;
  double persistence;
};

Rmse ForecastRmse(const std::vector<double>& series) {
  ScalarKalmanFilter skf(0.05, 4.0);
  VelocityKalmanFilter vkf(0.01, 4.0);
  OnlineArModel ar(2, 0.999);
  HoltWinters holt(0.3, 0.1);
  double e_s = 0;
  double e_v = 0;
  double e_a = 0;
  double e_h = 0;
  double e_p = 0;
  int counted = 0;
  double prev = 0;
  for (size_t i = 0; i < series.size(); i++) {
    const double x = series[i];
    if (i > 500) {
      const double fs = skf.level();
      const double fv = vkf.Forecast();
      const double fa = ar.Forecast();
      const double fh = holt.Forecast();
      e_s += (fs - x) * (fs - x);
      e_v += (fv - x) * (fv - x);
      e_a += (fa - x) * (fa - x);
      e_h += (fh - x) * (fh - x);
      e_p += (prev - x) * (prev - x);
      counted++;
    }
    skf.Update(x);
    vkf.Update(x);
    ar.Update(x);
    holt.Update(x);
    prev = x;
  }
  auto rmse = [&](double e) { return std::sqrt(e / counted); };
  return Rmse{rmse(e_s), rmse(e_v), rmse(e_a), rmse(e_h), rmse(e_p)};
}

void PrintTables() {
  using bench::Row;
  const int kN = 30000;

  bench::TableTitle("T1-prediction",
                    "one-step-ahead RMSE by stream shape (lower is better)");
  Row("%-8s | %9s %9s %9s %9s | %9s", "stream", "levelKF", "velKF",
      "AR-RLS", "Holt", "persist");
  for (const char* kind : {"level", "trend", "ar2"}) {
    const Rmse r = ForecastRmse(MakeSeries(kind, kN, 23));
    Row("%-8s | %9.3f %9.3f %9.3f %9.3f | %9.3f", kind, r.scalar_kf,
        r.velocity_kf, r.ar, r.holt, r.persistence);
  }
  Row("paper-shape check: AR-RLS wins decisively on the autoregressive");
  Row("stream; the trend-aware models (velocity KF, Holt) win on the steep");
  Row("ramp where the level KF lags; every model beats naive persistence.");

  bench::TableTitle("T1-prediction/missing",
                    "missing-value imputation RMSE (5%% of readings lost)");
  Row("%-8s | %12s %12s", "stream", "levelKF", "velKF");
  for (const char* kind : {"level", "trend"}) {
    auto series = MakeSeries(kind, kN, 29);
    Rng drop_rng(31);
    ScalarKalmanFilter skf(0.05, 4.0);
    VelocityKalmanFilter vkf(0.01, 4.0);
    double e_s = 0;
    double e_v = 0;
    int missing = 0;
    for (size_t i = 0; i < series.size(); i++) {
      const double x = series[i];
      if (i > 500 && drop_rng.NextBool(0.05)) {
        const double ps = skf.PredictMissing();
        const double pv = vkf.PredictMissing();
        e_s += (ps - x) * (ps - x);
        e_v += (pv - x) * (pv - x);
        missing++;
        continue;
      }
      skf.Update(x);
      vkf.Update(x);
    }
    Row("%-8s | %12.3f %12.3f", kind, std::sqrt(e_s / missing),
        std::sqrt(e_v / missing));
  }
  Row("(the velocity model's advantage appears exactly on the trending");
  Row("stream — the [160] use case of imputing drifting sensor feeds)");

  bench::TableTitle("T1-prediction/adaptation",
                    "RLS forgetting tracks coefficient flips");
  OnlineArModel adaptive(1, 0.99);
  OnlineArModel frozen(1, 1.0);
  Rng rng(37);
  double x1 = 1.0;
  Row("%10s | %12s %12s | %8s", "step", "lambda=0.99", "lambda=1.0",
      "true");
  for (int i = 0; i < 30000; i++) {
    const double coef = i < 15000 ? 0.9 : -0.9;
    const double x = coef * x1 + 0.5 * rng.NextGaussian();
    adaptive.Update(x);
    frozen.Update(x);
    x1 = x;
    if (i == 14999 || i == 16000 || i == 29999) {
      Row("%10d | %12.3f %12.3f | %8.1f", i + 1,
          adaptive.coefficients()[0], frozen.coefficients()[0], coef);
    }
  }
  Row("paper-shape check: with forgetting, the coefficient re-converges");
  Row("after the regime flip; without it the model averages the regimes.");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
