// Reproduction harness for Table 1, rows "Basic Counting" (popularity
// analysis) and "Significant One Counting" (traffic accounting).
// Experiments T1-basic-counting and T1-significant-ones: DGIM error vs its
// 1/(2(k-1)) bound across k and window sizes; space vs the exact buffer;
// the significant-one counter's space saving at equal decision quality.

#include <cmath>
#include <cstdint>
#include <deque>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/windowing/eh_sum.h"
#include "core/windowing/exponential_histogram.h"
#include "core/windowing/significant_ones.h"
#include "core/windowing/sliding_aggregator.h"
#include "core/windowing/sliding_topk.h"
#include "workload/bit_stream.h"

namespace {

using namespace streamlib;

void BM_DgimAdd(benchmark::State& state) {
  ExponentialHistogram eh(1 << 20, static_cast<uint32_t>(state.range(0)));
  workload::BernoulliBitStream bits(0.5, 1);
  for (auto _ : state) eh.Add(bits.Next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DgimAdd)->Arg(2)->Arg(8)->Arg(32);

void BM_EhSumAdd(benchmark::State& state) {
  EhSum sum(1 << 16, 8, 10);
  uint32_t i = 0;
  for (auto _ : state) sum.Add(i++ % 1000);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EhSumAdd);

void BM_TwoStacksAdd(benchmark::State& state) {
  SlidingAggregator<VarianceMonoid> agg(1 << 12);
  double v = 0;
  for (auto _ : state) {
    agg.Add(VarianceMonoid::Of(v));
    v += 0.7;
    if (v > 100) v = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoStacksAdd);

struct DgimRun {
  double max_rel_err;
  size_t buckets;
};

DgimRun RunDgim(uint64_t window, uint32_t k, double p_one, uint64_t seed) {
  ExponentialHistogram eh(window, k);
  workload::BurstyBitStream bits(0.9, p_one, 0.002, 0.01, seed);
  std::deque<bool> exact_bits;
  uint64_t exact = 0;
  DgimRun run{0.0, 0};
  const uint64_t steps = window * 6;
  for (uint64_t i = 0; i < steps; i++) {
    const bool bit = bits.Next();
    eh.Add(bit);
    exact_bits.push_back(bit);
    if (bit) exact++;
    if (exact_bits.size() > window) {
      if (exact_bits.front()) exact--;
      exact_bits.pop_front();
    }
    if (i > window && i % 257 == 0 && exact > 0) {
      const double err =
          std::fabs(static_cast<double>(eh.Estimate()) -
                    static_cast<double>(exact)) /
          static_cast<double>(exact);
      run.max_rel_err = std::max(run.max_rel_err, err);
    }
  }
  run.buckets = eh.NumBuckets();
  return run;
}

void PrintTables() {
  using bench::Row;

  bench::TableTitle("T1-basic-counting",
                    "DGIM: max relative error vs bound, space vs exact");
  Row("%6s %10s | %12s %12s | %10s %12s", "k", "window", "bound",
      "measured", "buckets", "exact bits");
  for (uint32_t k : {2, 4, 8, 16, 32}) {
    const uint64_t window = 1 << 16;
    DgimRun run = RunDgim(window, k, 0.05, 61 + k);
    Row("%6u %10llu | %11.2f%% %11.2f%% | %10zu %12llu", k,
        static_cast<unsigned long long>(window),
        100.0 / (2.0 * (k - 1)), 100.0 * run.max_rel_err, run.buckets,
        static_cast<unsigned long long>(window));
  }
  Row("paper-shape check: error halves as k doubles; space stays");
  Row("O(k log W) buckets vs the W-bit exact buffer.");

  bench::TableTitle("T1-basic-counting/window-sweep",
                    "DGIM space is logarithmic in the window");
  Row("%12s | %10s %16s", "window", "buckets", "exact buffer bits");
  for (uint64_t window : {1ull << 10, 1ull << 14, 1ull << 18, 1ull << 22}) {
    DgimRun run = RunDgim(window, 8, 0.3, 71);
    Row("%12llu | %10zu %16llu", static_cast<unsigned long long>(window),
        run.buckets, static_cast<unsigned long long>(window));
  }

  bench::TableTitle("T1-significant-ones",
                    "Lee–Ting relaxation: space saving at equal decisions");
  Row("%8s %6s | %10s %10s %8s | %10s %10s", "theta", "eps", "soc bkts",
      "dgim bkts", "ratio", "soc err%", "signif?");
  const uint64_t kWindow = 1 << 18;
  for (double theta : {0.1, 0.2, 0.4}) {
    const double eps = 0.1;
    SignificantOneCounter soc(kWindow, theta, eps);
    ExponentialHistogram dgim(
        kWindow, static_cast<uint32_t>(std::ceil(1.0 / eps)) + 1);
    workload::BernoulliBitStream bits(0.5, 83);
    std::deque<bool> ring;
    uint64_t exact = 0;
    double max_err = 0;
    for (uint64_t i = 0; i < kWindow * 3; i++) {
      const bool bit = bits.Next();
      soc.Add(bit);
      dgim.Add(bit);
      ring.push_back(bit);
      if (bit) exact++;
      if (ring.size() > kWindow) {
        if (ring.front()) exact--;
        ring.pop_front();
      }
      if (i > kWindow && i % 1031 == 0) {
        max_err = std::max(
            max_err, std::fabs(static_cast<double>(soc.Estimate()) -
                               static_cast<double>(exact)) /
                         static_cast<double>(exact));
      }
    }
    Row("%8.2f %6.2f | %10zu %10zu %7.1fx | %9.2f%% %10s", theta, eps,
        soc.NumBuckets(), dgim.NumBuckets(),
        static_cast<double>(dgim.NumBuckets()) /
            static_cast<double>(soc.NumBuckets()),
        100.0 * max_err, soc.IsSignificant() ? "yes" : "no");
  }
  Row("paper-shape check: the significant-one counter spends");
  Row("eps*theta*W of absolute slack to cut buckets by the theta-dependent");
  Row("factor while staying inside eps on significant windows.");

  bench::TableTitle("T1-window-topk",
                    "sliding-window top-k monitoring [138, 166]: k-skyband "
                    "candidates vs the full window");
  Row("%6s %12s | %14s %12s", "k", "window", "candidates", "vs W");
  for (uint64_t w : {10000ull, 100000ull, 1000000ull}) {
    SlidingTopK<uint64_t> topk(10, w);
    Rng rng(301);
    for (uint64_t i = 0; i < 2 * w; i++) {
      topk.Add(rng.NextDouble(), i);
    }
    Row("%6d %12llu | %14zu %11.0fx", 10,
        static_cast<unsigned long long>(w), topk.CandidateCount(),
        static_cast<double>(w) /
            static_cast<double>(topk.CandidateCount()));
  }
  Row("paper-shape check: the candidate set grows ~ k log(W/k), so the");
  Row("space ratio vs buffering the window widens with W — the 'time- and");
  Row("space-efficient' property of [138].");
}

}  // namespace

STREAMLIB_BENCH_MAIN(PrintTables)
