#!/usr/bin/env python3
"""Validates the H-fusion JSON emitted by `bench_t2_platform --fusion`.

Usage: check_fusion_json.py PATH

Checks, in order:
  * the file parses as JSON and carries a "fusion" object;
  * the sketch bit-identity gate passed (fused == queued state);
  * every cell has the expected keys with sane values, fused/queued runs
    come in pairs per (shape, semantics), and at least one fused cell
    actually fused edges;
  * the speedups array covers every pair, and the shapes where nothing
    fused report fused_edges == 0 (the honest ~1x rows are present).

Exit 0 on success, 1 with a diagnostic on the first failure. Throughput
ratios are NOT asserted here — a loaded CI host must not flake the suite;
the measured speedups live in EXPERIMENTS.md (H-fusion).
"""

import json
import sys

CELL_KEYS = {
    "shape", "semantics", "channel", "tuples", "seconds", "tuples_per_sec",
    "fused_edges", "completed_roots", "failed_roots",
}


def fail(msg):
    print("check_fusion_json: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_fusion_json.py PATH")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail("cannot load %s: %s" % (sys.argv[1], e))

    fusion = doc.get("fusion")
    if not isinstance(fusion, dict):
        fail("no \"fusion\" object in %s" % sys.argv[1])
    if fusion.get("sketch_state_identical") is not True:
        fail("sketch_state_identical is not true: fused execution changed "
             "sketch state")

    cells = fusion.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("fusion.cells missing or empty")
    pairs = {}
    for cell in cells:
        missing = CELL_KEYS - set(cell)
        if missing:
            fail("cell %r missing keys %s" % (cell.get("shape"),
                                              sorted(missing)))
        if cell["channel"] not in ("fused", "queued"):
            fail("bad channel %r" % cell["channel"])
        if cell["tuples"] <= 0 or cell["seconds"] <= 0:
            fail("non-positive tuples/seconds in %r" % cell["shape"])
        if cell["tuples_per_sec"] <= 0:
            fail("non-positive throughput in %r" % cell["shape"])
        if cell["channel"] == "queued" and cell["fused_edges"] != 0:
            fail("queued run of %r reports fused edges" % cell["shape"])
        key = (cell["shape"], cell["semantics"])
        pairs.setdefault(key, set()).add(cell["channel"])
    for key, channels in pairs.items():
        if channels != {"fused", "queued"}:
            fail("shape %r lacks a fused/queued pair (has %s)" %
                 (key, sorted(channels)))
    if not any(c["channel"] == "fused" and c["fused_edges"] > 0
               for c in cells):
        fail("no cell actually fused any edges")
    if not any(c["channel"] == "fused" and c["fused_edges"] == 0
               for c in cells):
        fail("no honest no-fusion-possible row in the matrix")

    speedups = fusion.get("speedups")
    if not isinstance(speedups, list):
        fail("fusion.speedups missing")
    covered = {(s["shape"], s["semantics"]) for s in speedups}
    if covered != set(pairs):
        fail("speedups cover %s but cells pair %s" %
             (sorted(covered), sorted(pairs)))
    for s in speedups:
        if s["speedup"] <= 0:
            fail("non-positive speedup for %r" % s["shape"])

    print("check_fusion_json: OK (%d cells, %d pairs)" %
          (len(cells), len(pairs)))


if __name__ == "__main__":
    main()
