# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/filtering_test[1]_include.cmake")
include("/root/repo/build/tests/cardinality_test[1]_include.cmake")
include("/root/repo/build/tests/quantiles_test[1]_include.cmake")
include("/root/repo/build/tests/frequency_test[1]_include.cmake")
include("/root/repo/build/tests/moments_test[1]_include.cmake")
include("/root/repo/build/tests/windowing_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/wavelet_test[1]_include.cmake")
include("/root/repo/build/tests/anomaly_test[1]_include.cmake")
include("/root/repo/build/tests/prediction_test[1]_include.cmake")
include("/root/repo/build/tests/clustering_test[1]_include.cmake")
include("/root/repo/build/tests/correlation_test[1]_include.cmake")
include("/root/repo/build/tests/order_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/lambda_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/extensions2_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/engine_stress_test[1]_include.cmake")
include("/root/repo/build/tests/extensions3_test[1]_include.cmake")
