file(REMOVE_RECURSE
  "CMakeFiles/lambda_test.dir/lambda_test.cc.o"
  "CMakeFiles/lambda_test.dir/lambda_test.cc.o.d"
  "lambda_test"
  "lambda_test.pdb"
  "lambda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
