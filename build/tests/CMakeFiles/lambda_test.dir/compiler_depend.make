# Empty compiler generated dependencies file for lambda_test.
# This may be replaced when dependencies are built.
