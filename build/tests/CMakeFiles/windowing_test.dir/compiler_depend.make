# Empty compiler generated dependencies file for windowing_test.
# This may be replaced when dependencies are built.
