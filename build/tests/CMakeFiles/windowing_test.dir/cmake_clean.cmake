file(REMOVE_RECURSE
  "CMakeFiles/windowing_test.dir/windowing_test.cc.o"
  "CMakeFiles/windowing_test.dir/windowing_test.cc.o.d"
  "windowing_test"
  "windowing_test.pdb"
  "windowing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windowing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
