# Empty dependencies file for site_audience.
# This may be replaced when dependencies are built.
