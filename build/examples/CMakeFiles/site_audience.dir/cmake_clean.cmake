file(REMOVE_RECURSE
  "CMakeFiles/site_audience.dir/site_audience.cpp.o"
  "CMakeFiles/site_audience.dir/site_audience.cpp.o.d"
  "site_audience"
  "site_audience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_audience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
