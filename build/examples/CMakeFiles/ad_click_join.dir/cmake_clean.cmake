file(REMOVE_RECURSE
  "CMakeFiles/ad_click_join.dir/ad_click_join.cpp.o"
  "CMakeFiles/ad_click_join.dir/ad_click_join.cpp.o.d"
  "ad_click_join"
  "ad_click_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_click_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
