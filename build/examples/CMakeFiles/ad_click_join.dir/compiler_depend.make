# Empty compiler generated dependencies file for ad_click_join.
# This may be replaced when dependencies are built.
