# Empty dependencies file for trending_hashtags.
# This may be replaced when dependencies are built.
