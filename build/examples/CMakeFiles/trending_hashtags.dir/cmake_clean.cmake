file(REMOVE_RECURSE
  "CMakeFiles/trending_hashtags.dir/trending_hashtags.cpp.o"
  "CMakeFiles/trending_hashtags.dir/trending_hashtags.cpp.o.d"
  "trending_hashtags"
  "trending_hashtags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trending_hashtags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
