file(REMOVE_RECURSE
  "CMakeFiles/fraud_scoring.dir/fraud_scoring.cpp.o"
  "CMakeFiles/fraud_scoring.dir/fraud_scoring.cpp.o.d"
  "fraud_scoring"
  "fraud_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
