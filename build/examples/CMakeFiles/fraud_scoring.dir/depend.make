# Empty dependencies file for fraud_scoring.
# This may be replaced when dependencies are built.
