# Empty compiler generated dependencies file for sensor_anomalies.
# This may be replaced when dependencies are built.
