file(REMOVE_RECURSE
  "CMakeFiles/sensor_anomalies.dir/sensor_anomalies.cpp.o"
  "CMakeFiles/sensor_anomalies.dir/sensor_anomalies.cpp.o.d"
  "sensor_anomalies"
  "sensor_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
