
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/checkpoint.cc" "src/platform/CMakeFiles/streamlib_platform.dir/checkpoint.cc.o" "gcc" "src/platform/CMakeFiles/streamlib_platform.dir/checkpoint.cc.o.d"
  "/root/repo/src/platform/engine.cc" "src/platform/CMakeFiles/streamlib_platform.dir/engine.cc.o" "gcc" "src/platform/CMakeFiles/streamlib_platform.dir/engine.cc.o.d"
  "/root/repo/src/platform/topology.cc" "src/platform/CMakeFiles/streamlib_platform.dir/topology.cc.o" "gcc" "src/platform/CMakeFiles/streamlib_platform.dir/topology.cc.o.d"
  "/root/repo/src/platform/tuple.cc" "src/platform/CMakeFiles/streamlib_platform.dir/tuple.cc.o" "gcc" "src/platform/CMakeFiles/streamlib_platform.dir/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/streamlib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/streamlib_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
