# Empty dependencies file for streamlib_platform.
# This may be replaced when dependencies are built.
