file(REMOVE_RECURSE
  "libstreamlib_platform.a"
)
