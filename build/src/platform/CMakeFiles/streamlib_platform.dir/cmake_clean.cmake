file(REMOVE_RECURSE
  "CMakeFiles/streamlib_platform.dir/checkpoint.cc.o"
  "CMakeFiles/streamlib_platform.dir/checkpoint.cc.o.d"
  "CMakeFiles/streamlib_platform.dir/engine.cc.o"
  "CMakeFiles/streamlib_platform.dir/engine.cc.o.d"
  "CMakeFiles/streamlib_platform.dir/topology.cc.o"
  "CMakeFiles/streamlib_platform.dir/topology.cc.o.d"
  "CMakeFiles/streamlib_platform.dir/tuple.cc.o"
  "CMakeFiles/streamlib_platform.dir/tuple.cc.o.d"
  "libstreamlib_platform.a"
  "libstreamlib_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlib_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
