file(REMOVE_RECURSE
  "CMakeFiles/streamlib_common.dir/hash.cc.o"
  "CMakeFiles/streamlib_common.dir/hash.cc.o.d"
  "CMakeFiles/streamlib_common.dir/random.cc.o"
  "CMakeFiles/streamlib_common.dir/random.cc.o.d"
  "CMakeFiles/streamlib_common.dir/serde.cc.o"
  "CMakeFiles/streamlib_common.dir/serde.cc.o.d"
  "CMakeFiles/streamlib_common.dir/status.cc.o"
  "CMakeFiles/streamlib_common.dir/status.cc.o.d"
  "libstreamlib_common.a"
  "libstreamlib_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlib_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
