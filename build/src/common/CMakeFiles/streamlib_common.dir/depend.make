# Empty dependencies file for streamlib_common.
# This may be replaced when dependencies are built.
