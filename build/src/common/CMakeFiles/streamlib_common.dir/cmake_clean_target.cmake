file(REMOVE_RECURSE
  "libstreamlib_common.a"
)
