# Empty dependencies file for streamlib_lambda.
# This may be replaced when dependencies are built.
