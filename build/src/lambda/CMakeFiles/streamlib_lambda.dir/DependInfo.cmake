
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lambda/batch_layer.cc" "src/lambda/CMakeFiles/streamlib_lambda.dir/batch_layer.cc.o" "gcc" "src/lambda/CMakeFiles/streamlib_lambda.dir/batch_layer.cc.o.d"
  "/root/repo/src/lambda/lambda_pipeline.cc" "src/lambda/CMakeFiles/streamlib_lambda.dir/lambda_pipeline.cc.o" "gcc" "src/lambda/CMakeFiles/streamlib_lambda.dir/lambda_pipeline.cc.o.d"
  "/root/repo/src/lambda/master_log.cc" "src/lambda/CMakeFiles/streamlib_lambda.dir/master_log.cc.o" "gcc" "src/lambda/CMakeFiles/streamlib_lambda.dir/master_log.cc.o.d"
  "/root/repo/src/lambda/serving_layer.cc" "src/lambda/CMakeFiles/streamlib_lambda.dir/serving_layer.cc.o" "gcc" "src/lambda/CMakeFiles/streamlib_lambda.dir/serving_layer.cc.o.d"
  "/root/repo/src/lambda/speed_layer.cc" "src/lambda/CMakeFiles/streamlib_lambda.dir/speed_layer.cc.o" "gcc" "src/lambda/CMakeFiles/streamlib_lambda.dir/speed_layer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/streamlib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/streamlib_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/streamlib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
