file(REMOVE_RECURSE
  "CMakeFiles/streamlib_lambda.dir/batch_layer.cc.o"
  "CMakeFiles/streamlib_lambda.dir/batch_layer.cc.o.d"
  "CMakeFiles/streamlib_lambda.dir/lambda_pipeline.cc.o"
  "CMakeFiles/streamlib_lambda.dir/lambda_pipeline.cc.o.d"
  "CMakeFiles/streamlib_lambda.dir/master_log.cc.o"
  "CMakeFiles/streamlib_lambda.dir/master_log.cc.o.d"
  "CMakeFiles/streamlib_lambda.dir/serving_layer.cc.o"
  "CMakeFiles/streamlib_lambda.dir/serving_layer.cc.o.d"
  "CMakeFiles/streamlib_lambda.dir/speed_layer.cc.o"
  "CMakeFiles/streamlib_lambda.dir/speed_layer.cc.o.d"
  "libstreamlib_lambda.a"
  "libstreamlib_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlib_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
