file(REMOVE_RECURSE
  "libstreamlib_lambda.a"
)
