# Empty compiler generated dependencies file for streamlib_workload.
# This may be replaced when dependencies are built.
