
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/bit_stream.cc" "src/workload/CMakeFiles/streamlib_workload.dir/bit_stream.cc.o" "gcc" "src/workload/CMakeFiles/streamlib_workload.dir/bit_stream.cc.o.d"
  "/root/repo/src/workload/graph_stream.cc" "src/workload/CMakeFiles/streamlib_workload.dir/graph_stream.cc.o" "gcc" "src/workload/CMakeFiles/streamlib_workload.dir/graph_stream.cc.o.d"
  "/root/repo/src/workload/text_stream.cc" "src/workload/CMakeFiles/streamlib_workload.dir/text_stream.cc.o" "gcc" "src/workload/CMakeFiles/streamlib_workload.dir/text_stream.cc.o.d"
  "/root/repo/src/workload/timeseries.cc" "src/workload/CMakeFiles/streamlib_workload.dir/timeseries.cc.o" "gcc" "src/workload/CMakeFiles/streamlib_workload.dir/timeseries.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/workload/CMakeFiles/streamlib_workload.dir/zipf.cc.o" "gcc" "src/workload/CMakeFiles/streamlib_workload.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/streamlib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
