file(REMOVE_RECURSE
  "CMakeFiles/streamlib_workload.dir/bit_stream.cc.o"
  "CMakeFiles/streamlib_workload.dir/bit_stream.cc.o.d"
  "CMakeFiles/streamlib_workload.dir/graph_stream.cc.o"
  "CMakeFiles/streamlib_workload.dir/graph_stream.cc.o.d"
  "CMakeFiles/streamlib_workload.dir/text_stream.cc.o"
  "CMakeFiles/streamlib_workload.dir/text_stream.cc.o.d"
  "CMakeFiles/streamlib_workload.dir/timeseries.cc.o"
  "CMakeFiles/streamlib_workload.dir/timeseries.cc.o.d"
  "CMakeFiles/streamlib_workload.dir/zipf.cc.o"
  "CMakeFiles/streamlib_workload.dir/zipf.cc.o.d"
  "libstreamlib_workload.a"
  "libstreamlib_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlib_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
