file(REMOVE_RECURSE
  "libstreamlib_workload.a"
)
