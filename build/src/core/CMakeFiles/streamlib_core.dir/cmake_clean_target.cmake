file(REMOVE_RECURSE
  "libstreamlib_core.a"
)
