# Empty dependencies file for streamlib_core.
# This may be replaced when dependencies are built.
