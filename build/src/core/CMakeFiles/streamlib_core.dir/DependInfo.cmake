
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly/adwin.cc" "src/core/CMakeFiles/streamlib_core.dir/anomaly/adwin.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/anomaly/adwin.cc.o.d"
  "/root/repo/src/core/anomaly/ewma_detector.cc" "src/core/CMakeFiles/streamlib_core.dir/anomaly/ewma_detector.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/anomaly/ewma_detector.cc.o.d"
  "/root/repo/src/core/anomaly/half_space_trees.cc" "src/core/CMakeFiles/streamlib_core.dir/anomaly/half_space_trees.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/anomaly/half_space_trees.cc.o.d"
  "/root/repo/src/core/anomaly/kl_change_detector.cc" "src/core/CMakeFiles/streamlib_core.dir/anomaly/kl_change_detector.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/anomaly/kl_change_detector.cc.o.d"
  "/root/repo/src/core/anomaly/robust_detector.cc" "src/core/CMakeFiles/streamlib_core.dir/anomaly/robust_detector.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/anomaly/robust_detector.cc.o.d"
  "/root/repo/src/core/cardinality/hyperloglog.cc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/hyperloglog.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/hyperloglog.cc.o.d"
  "/root/repo/src/core/cardinality/kmv_sketch.cc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/kmv_sketch.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/kmv_sketch.cc.o.d"
  "/root/repo/src/core/cardinality/linear_counter.cc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/linear_counter.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/linear_counter.cc.o.d"
  "/root/repo/src/core/cardinality/loglog.cc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/loglog.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/loglog.cc.o.d"
  "/root/repo/src/core/cardinality/pcsa.cc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/pcsa.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/pcsa.cc.o.d"
  "/root/repo/src/core/cardinality/sliding_hyperloglog.cc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/sliding_hyperloglog.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/sliding_hyperloglog.cc.o.d"
  "/root/repo/src/core/cardinality/windowed_minhash.cc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/windowed_minhash.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/windowed_minhash.cc.o.d"
  "/root/repo/src/core/cardinality/windowed_rarity.cc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/windowed_rarity.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/cardinality/windowed_rarity.cc.o.d"
  "/root/repo/src/core/clustering/kmeans_util.cc" "src/core/CMakeFiles/streamlib_core.dir/clustering/kmeans_util.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/clustering/kmeans_util.cc.o.d"
  "/root/repo/src/core/clustering/micro_clusters.cc" "src/core/CMakeFiles/streamlib_core.dir/clustering/micro_clusters.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/clustering/micro_clusters.cc.o.d"
  "/root/repo/src/core/clustering/online_kmeans.cc" "src/core/CMakeFiles/streamlib_core.dir/clustering/online_kmeans.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/clustering/online_kmeans.cc.o.d"
  "/root/repo/src/core/clustering/stream_kmedian.cc" "src/core/CMakeFiles/streamlib_core.dir/clustering/stream_kmedian.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/clustering/stream_kmedian.cc.o.d"
  "/root/repo/src/core/correlation/dft_sketch.cc" "src/core/CMakeFiles/streamlib_core.dir/correlation/dft_sketch.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/correlation/dft_sketch.cc.o.d"
  "/root/repo/src/core/correlation/pattern_matcher.cc" "src/core/CMakeFiles/streamlib_core.dir/correlation/pattern_matcher.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/correlation/pattern_matcher.cc.o.d"
  "/root/repo/src/core/correlation/streaming_correlation.cc" "src/core/CMakeFiles/streamlib_core.dir/correlation/streaming_correlation.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/correlation/streaming_correlation.cc.o.d"
  "/root/repo/src/core/filtering/blocked_bloom_filter.cc" "src/core/CMakeFiles/streamlib_core.dir/filtering/blocked_bloom_filter.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/filtering/blocked_bloom_filter.cc.o.d"
  "/root/repo/src/core/filtering/bloom_filter.cc" "src/core/CMakeFiles/streamlib_core.dir/filtering/bloom_filter.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/filtering/bloom_filter.cc.o.d"
  "/root/repo/src/core/filtering/counting_bloom_filter.cc" "src/core/CMakeFiles/streamlib_core.dir/filtering/counting_bloom_filter.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/filtering/counting_bloom_filter.cc.o.d"
  "/root/repo/src/core/filtering/cuckoo_filter.cc" "src/core/CMakeFiles/streamlib_core.dir/filtering/cuckoo_filter.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/filtering/cuckoo_filter.cc.o.d"
  "/root/repo/src/core/filtering/deletable_bloom_filter.cc" "src/core/CMakeFiles/streamlib_core.dir/filtering/deletable_bloom_filter.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/filtering/deletable_bloom_filter.cc.o.d"
  "/root/repo/src/core/filtering/stable_bloom_filter.cc" "src/core/CMakeFiles/streamlib_core.dir/filtering/stable_bloom_filter.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/filtering/stable_bloom_filter.cc.o.d"
  "/root/repo/src/core/frequency/count_min_sketch.cc" "src/core/CMakeFiles/streamlib_core.dir/frequency/count_min_sketch.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/frequency/count_min_sketch.cc.o.d"
  "/root/repo/src/core/frequency/count_sketch.cc" "src/core/CMakeFiles/streamlib_core.dir/frequency/count_sketch.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/frequency/count_sketch.cc.o.d"
  "/root/repo/src/core/frequency/dyadic_count_min.cc" "src/core/CMakeFiles/streamlib_core.dir/frequency/dyadic_count_min.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/frequency/dyadic_count_min.cc.o.d"
  "/root/repo/src/core/frequency/hierarchical_heavy_hitters.cc" "src/core/CMakeFiles/streamlib_core.dir/frequency/hierarchical_heavy_hitters.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/frequency/hierarchical_heavy_hitters.cc.o.d"
  "/root/repo/src/core/graph/graph_algorithms.cc" "src/core/CMakeFiles/streamlib_core.dir/graph/graph_algorithms.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/graph/graph_algorithms.cc.o.d"
  "/root/repo/src/core/graph/graph_sketch.cc" "src/core/CMakeFiles/streamlib_core.dir/graph/graph_sketch.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/graph/graph_sketch.cc.o.d"
  "/root/repo/src/core/graph/triangle_counter.cc" "src/core/CMakeFiles/streamlib_core.dir/graph/triangle_counter.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/graph/triangle_counter.cc.o.d"
  "/root/repo/src/core/histogram/end_biased_histogram.cc" "src/core/CMakeFiles/streamlib_core.dir/histogram/end_biased_histogram.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/histogram/end_biased_histogram.cc.o.d"
  "/root/repo/src/core/histogram/equi_width_histogram.cc" "src/core/CMakeFiles/streamlib_core.dir/histogram/equi_width_histogram.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/histogram/equi_width_histogram.cc.o.d"
  "/root/repo/src/core/histogram/v_optimal_histogram.cc" "src/core/CMakeFiles/streamlib_core.dir/histogram/v_optimal_histogram.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/histogram/v_optimal_histogram.cc.o.d"
  "/root/repo/src/core/ml/online_classifiers.cc" "src/core/CMakeFiles/streamlib_core.dir/ml/online_classifiers.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/ml/online_classifiers.cc.o.d"
  "/root/repo/src/core/moments/ams_sketch.cc" "src/core/CMakeFiles/streamlib_core.dir/moments/ams_sketch.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/moments/ams_sketch.cc.o.d"
  "/root/repo/src/core/order/inversions.cc" "src/core/CMakeFiles/streamlib_core.dir/order/inversions.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/order/inversions.cc.o.d"
  "/root/repo/src/core/order/lis.cc" "src/core/CMakeFiles/streamlib_core.dir/order/lis.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/order/lis.cc.o.d"
  "/root/repo/src/core/prediction/kalman_filter.cc" "src/core/CMakeFiles/streamlib_core.dir/prediction/kalman_filter.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/prediction/kalman_filter.cc.o.d"
  "/root/repo/src/core/prediction/online_ar.cc" "src/core/CMakeFiles/streamlib_core.dir/prediction/online_ar.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/prediction/online_ar.cc.o.d"
  "/root/repo/src/core/quantiles/ckms_quantile.cc" "src/core/CMakeFiles/streamlib_core.dir/quantiles/ckms_quantile.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/quantiles/ckms_quantile.cc.o.d"
  "/root/repo/src/core/quantiles/gk_quantile.cc" "src/core/CMakeFiles/streamlib_core.dir/quantiles/gk_quantile.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/quantiles/gk_quantile.cc.o.d"
  "/root/repo/src/core/quantiles/qdigest.cc" "src/core/CMakeFiles/streamlib_core.dir/quantiles/qdigest.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/quantiles/qdigest.cc.o.d"
  "/root/repo/src/core/quantiles/sliding_quantile.cc" "src/core/CMakeFiles/streamlib_core.dir/quantiles/sliding_quantile.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/quantiles/sliding_quantile.cc.o.d"
  "/root/repo/src/core/quantiles/tdigest.cc" "src/core/CMakeFiles/streamlib_core.dir/quantiles/tdigest.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/quantiles/tdigest.cc.o.d"
  "/root/repo/src/core/sampling/reservoir_sampler.cc" "src/core/CMakeFiles/streamlib_core.dir/sampling/reservoir_sampler.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/sampling/reservoir_sampler.cc.o.d"
  "/root/repo/src/core/sequence/sequence_miner.cc" "src/core/CMakeFiles/streamlib_core.dir/sequence/sequence_miner.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/sequence/sequence_miner.cc.o.d"
  "/root/repo/src/core/wavelet/haar_wavelet.cc" "src/core/CMakeFiles/streamlib_core.dir/wavelet/haar_wavelet.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/wavelet/haar_wavelet.cc.o.d"
  "/root/repo/src/core/windowing/eh_sum.cc" "src/core/CMakeFiles/streamlib_core.dir/windowing/eh_sum.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/windowing/eh_sum.cc.o.d"
  "/root/repo/src/core/windowing/exponential_histogram.cc" "src/core/CMakeFiles/streamlib_core.dir/windowing/exponential_histogram.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/windowing/exponential_histogram.cc.o.d"
  "/root/repo/src/core/windowing/significant_ones.cc" "src/core/CMakeFiles/streamlib_core.dir/windowing/significant_ones.cc.o" "gcc" "src/core/CMakeFiles/streamlib_core.dir/windowing/significant_ones.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/streamlib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
