file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_cardinality.dir/bench_t1_cardinality.cc.o"
  "CMakeFiles/bench_t1_cardinality.dir/bench_t1_cardinality.cc.o.d"
  "bench_t1_cardinality"
  "bench_t1_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
