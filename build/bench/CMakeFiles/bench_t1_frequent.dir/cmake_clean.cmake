file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_frequent.dir/bench_t1_frequent.cc.o"
  "CMakeFiles/bench_t1_frequent.dir/bench_t1_frequent.cc.o.d"
  "bench_t1_frequent"
  "bench_t1_frequent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_frequent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
