
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_t1_frequent.cc" "bench/CMakeFiles/bench_t1_frequent.dir/bench_t1_frequent.cc.o" "gcc" "bench/CMakeFiles/bench_t1_frequent.dir/bench_t1_frequent.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/streamlib_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/lambda/CMakeFiles/streamlib_lambda.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/streamlib_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/streamlib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/streamlib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
