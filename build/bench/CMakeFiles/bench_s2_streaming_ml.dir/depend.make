# Empty dependencies file for bench_s2_streaming_ml.
# This may be replaced when dependencies are built.
