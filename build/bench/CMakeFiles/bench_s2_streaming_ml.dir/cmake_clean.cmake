file(REMOVE_RECURSE
  "CMakeFiles/bench_s2_streaming_ml.dir/bench_s2_streaming_ml.cc.o"
  "CMakeFiles/bench_s2_streaming_ml.dir/bench_s2_streaming_ml.cc.o.d"
  "bench_s2_streaming_ml"
  "bench_s2_streaming_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s2_streaming_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
