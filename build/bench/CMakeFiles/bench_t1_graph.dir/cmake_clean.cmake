file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_graph.dir/bench_t1_graph.cc.o"
  "CMakeFiles/bench_t1_graph.dir/bench_t1_graph.cc.o.d"
  "bench_t1_graph"
  "bench_t1_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
