file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_sampling.dir/bench_t1_sampling.cc.o"
  "CMakeFiles/bench_t1_sampling.dir/bench_t1_sampling.cc.o.d"
  "bench_t1_sampling"
  "bench_t1_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
