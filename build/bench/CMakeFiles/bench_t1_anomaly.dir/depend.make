# Empty dependencies file for bench_t1_anomaly.
# This may be replaced when dependencies are built.
