file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_anomaly.dir/bench_t1_anomaly.cc.o"
  "CMakeFiles/bench_t1_anomaly.dir/bench_t1_anomaly.cc.o.d"
  "bench_t1_anomaly"
  "bench_t1_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
