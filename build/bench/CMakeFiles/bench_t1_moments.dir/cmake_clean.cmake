file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_moments.dir/bench_t1_moments.cc.o"
  "CMakeFiles/bench_t1_moments.dir/bench_t1_moments.cc.o.d"
  "bench_t1_moments"
  "bench_t1_moments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
