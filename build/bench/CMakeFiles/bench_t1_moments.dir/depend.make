# Empty dependencies file for bench_t1_moments.
# This may be replaced when dependencies are built.
