# Empty dependencies file for bench_t2_platform.
# This may be replaced when dependencies are built.
