file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_platform.dir/bench_t2_platform.cc.o"
  "CMakeFiles/bench_t2_platform.dir/bench_t2_platform.cc.o.d"
  "bench_t2_platform"
  "bench_t2_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
