file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_quantiles.dir/bench_t1_quantiles.cc.o"
  "CMakeFiles/bench_t1_quantiles.dir/bench_t1_quantiles.cc.o.d"
  "bench_t1_quantiles"
  "bench_t1_quantiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
