# Empty dependencies file for bench_t1_clustering.
# This may be replaced when dependencies are built.
