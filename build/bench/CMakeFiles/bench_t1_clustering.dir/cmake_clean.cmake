file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_clustering.dir/bench_t1_clustering.cc.o"
  "CMakeFiles/bench_t1_clustering.dir/bench_t1_clustering.cc.o.d"
  "bench_t1_clustering"
  "bench_t1_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
