# Empty dependencies file for bench_t1_windowing.
# This may be replaced when dependencies are built.
