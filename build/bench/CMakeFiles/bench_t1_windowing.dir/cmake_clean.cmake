file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_windowing.dir/bench_t1_windowing.cc.o"
  "CMakeFiles/bench_t1_windowing.dir/bench_t1_windowing.cc.o.d"
  "bench_t1_windowing"
  "bench_t1_windowing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_windowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
