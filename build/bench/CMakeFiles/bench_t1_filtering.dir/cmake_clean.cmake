file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_filtering.dir/bench_t1_filtering.cc.o"
  "CMakeFiles/bench_t1_filtering.dir/bench_t1_filtering.cc.o.d"
  "bench_t1_filtering"
  "bench_t1_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
