# Empty dependencies file for bench_t1_filtering.
# This may be replaced when dependencies are built.
