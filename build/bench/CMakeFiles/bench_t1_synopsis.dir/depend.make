# Empty dependencies file for bench_t1_synopsis.
# This may be replaced when dependencies are built.
