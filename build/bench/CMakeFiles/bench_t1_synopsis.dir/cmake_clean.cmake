file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_synopsis.dir/bench_t1_synopsis.cc.o"
  "CMakeFiles/bench_t1_synopsis.dir/bench_t1_synopsis.cc.o.d"
  "bench_t1_synopsis"
  "bench_t1_synopsis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_synopsis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
