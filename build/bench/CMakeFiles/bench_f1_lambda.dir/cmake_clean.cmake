file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_lambda.dir/bench_f1_lambda.cc.o"
  "CMakeFiles/bench_f1_lambda.dir/bench_f1_lambda.cc.o.d"
  "bench_f1_lambda"
  "bench_f1_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
