file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_order.dir/bench_t1_order.cc.o"
  "CMakeFiles/bench_t1_order.dir/bench_t1_order.cc.o.d"
  "bench_t1_order"
  "bench_t1_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
