file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_prediction.dir/bench_t1_prediction.cc.o"
  "CMakeFiles/bench_t1_prediction.dir/bench_t1_prediction.cc.o.d"
  "bench_t1_prediction"
  "bench_t1_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
