file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_correlation.dir/bench_t1_correlation.cc.o"
  "CMakeFiles/bench_t1_correlation.dir/bench_t1_correlation.cc.o.d"
  "bench_t1_correlation"
  "bench_t1_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
