#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/histogram/end_biased_histogram.h"
#include "core/histogram/equi_width_histogram.h"
#include "core/histogram/v_optimal_histogram.h"

namespace streamlib {
namespace {

TEST(EquiWidthHistogramTest, CountsLandInRightBuckets) {
  EquiWidthHistogram hist(0.0, 100.0, 10);
  hist.Add(5.0);
  hist.Add(15.0);
  hist.Add(15.5);
  hist.Add(99.9);
  EXPECT_EQ(hist.BucketCount(0), 1u);
  EXPECT_EQ(hist.BucketCount(1), 2u);
  EXPECT_EQ(hist.BucketCount(9), 1u);
  EXPECT_EQ(hist.total(), 4u);
}

TEST(EquiWidthHistogramTest, OutOfRangeClampsToEdges) {
  EquiWidthHistogram hist(0.0, 10.0, 5);
  hist.Add(-100.0);
  hist.Add(1e9);
  EXPECT_EQ(hist.BucketCount(0), 1u);
  EXPECT_EQ(hist.BucketCount(4), 1u);
}

TEST(EquiWidthHistogramTest, QuantileOfUniformData) {
  EquiWidthHistogram hist(0.0, 1000.0, 100);
  Rng rng(1);
  for (int i = 0; i < 100000; i++) hist.Add(rng.NextDouble() * 1000.0);
  EXPECT_NEAR(hist.EstimateQuantile(0.5), 500.0, 15.0);
  EXPECT_NEAR(hist.EstimateQuantile(0.9), 900.0, 15.0);
}

TEST(EquiWidthHistogramTest, RankIsMonotone) {
  EquiWidthHistogram hist(0.0, 100.0, 20);
  Rng rng(2);
  for (int i = 0; i < 10000; i++) hist.Add(rng.NextGaussian() * 15.0 + 50.0);
  double prev = -1.0;
  for (double v = 0.0; v <= 100.0; v += 2.5) {
    const double r = hist.EstimateRank(v);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(VOptimalHistogramTest, ExactRecoversPiecewiseConstantData) {
  // Three perfectly flat segments: 3-bucket V-optimal must have SSE 0.
  std::vector<double> values;
  for (int i = 0; i < 50; i++) values.push_back(10.0);
  for (int i = 0; i < 30; i++) values.push_back(50.0);
  for (int i = 0; i < 20; i++) values.push_back(-5.0);
  auto buckets = VOptimalHistogram::BuildExact(values, 3);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(VOptimalHistogram::TotalSse(buckets), 0.0);
  EXPECT_EQ(buckets[0].end, 50u);
  EXPECT_EQ(buckets[1].end, 80u);
  EXPECT_DOUBLE_EQ(buckets[0].mean, 10.0);
}

TEST(VOptimalHistogramTest, ExactBeatsEquiWidthOnSkewedData) {
  // Step data with unequal segment lengths: equal-length buckets are
  // suboptimal; the DP must find a strictly better SSE.
  std::vector<double> values;
  Rng rng(3);
  for (int i = 0; i < 90; i++) values.push_back(rng.NextGaussian() * 0.1);
  for (int i = 0; i < 10; i++) values.push_back(100.0 + rng.NextGaussian() * 0.1);
  auto optimal = VOptimalHistogram::BuildExact(values, 2);
  // Equi-width in index space: split at 50.
  double equi_sse = 0.0;
  for (int half = 0; half < 2; half++) {
    double mean = 0.0;
    for (int i = half * 50; i < (half + 1) * 50; i++) mean += values[i];
    mean /= 50.0;
    for (int i = half * 50; i < (half + 1) * 50; i++) {
      equi_sse += (values[i] - mean) * (values[i] - mean);
    }
  }
  EXPECT_LT(VOptimalHistogram::TotalSse(optimal), equi_sse * 0.1);
}

TEST(VOptimalHistogramTest, GreedyWithinFactorOfExact) {
  std::vector<double> values;
  Rng rng(4);
  double level = 0.0;
  for (int seg = 0; seg < 8; seg++) {
    level += rng.NextGaussian() * 10.0;
    const int len = 20 + static_cast<int>(rng.NextBounded(30));
    for (int i = 0; i < len; i++) {
      values.push_back(level + rng.NextGaussian());
    }
  }
  auto exact = VOptimalHistogram::BuildExact(values, 8);
  auto greedy = VOptimalHistogram::BuildGreedy(values, 8);
  EXPECT_EQ(greedy.size(), 8u);
  const double exact_sse = VOptimalHistogram::TotalSse(exact);
  const double greedy_sse = VOptimalHistogram::TotalSse(greedy);
  EXPECT_GE(greedy_sse, exact_sse - 1e-9);      // Exact is optimal.
  EXPECT_LE(greedy_sse, exact_sse * 3.0 + 1.0); // Greedy close behind.
}

TEST(VOptimalHistogramTest, BucketsPartitionTheInput) {
  std::vector<double> values(137);
  Rng rng(5);
  for (auto& v : values) v = rng.NextDouble();
  for (size_t k : {1u, 3u, 10u}) {
    auto buckets = VOptimalHistogram::BuildExact(values, k);
    ASSERT_EQ(buckets.size(), k);
    EXPECT_EQ(buckets.front().begin, 0u);
    EXPECT_EQ(buckets.back().end, values.size());
    for (size_t i = 1; i < buckets.size(); i++) {
      EXPECT_EQ(buckets[i].begin, buckets[i - 1].end);
    }
  }
}

TEST(EndBiasedHistogramTest, FrequentValuesTrackedIndividually) {
  EndBiasedHistogram hist(20);
  for (int i = 0; i < 10000; i++) hist.Add(7);
  for (int i = 0; i < 5000; i++) hist.Add(13);
  for (int i = 0; i < 3000; i++) hist.Add(i + 1000);  // Long singleton tail.
  EXPECT_NEAR(hist.EstimateFrequency(7), 10000.0, 1500.0);
  EXPECT_NEAR(hist.EstimateFrequency(13), 5000.0, 1500.0);
  auto frequent = hist.FrequentValues(4000);
  ASSERT_GE(frequent.size(), 2u);
  EXPECT_EQ(frequent[0].key, 7);
}

TEST(EndBiasedHistogramTest, TailValuesGetUniformMass) {
  EndBiasedHistogram hist(10);
  for (int i = 0; i < 1000; i++) hist.Add(1);
  for (int i = 0; i < 5000; i++) hist.Add(i + 100);
  const double tail_est = hist.EstimateFrequency(999999);
  EXPECT_GT(tail_est, 0.0);
  EXPECT_LT(tail_est, 1000.0);
}

}  // namespace
}  // namespace streamlib
