// Tests for the observability layer (DESIGN.md §7): per-task metrics
// aggregation, the background telemetry sampler, sampled tuple tracing,
// and the report/JSON facade. The engine-level suites run the same small
// topology across both execution modes and both delivery semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "platform/components.h"
#include "platform/engine.h"
#include "platform/metrics.h"
#include "platform/metrics_sampler.h"
#include "platform/queue.h"
#include "platform/spsc_ring.h"
#include "platform/telemetry.h"
#include "platform/topology.h"
#include "platform/trace.h"
#include "platform/tuple.h"

namespace streamlib::platform {
namespace {

/// gen x2 -> fan x3 (re-emits) -> leaf x2. Every engine suite below runs
/// this shape so per-component totals are easy to predict: gen emits
/// `n_tuples` overall, fan executes n and emits n, leaf executes n.
Topology SmallTopology(uint64_t n_tuples) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  TopologyBuilder builder;
  builder.AddSpout(
      "gen",
      [counter, n_tuples]() -> std::unique_ptr<Spout> {
        return std::make_unique<GeneratorSpout>(
            [counter, n_tuples]() -> std::optional<Tuple> {
              const uint64_t i = counter->fetch_add(1);
              if (i >= n_tuples) return std::nullopt;
              return Tuple::Of(static_cast<int64_t>(i));
            });
      },
      2);
  builder.AddBolt(
      "fan",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& in, OutputCollector* out) { out->Emit(in); });
      },
      3, {{"gen", Grouping::Shuffle()}});
  builder.AddBolt(
      "leaf",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple&, OutputCollector*) {});
      },
      2, {{"fan", Grouping::Shuffle()}});
  return builder.Build().value();
}

struct EngineVariant {
  ExecutionMode mode;
  DeliverySemantics semantics;
};

EngineConfig VariantConfig(const EngineVariant& v) {
  EngineConfig config;
  config.mode = v.mode;
  config.semantics = v.semantics;
  config.multiplexed_threads = 2;
  return config;
}

// ------------------------------------------------------- per-task metrics

TEST(TaskMetricsTest, PerTaskCountersSumToComponentAggregate) {
  const uint64_t kTuples = 3000;
  TopologyEngine engine(SmallTopology(kTuples), VariantConfig({
                            ExecutionMode::kDedicated,
                            DeliverySemantics::kAtMostOnce,
                        }));
  engine.Run();

  MetricsRegistry& registry = engine.metrics();
  for (const std::string& name : registry.ComponentNames()) {
    uint64_t emitted = 0, executed = 0, stalls = 0, flushes = 0;
    size_t tasks = 0;
    for (size_t i = 0; i < registry.task_count(); i++) {
      const TaskMetrics& t = registry.task(i);
      if (t.component() != name) continue;
      tasks++;
      emitted += t.emitted();
      executed += t.executed();
      stalls += t.backpressure_stalls();
      flushes += t.flushes();
    }
    auto agg = registry.ForComponent(name);
    EXPECT_EQ(agg.task_count(), tasks) << name;
    EXPECT_EQ(agg.emitted(), emitted) << name;
    EXPECT_EQ(agg.executed(), executed) << name;
    EXPECT_EQ(agg.backpressure_stalls(), stalls) << name;
    EXPECT_EQ(agg.flushes(), flushes) << name;
  }

  // The aggregate view reproduces the old per-component totals.
  EXPECT_EQ(registry.ForComponent("gen").emitted(), kTuples);
  EXPECT_EQ(registry.ForComponent("fan").executed(), kTuples);
  EXPECT_EQ(registry.ForComponent("fan").emitted(), kTuples);
  EXPECT_EQ(registry.ForComponent("leaf").executed(), kTuples);
  EXPECT_EQ(registry.ForComponent("gen").task_count(), 2u);
  EXPECT_EQ(registry.ForComponent("fan").task_count(), 3u);
}

TEST(TaskMetricsTest, UnknownComponentAggregatesToZero) {
  MetricsRegistry registry;
  registry.RegisterTask("a", 0);
  registry.Freeze();
  auto agg = registry.ForComponent("nope");
  EXPECT_EQ(agg.task_count(), 0u);
  EXPECT_EQ(agg.emitted(), 0u);
}

TEST(MetricsRegistryDeathTest, RegistrationAfterFreezeAborts) {
  MetricsRegistry registry;
  registry.RegisterTask("a", 0);
  registry.Freeze();
  EXPECT_DEATH(registry.RegisterTask("b", 0), "frozen");
}

// ------------------------------------------------------- queue depth gauges

TEST(ApproxSizeTest, BlockingQueueTracksPushPop) {
  BlockingQueue<int> q(8);
  EXPECT_EQ(q.ApproxSize(), 0u);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  EXPECT_EQ(q.ApproxSize(), 2u);
  q.Pop();
  EXPECT_EQ(q.ApproxSize(), 1u);
  std::vector<int> batch = {3, 4, 5};
  ASSERT_EQ(q.PushAll(std::span<int>(batch)), 3u);
  EXPECT_EQ(q.ApproxSize(), 4u);
}

TEST(ApproxSizeTest, SpscRingTracksPushPop) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.ApproxSize(), 0u);
  std::vector<int> in = {1, 2};
  ASSERT_EQ(ring.TryPushAll(std::span<int>(in)), 2u);
  EXPECT_EQ(ring.ApproxSize(), 2u);
  std::vector<int> out;
  ASSERT_EQ(ring.TryPopBatch(out, 1), 1u);
  EXPECT_EQ(ring.ApproxSize(), 1u);
}

// ----------------------------------------------------------------- sampler

TEST(MetricsSamplerTest, DeltaSumsEqualFinalTotals) {
  MetricsRegistry registry;
  TaskMetrics& task = registry.RegisterTask("w", 0);
  registry.Freeze();

  std::vector<MetricsSampler::Probe> probes;
  probes.push_back({&task, {}});
  MetricsSampler sampler(std::move(probes), 1);
  sampler.Start();

  // Concurrent writer hammering the counters while the sampler runs.
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 50000; i++) {
      task.IncEmitted();
      task.IncExecuted();
      if (i % 64 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    done = true;
  });
  while (!done) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  writer.join();
  sampler.Stop();

  const std::vector<TelemetrySample> series = sampler.Snapshot();
  ASSERT_GE(series.size(), 2u);
  uint64_t emitted = 0, executed = 0;
  uint64_t prev_t = 0;
  for (const TelemetrySample& s : series) {
    EXPECT_GE(s.t_ms, prev_t);  // Monotone sample times.
    prev_t = s.t_ms;
    ASSERT_EQ(s.tasks.size(), 1u);
    emitted += s.tasks[0].emitted;
    executed += s.tasks[0].executed;
  }
  EXPECT_EQ(emitted, task.emitted());
  EXPECT_EQ(executed, task.executed());
  EXPECT_EQ(task.emitted(), 50000u);
}

TEST(MetricsSamplerTest, GaugeProbeFeedsWatermark) {
  MetricsRegistry registry;
  TaskMetrics& task = registry.RegisterTask("w", 0);
  registry.Freeze();

  std::atomic<size_t> depth{0};
  std::vector<MetricsSampler::Probe> probes;
  probes.push_back({&task, [&depth] { return depth.load(); }});
  MetricsSampler sampler(std::move(probes), 1);
  sampler.Start();
  depth = 17;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  depth = 5;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.Stop();

  // The watermark is the max depth the sampler observed.
  EXPECT_GE(task.max_queue_depth(), 17u);
  bool saw_depth = false;
  for (const TelemetrySample& s : sampler.Snapshot()) {
    if (s.tasks[0].queue_depth == 17) saw_depth = true;
  }
  EXPECT_TRUE(saw_depth);
}

// -------------------------------------------------- engine-level telemetry

class TelemetryEngineSweep : public ::testing::TestWithParam<EngineVariant> {};

TEST_P(TelemetryEngineSweep, SamplerDeltasSumToFinalCountersAcrossRun) {
  EngineConfig config = VariantConfig(GetParam());
  config.telemetry_sample_interval_ms = 1;
  const uint64_t kTuples = 20000;
  TopologyEngine engine(SmallTopology(kTuples), config);
  engine.Run();

  const std::vector<TelemetrySample> series = engine.telemetry().TimeSeries();
  ASSERT_FALSE(series.empty());

  MetricsRegistry& registry = engine.metrics();
  std::vector<uint64_t> emitted(registry.task_count(), 0);
  std::vector<uint64_t> executed(registry.task_count(), 0);
  for (const TelemetrySample& s : series) {
    // interval_ms may be 0 for the sub-millisecond tail sample Stop()
    // appends; deltas are still counted toward the sum invariant.
    ASSERT_EQ(s.tasks.size(), registry.task_count());
    for (const TaskSampleDelta& d : s.tasks) {
      ASSERT_LT(d.task, registry.task_count());
      emitted[d.task] += d.emitted;
      executed[d.task] += d.executed;
    }
  }
  for (size_t i = 0; i < registry.task_count(); i++) {
    EXPECT_EQ(emitted[i], registry.task(i).emitted()) << "task " << i;
    EXPECT_EQ(executed[i], registry.task(i).executed()) << "task " << i;
  }
}

TEST_P(TelemetryEngineSweep, TraceSpanTreesAreWellFormed) {
  EngineConfig config = VariantConfig(GetParam());
  config.trace_sample_every = 16;
  const uint64_t kTuples = 4000;
  TopologyEngine engine(SmallTopology(kTuples), config);
  engine.Run();

  const TraceStore& traces = engine.telemetry().traces();
  EXPECT_GT(traces.trees().size(), 0u);
  EXPECT_GT(traces.complete_tree_count(), 0u);

  for (const TraceTree& tree : traces.trees()) {
    if (!tree.complete) continue;
    ASSERT_FALSE(tree.spans.empty());
    // spans[0] is the root: parent 0, trace id == its own span id.
    EXPECT_EQ(tree.spans[0].event.parent_span, 0u);
    EXPECT_EQ(tree.spans[0].event.span_id, tree.trace_id);
    std::map<uint64_t, size_t> by_span;
    for (size_t i = 0; i < tree.spans.size(); i++) {
      by_span[tree.spans[i].event.span_id] = i;
    }
    for (size_t i = 1; i < tree.spans.size(); i++) {
      const TraceEvent& e = tree.spans[i].event;
      EXPECT_EQ(e.trace_id, tree.trace_id);
      // Every non-root hop's parent exists in the tree...
      ASSERT_TRUE(by_span.count(e.parent_span)) << "span " << e.span_id;
      // ...and no hop's wait+execute exceeds the whole-tree latency.
      EXPECT_LE(e.wait_nanos + e.execute_nanos, tree.end_to_end_nanos);
    }
    // Child links are consistent with parent ids.
    for (size_t i = 0; i < tree.spans.size(); i++) {
      for (size_t child : tree.spans[i].children) {
        ASSERT_LT(child, tree.spans.size());
        EXPECT_EQ(tree.spans[child].event.parent_span,
                  tree.spans[i].event.span_id);
      }
    }
  }

  // Hop stats cover the bolt components (fan + leaf), never the spout.
  bool saw_fan = false;
  for (const TraceStore::HopStats& h : traces.ComponentHopStats()) {
    EXPECT_NE(h.component, "gen");
    EXPECT_GT(h.hops, 0u);
    if (h.component == "fan") saw_fan = true;
  }
  EXPECT_TRUE(saw_fan);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSemantics, TelemetryEngineSweep,
    ::testing::Values(
        EngineVariant{ExecutionMode::kDedicated,
                      DeliverySemantics::kAtMostOnce},
        EngineVariant{ExecutionMode::kDedicated,
                      DeliverySemantics::kAtLeastOnce},
        EngineVariant{ExecutionMode::kMultiplexed,
                      DeliverySemantics::kAtMostOnce},
        EngineVariant{ExecutionMode::kMultiplexed,
                      DeliverySemantics::kAtLeastOnce}),
    [](const ::testing::TestParamInfo<EngineVariant>& info) {
      return std::string(info.param.mode == ExecutionMode::kDedicated
                             ? "Dedicated"
                             : "Multiplexed") +
             (info.param.semantics == DeliverySemantics::kAtMostOnce
                  ? "AtMostOnce"
                  : "AtLeastOnce");
    });

TEST(TelemetryEngineTest, TimeSeriesReadableWhileRunning) {
  EngineConfig config;
  config.telemetry_sample_interval_ms = 1;
  TopologyEngine engine(SmallTopology(60000), config);

  std::atomic<bool> stop{false};
  std::atomic<size_t> live_reads{0};
  std::thread reader([&] {
    while (!stop) {
      const std::vector<TelemetrySample> series =
          engine.telemetry().TimeSeries();
      if (!series.empty()) live_reads++;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  engine.Run();
  stop = true;
  reader.join();
  // The reader observed samples concurrently with the run.
  EXPECT_GT(live_reads.load(), 0u);
}

TEST(TelemetryEngineTest, DisabledTelemetryLeavesNoTrace) {
  EngineConfig config;
  config.telemetry_sample_interval_ms = 0;  // No sampler thread.
  config.trace_sample_every = 0;            // No tracing.
  TopologyEngine engine(SmallTopology(2000), config);
  engine.Run();
  EXPECT_TRUE(engine.telemetry().TimeSeries().empty());
  EXPECT_TRUE(engine.telemetry().traces().trees().empty());
  // Sampler owns gauge sampling, so with it off the watermark stays 0.
  EXPECT_EQ(engine.metrics().ForComponent("fan").max_queue_depth(), 0u);
  EXPECT_EQ(engine.metrics().ForComponent("fan").executed(), 2000u);
}

TEST(TelemetryEngineTest, ReportSerializesCountersSeriesAndTraces) {
  EngineConfig config;
  config.telemetry_sample_interval_ms = 1;
  config.trace_sample_every = 8;
  TopologyEngine engine(SmallTopology(5000), config);
  engine.Run();

  const TelemetryReport report = engine.telemetry().BuildReport();
  EXPECT_EQ(report.tasks.size(), engine.metrics().task_count());
  EXPECT_FALSE(report.time_series.empty());
  EXPECT_FALSE(report.trace_trees.empty());
  EXPECT_GT(report.complete_trace_trees, 0u);

  std::ostringstream json;
  report.WriteJson(json);
  const std::string doc = json.str();
  EXPECT_NE(doc.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"tasks\""), std::string::npos);
  EXPECT_NE(doc.find("\"time_series\""), std::string::npos);
  EXPECT_NE(doc.find("\"traces\""), std::string::npos);
  EXPECT_NE(doc.find("\"component\": \"fan\""), std::string::npos);

  std::ostringstream table;
  report.WriteTable(table);
  EXPECT_NE(table.str().find("per-task counters"), std::string::npos);
}

// ------------------------------------------------------------ config knobs

TEST(EngineConfigTest, ValidateAcceptsDefaultsAndDisabledTelemetry) {
  EngineConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.telemetry_sample_interval_ms = 0;
  config.trace_sample_every = 0;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(EngineConfigTest, ValidateRejectsBadKnobs) {
  {
    EngineConfig config;
    config.queue_capacity = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    EngineConfig config;
    config.emit_batch_size = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    EngineConfig config;
    config.execute_batch_size = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    EngineConfig config;
    config.mode = ExecutionMode::kMultiplexed;
    config.multiplexed_threads = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    EngineConfig config;
    config.semantics = DeliverySemantics::kAtLeastOnce;
    config.max_spout_pending = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    EngineConfig config;
    config.telemetry_sample_interval_ms = 120000;  // > 60 s cap.
    EXPECT_FALSE(config.Validate().ok());
  }
}

}  // namespace
}  // namespace streamlib::platform
