#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <set>

#include "workload/bit_stream.h"
#include "workload/graph_stream.h"
#include "workload/text_stream.h"
#include "workload/timeseries.h"
#include "workload/zipf.h"

namespace streamlib::workload {
namespace {

TEST(ZipfGeneratorTest, ProbabilitiesSumToOne) {
  ZipfGenerator zipf(1000, 1.1, 1);
  double sum = 0;
  for (uint64_t i = 0; i < 1000; i++) sum += zipf.Probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfGeneratorTest, EmpiricalMatchesTheoretical) {
  const uint64_t kN = 200000;
  ZipfGenerator zipf(100, 1.0, 2);
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t i = 0; i < kN; i++) counts[zipf.Next()]++;
  // The head items must match their theoretical frequencies closely.
  for (uint64_t item = 0; item < 5; item++) {
    const double expected = zipf.Probability(item) * kN;
    EXPECT_NEAR(static_cast<double>(counts[item]), expected,
                5 * std::sqrt(expected))
        << item;
  }
}

TEST(ZipfGeneratorTest, AllDrawsInDomain) {
  ZipfGenerator zipf(50, 2.0, 3);
  for (int i = 0; i < 10000; i++) EXPECT_LT(zipf.Next(), 50u);
}

TEST(ZipfGeneratorTest, HigherSkewConcentratesMass) {
  ZipfGenerator flat(1000, 0.5, 4);
  ZipfGenerator steep(1000, 2.0, 5);
  EXPECT_LT(flat.Probability(0), steep.Probability(0));
}

TEST(ZipfGeneratorTest, CountItemsAboveFrequency) {
  ZipfGenerator zipf(10000, 1.0, 6);
  // Items with expected count >= 1000 in a 1e6 stream: p >= 0.001.
  const uint64_t k = zipf.CountItemsAboveFrequency(1000000, 1000.0);
  for (uint64_t i = 0; i < k; i++) {
    EXPECT_GE(zipf.Probability(i) * 1e6, 1000.0);
  }
  if (k < zipf.domain_size()) {
    EXPECT_LT(zipf.Probability(k) * 1e6, 1000.0);
  }
}

TEST(ZipfGeneratorTest, DeterministicForSeed) {
  ZipfGenerator a(1000, 1.2, 42);
  ZipfGenerator b(1000, 1.2, 42);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(TimeSeriesGeneratorTest, NoAnomaliesWhenDisabled) {
  TimeSeriesConfig config;
  config.noise_sigma = 1.0;
  TimeSeriesGenerator gen(config, 7);
  for (const auto& p : gen.Take(10000)) {
    EXPECT_EQ(p.label, AnomalyKind::kNone);
  }
}

TEST(TimeSeriesGeneratorTest, SpikesInjectedAtConfiguredRate) {
  TimeSeriesConfig config;
  config.spike_probability = 0.01;
  TimeSeriesGenerator gen(config, 8);
  int spikes = 0;
  for (const auto& p : gen.Take(100000)) {
    if (p.label == AnomalyKind::kSpike) spikes++;
  }
  EXPECT_NEAR(spikes, 1000, 150);
}

TEST(TimeSeriesGeneratorTest, SpikesAreLarge) {
  TimeSeriesConfig config;
  config.base_level = 0.0;
  config.noise_sigma = 1.0;
  config.spike_probability = 0.02;
  config.spike_magnitude = 10.0;
  TimeSeriesGenerator gen(config, 9);
  for (const auto& p : gen.Take(50000)) {
    if (p.label == AnomalyKind::kSpike) {
      EXPECT_GT(std::fabs(p.value), 5.0);
    }
  }
}

TEST(TimeSeriesGeneratorTest, LevelShiftPersists) {
  TimeSeriesConfig config;
  config.base_level = 0.0;
  config.noise_sigma = 1.0;
  config.level_shift_probability = 1e-9;  // Effectively manual control.
  TimeSeriesGenerator gen(config, 10);
  // Without shifts the mean stays near 0.
  double sum = 0;
  auto pts = gen.Take(20000);
  for (const auto& p : pts) sum += p.value;
  EXPECT_NEAR(sum / 20000.0, 0.0, 0.1);
}

TEST(TimeSeriesGeneratorTest, SeasonalityHasConfiguredPeriod) {
  TimeSeriesConfig config;
  config.base_level = 0.0;
  config.noise_sigma = 0.01;
  config.season_amplitude = 10.0;
  config.season_period = 100;
  TimeSeriesGenerator gen(config, 11);
  auto pts = gen.Take(400);
  // Peak near t=25, trough near t=75 (sin wave).
  EXPECT_GT(pts[25].value, 8.0);
  EXPECT_LT(pts[75].value, -8.0);
  EXPECT_GT(pts[125].value, 8.0);
}

TEST(TextStreamGeneratorTest, TokensAreZipfOrdered) {
  TextStreamGenerator gen(1000, 1.2, 12);
  std::map<std::string, int> counts;
  for (int i = 0; i < 100000; i++) counts[gen.Next()]++;
  EXPECT_GT(counts["tag0"], counts["tag10"]);
  EXPECT_GT(counts["tag10"], counts["tag500"]);
}

TEST(TextStreamGeneratorTest, TokenForRankRoundTrips) {
  TextStreamGenerator gen(100, 1.0, 13);
  EXPECT_EQ(gen.TokenForRank(0), "tag0");
  EXPECT_EQ(gen.TokenForRank(99), "tag99");
}

TEST(GraphStreamGeneratorTest, EdgesAreValid) {
  GraphStreamGenerator gen(100, 14);
  for (const Edge& e : gen.RandomStream(10000)) {
    EXPECT_LT(e.u, 100u);
    EXPECT_LT(e.v, 100u);
    EXPECT_NE(e.u, e.v);
  }
}

TEST(GraphStreamGeneratorTest, PlantedTrianglesPresent) {
  GraphStreamGenerator gen(1000, 15);
  auto edges = gen.StreamWithPlantedTriangles(100, 50);
  EXPECT_EQ(edges.size(), 100u + 150u);
}

TEST(BitStreamTest, BernoulliRate) {
  BernoulliBitStream stream(0.25, 16);
  int ones = 0;
  for (int i = 0; i < 100000; i++) {
    if (stream.Next()) ones++;
  }
  EXPECT_NEAR(ones, 25000, 700);
}

TEST(BitStreamTest, BurstyStreamHasHighVariance) {
  // Compare windowed one-counts: bursty should swing far more than iid at
  // the same average rate.
  BurstyBitStream bursty(0.9, 0.01, 0.005, 0.01, 17);
  std::vector<int> window_counts;
  int count = 0;
  for (int i = 0; i < 200000; i++) {
    if (bursty.Next()) count++;
    if ((i + 1) % 1000 == 0) {
      window_counts.push_back(count);
      count = 0;
    }
  }
  double mean = 0;
  for (int c : window_counts) mean += c;
  mean /= static_cast<double>(window_counts.size());
  double var = 0;
  for (int c : window_counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(window_counts.size());
  // I.i.d. Binomial(1000, p) variance would be < 1000*p ~ mean; bursty far larger.
  EXPECT_GT(var, 2.0 * mean);
}

}  // namespace
}  // namespace streamlib::workload
