#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/moments/ams_sketch.h"
#include "core/moments/fk_estimator.h"

namespace streamlib {
namespace {

// Exact F_k of a stream with `distinct` items of equal frequency `freq`.
double UniformFk(double distinct, double freq, int k) {
  return distinct * std::pow(freq, k);
}

TEST(AmsSketchTest, F2OfUniformStream) {
  AmsSketch ams(9, 64);
  const uint64_t kDistinct = 500;
  const uint64_t kFreq = 200;
  for (uint64_t rep = 0; rep < kFreq; rep++) {
    for (uint64_t i = 0; i < kDistinct; i++) ams.Add(i);
  }
  const double exact = UniformFk(kDistinct, kFreq, 2);
  EXPECT_NEAR(ams.EstimateF2(), exact, exact * 0.25);
}

TEST(AmsSketchTest, F2OfSkewedStream) {
  // One item with count 10000, 1000 items with count 10:
  // F2 = 1e8 + 1e5.
  AmsSketch ams(9, 128);
  for (int i = 0; i < 10000; i++) ams.Add(uint64_t{0});
  for (uint64_t item = 1; item <= 1000; item++) {
    for (int i = 0; i < 10; i++) ams.Add(item);
  }
  const double exact = 1e8 + 1e5;
  EXPECT_NEAR(ams.EstimateF2(), exact, exact * 0.20);
}

TEST(AmsSketchTest, WeightedUpdatesMatchRepeats) {
  AmsSketch by_weight(5, 32);
  AmsSketch by_repeat(5, 32);
  for (uint64_t item = 0; item < 100; item++) {
    by_weight.Add(item, 7);
    for (int i = 0; i < 7; i++) by_repeat.Add(item);
  }
  EXPECT_DOUBLE_EQ(by_weight.EstimateF2(), by_repeat.EstimateF2());
}

TEST(AmsSketchTest, MergeIsLinear) {
  AmsSketch a(5, 32);
  AmsSketch b(5, 32);
  AmsSketch whole(5, 32);
  for (uint64_t i = 0; i < 5000; i++) {
    const uint64_t item = i % 100;
    (i % 2 == 0 ? a : b).Add(item);
    whole.Add(item);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.EstimateF2(), whole.EstimateF2());
}

TEST(AmsSketchTest, MergeGeometryMismatchRejected) {
  AmsSketch a(5, 32);
  AmsSketch b(5, 16);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(FkEstimatorTest, F2MatchesAmsSketch) {
  FkEstimator fk(2, 9, 200, 17);
  const uint64_t kDistinct = 100;
  const uint64_t kFreq = 100;
  for (uint64_t rep = 0; rep < kFreq; rep++) {
    for (uint64_t i = 0; i < kDistinct; i++) fk.Add(i);
  }
  const double exact = UniformFk(kDistinct, kFreq, 2);
  EXPECT_NEAR(fk.Estimate(), exact, exact * 0.35);
}

TEST(FkEstimatorTest, F1IsExactCount) {
  // k=1: X = n * (r - (r-1)) = n for every sample -> estimate == n exactly.
  FkEstimator fk(1, 3, 10, 18);
  for (uint64_t i = 0; i < 12345; i++) fk.Add(i % 100);
  EXPECT_DOUBLE_EQ(fk.Estimate(), 12345.0);
}

TEST(FkEstimatorTest, F3OfUniformStream) {
  FkEstimator fk(3, 9, 300, 19);
  const uint64_t kDistinct = 50;
  const uint64_t kFreq = 200;
  for (uint64_t rep = 0; rep < kFreq; rep++) {
    for (uint64_t i = 0; i < kDistinct; i++) fk.Add(i);
  }
  const double exact = UniformFk(kDistinct, kFreq, 3);
  EXPECT_NEAR(fk.Estimate(), exact, exact * 0.5);
}

TEST(EntropyEstimatorTest, UniformStreamEntropy) {
  // 256 equally frequent items: H = 8 bits.
  EntropyEstimator ent(9, 300, 20);
  for (int rep = 0; rep < 100; rep++) {
    for (uint64_t i = 0; i < 256; i++) ent.Add(i);
  }
  EXPECT_NEAR(ent.Estimate(), 8.0, 1.0);
}

TEST(EntropyEstimatorTest, ConstantStreamHasZeroEntropy) {
  EntropyEstimator ent(5, 50, 21);
  // The estimator is unbiased with nonzero variance, so "zero" means small.
  for (int i = 0; i < 10000; i++) ent.Add(uint64_t{42});
  EXPECT_NEAR(ent.Estimate(), 0.0, 0.25);
}

TEST(EntropyEstimatorTest, SkewReducesEntropy) {
  EntropyEstimator uniform(9, 200, 22);
  EntropyEstimator skewed(9, 200, 23);
  for (int rep = 0; rep < 50; rep++) {
    for (uint64_t i = 0; i < 64; i++) uniform.Add(i);
  }
  // Skewed: item 0 dominates 90% of the stream.
  for (int i = 0; i < 2880; i++) skewed.Add(uint64_t{0});
  for (int rep = 0; rep < 5; rep++) {
    for (uint64_t i = 1; i < 64; i++) skewed.Add(i);
  }
  EXPECT_GT(uniform.Estimate(), skewed.Estimate() + 1.0);
}

}  // namespace
}  // namespace streamlib
