#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "core/cardinality/hyperloglog.h"
#include "core/cardinality/kmv_sketch.h"
#include "core/cardinality/linear_counter.h"
#include "core/cardinality/loglog.h"
#include "core/cardinality/sliding_hyperloglog.h"
#include "core/cardinality/windowed_minhash.h"
#include "core/cardinality/windowed_rarity.h"

namespace streamlib {
namespace {

// ------------------------------------------------------------ LinearCounter

TEST(LinearCounterTest, AccurateWhileSparse) {
  LinearCounter counter(1 << 16);
  for (uint64_t i = 0; i < 10000; i++) counter.Add(i);
  EXPECT_NEAR(counter.Estimate(), 10000.0, 300.0);
}

TEST(LinearCounterTest, DuplicatesDoNotInflate) {
  LinearCounter counter(1 << 14);
  for (int rep = 0; rep < 50; rep++) {
    for (uint64_t i = 0; i < 1000; i++) counter.Add(i);
  }
  EXPECT_NEAR(counter.Estimate(), 1000.0, 100.0);
}

TEST(LinearCounterTest, UnionEstimatesSetUnion) {
  LinearCounter a(1 << 14);
  LinearCounter b(1 << 14);
  for (uint64_t i = 0; i < 2000; i++) a.Add(i);
  for (uint64_t i = 1000; i < 3000; i++) b.Add(i);
  ASSERT_TRUE(a.Union(b).ok());
  EXPECT_NEAR(a.Estimate(), 3000.0, 200.0);
}

// ------------------------------------------------------------- HyperLogLog

TEST(HyperLogLogTest, SparseModeIsExact) {
  HyperLogLog hll(12);
  for (uint64_t i = 0; i < 100; i++) hll.Add(i);
  EXPECT_TRUE(hll.IsSparse());
  EXPECT_DOUBLE_EQ(hll.Estimate(), 100.0);
}

TEST(HyperLogLogTest, DuplicatesIgnoredInSparseMode) {
  HyperLogLog hll(12);
  for (int rep = 0; rep < 10; rep++) {
    for (uint64_t i = 0; i < 50; i++) hll.Add(i);
  }
  EXPECT_DOUBLE_EQ(hll.Estimate(), 50.0);
}

TEST(HyperLogLogTest, UpgradesToDense) {
  HyperLogLog hll(8);  // Sparse limit = 256 * 0.75 / 8 = 24 entries.
  for (uint64_t i = 0; i < 1000; i++) hll.Add(i);
  EXPECT_FALSE(hll.IsSparse());
}

TEST(HyperLogLogTest, ErrorWithinFourSigma) {
  // p=12 -> stderr ~ 1.04/64 ~ 1.6%.
  const int kP = 12;
  for (uint64_t n : {10000u, 100000u, 1000000u}) {
    HyperLogLog hll(kP);
    for (uint64_t i = 0; i < n; i++) hll.Add(i * 0x9e3779b97f4a7c15ULL + n);
    const double rel_err =
        std::fabs(hll.Estimate() - static_cast<double>(n)) / n;
    EXPECT_LT(rel_err, 4 * 1.04 / std::sqrt(4096.0)) << "n=" << n;
  }
}

TEST(HyperLogLogTest, MergeEqualsUnionStream) {
  HyperLogLog a(12);
  HyperLogLog b(12);
  HyperLogLog both(12);
  for (uint64_t i = 0; i < 50000; i++) {
    a.Add(i);
    both.Add(i);
  }
  for (uint64_t i = 25000; i < 75000; i++) {
    b.Add(i);
    both.Add(i);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), both.Estimate());
}

TEST(HyperLogLogTest, MergeSparseIntoDense) {
  HyperLogLog dense(10);
  for (uint64_t i = 0; i < 100000; i++) dense.Add(i);
  HyperLogLog sparse(10);
  for (uint64_t i = 100000; i < 100050; i++) sparse.Add(i);
  ASSERT_TRUE(sparse.IsSparse());
  ASSERT_TRUE(dense.Merge(sparse).ok());
  EXPECT_NEAR(dense.Estimate(), 100050.0, 100050.0 * 0.15);
}

TEST(HyperLogLogTest, MergePrecisionMismatchRejected) {
  HyperLogLog a(10);
  HyperLogLog b(12);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(HyperLogLogTest, SerializeRoundTrip) {
  HyperLogLog hll(11);
  for (uint64_t i = 0; i < 200000; i++) hll.Add(i);
  auto bytes = hll.Serialize();
  auto restored = HyperLogLog::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored.value().Estimate(), hll.Estimate());
}

TEST(HyperLogLogTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> garbage = {99, 1, 2, 3};
  EXPECT_FALSE(HyperLogLog::Deserialize(garbage).ok());
  std::vector<uint8_t> truncated = {12, 0, 0};  // p=12 needs 4096 registers.
  EXPECT_FALSE(HyperLogLog::Deserialize(truncated).ok());
}

// Precision sweep: relative error should scale as ~1.04/sqrt(2^p).
class HllPrecisionSweep : public ::testing::TestWithParam<int> {};

TEST_P(HllPrecisionSweep, ErrorScalesWithPrecision) {
  const int p = GetParam();
  const uint64_t kN = 500000;
  HyperLogLog hll(p);
  for (uint64_t i = 0; i < kN; i++) hll.Add(i);
  const double stderr_bound = 1.04 / std::sqrt(std::pow(2.0, p));
  const double rel_err = std::fabs(hll.Estimate() - kN) / kN;
  EXPECT_LT(rel_err, 5 * stderr_bound) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Precisions, HllPrecisionSweep,
                         ::testing::Values(6, 8, 10, 12, 14));

// ----------------------------------------------------------------- LogLog

TEST(LogLogTest, EstimateWithinExpectedError) {
  LogLogCounter ll(12);
  const uint64_t kN = 200000;
  for (uint64_t i = 0; i < kN; i++) ll.Add(i);
  // stderr ~ 1.30/sqrt(4096) ~ 2%; allow 5 sigma.
  EXPECT_NEAR(ll.Estimate(), static_cast<double>(kN), kN * 0.10);
}

TEST(LogLogTest, HyperLogLogBeatsLogLog) {
  // Run both over many independent streams; HLL's mean relative error
  // should not exceed LogLog's (the paper's historical progression).
  double ll_err = 0;
  double hll_err = 0;
  const uint64_t kN = 100000;
  for (int trial = 0; trial < 5; trial++) {
    LogLogCounter ll(10);
    HyperLogLog hll(10, /*sparse=*/false);
    for (uint64_t i = 0; i < kN; i++) {
      const uint64_t key = i + trial * 10000000ULL;
      ll.Add(key);
      hll.Add(key);
    }
    ll_err += std::fabs(ll.Estimate() - kN) / kN;
    hll_err += std::fabs(hll.Estimate() - kN) / kN;
  }
  EXPECT_LT(hll_err, ll_err * 1.5);  // HLL at least comparable; usually better.
}

// -------------------------------------------------------------------- KMV

TEST(KmvSketchTest, ExactBelowK) {
  KmvSketch kmv(256);
  for (uint64_t i = 0; i < 100; i++) kmv.Add(i);
  EXPECT_DOUBLE_EQ(kmv.Estimate(), 100.0);
}

TEST(KmvSketchTest, EstimateWithinExpectedError) {
  KmvSketch kmv(1024);
  const uint64_t kN = 500000;
  for (uint64_t i = 0; i < kN; i++) kmv.Add(i);
  // stderr ~ 1/sqrt(1022) ~ 3.1%; allow 5 sigma.
  EXPECT_NEAR(kmv.Estimate(), static_cast<double>(kN), kN * 0.16);
}

TEST(KmvSketchTest, MergeMatchesUnion) {
  KmvSketch a(512);
  KmvSketch b(512);
  KmvSketch u(512);
  for (uint64_t i = 0; i < 40000; i++) {
    a.Add(i);
    u.Add(i);
  }
  for (uint64_t i = 20000; i < 60000; i++) {
    b.Add(i);
    u.Add(i);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

TEST(KmvSketchTest, JaccardEstimate) {
  // |A| = |B| = 60000, |A ∩ B| = 30000 -> J = 30000/90000 = 1/3.
  KmvSketch a(2048);
  KmvSketch b(2048);
  for (uint64_t i = 0; i < 60000; i++) a.Add(i);
  for (uint64_t i = 30000; i < 90000; i++) b.Add(i);
  EXPECT_NEAR(KmvSketch::EstimateJaccard(a, b), 1.0 / 3.0, 0.05);
  EXPECT_NEAR(KmvSketch::EstimateIntersection(a, b), 30000.0, 6000.0);
}

TEST(KmvSketchTest, DisjointSetsHaveZeroJaccard) {
  KmvSketch a(512);
  KmvSketch b(512);
  for (uint64_t i = 0; i < 10000; i++) a.Add(i);
  for (uint64_t i = 20000; i < 30000; i++) b.Add(i);
  EXPECT_LT(KmvSketch::EstimateJaccard(a, b), 0.01);
}

// ---------------------------------------------------- SlidingHyperLogLog

TEST(SlidingHyperLogLogTest, WindowRestrictsCount) {
  SlidingHyperLogLog shll(12, 10000);
  // 50k arrivals, each a fresh key, one per tick.
  for (uint64_t t = 0; t < 50000; t++) shll.Add(t, t);
  // Window of 10000 at t=49999 covers keys 40000..49999 -> ~10000 distinct.
  const double est = shll.Estimate(49999, 10000);
  EXPECT_NEAR(est, 10000.0, 10000.0 * 0.10);
}

TEST(SlidingHyperLogLogTest, SmallerWindowsSmallerCounts) {
  SlidingHyperLogLog shll(12, 1 << 14);
  for (uint64_t t = 0; t < 100000; t++) shll.Add(t, t);
  const double w_full = shll.Estimate(99999, 1 << 14);
  const double w_half = shll.Estimate(99999, 1 << 13);
  EXPECT_GT(w_full, w_half * 1.5);
  EXPECT_NEAR(w_half, static_cast<double>(1 << 13), (1 << 13) * 0.12);
}

TEST(SlidingHyperLogLogTest, RepeatedKeysNotOvercounted) {
  SlidingHyperLogLog shll(10, 1000);
  // 100 distinct keys repeated over 10000 ticks.
  for (uint64_t t = 0; t < 10000; t++) shll.Add(t % 100, t);
  EXPECT_NEAR(shll.Estimate(9999, 1000), 100.0, 25.0);
}

// ------------------------------------------------------- WindowedMinHash

TEST(WindowedMinHashTest, IdenticalWindowsHaveJaccardOne) {
  WindowedMinHash a(64, 1000);
  WindowedMinHash b(64, 1000);
  for (uint64_t t = 0; t < 3000; t++) {
    const uint64_t key = t % 200;
    a.Add(key, t);
    b.Add(key, t);
  }
  EXPECT_DOUBLE_EQ(WindowedMinHash::EstimateJaccard(a, b, 2999), 1.0);
}

TEST(WindowedMinHashTest, DisjointWindowsNearZero) {
  WindowedMinHash a(128, 1000);
  WindowedMinHash b(128, 1000);
  for (uint64_t t = 0; t < 3000; t++) {
    a.Add(t % 300, t);
    b.Add(100000 + t % 300, t);
  }
  EXPECT_LT(WindowedMinHash::EstimateJaccard(a, b, 2999), 0.05);
}

TEST(WindowedMinHashTest, PartialOverlapEstimated) {
  // Stream A sees keys {0..299}, stream B sees {150..449}: J = 150/450 = 1/3.
  WindowedMinHash a(512, 10000);
  WindowedMinHash b(512, 10000);
  for (uint64_t t = 0; t < 30000; t++) {
    a.Add(t % 300, t);
    b.Add(150 + (t % 300), t);
  }
  EXPECT_NEAR(WindowedMinHash::EstimateJaccard(a, b, 29999), 1.0 / 3.0,
              0.08);
}

TEST(WindowedMinHashTest, WindowForgetsOldKeys) {
  // Both streams shared keys long ago; currently disjoint.
  WindowedMinHash a(128, 500);
  WindowedMinHash b(128, 500);
  for (uint64_t t = 0; t < 1000; t++) {
    a.Add(t % 100, t);
    b.Add(t % 100, t);  // Identical phase.
  }
  for (uint64_t t = 1000; t < 3000; t++) {
    a.Add(t % 100, t);
    b.Add(50000 + t % 100, t);  // Disjoint phase, >> window long.
  }
  EXPECT_LT(WindowedMinHash::EstimateJaccard(a, b, 2999), 0.05);
}

// -------------------------------------------------------- WindowedRarity

TEST(WindowedRarityTest, AllSingletonsRarityOne) {
  WindowedRarity rarity(64, 1000);
  for (uint64_t t = 0; t < 3000; t++) rarity.Add(t, t);  // All distinct.
  EXPECT_DOUBLE_EQ(rarity.EstimateRarity(1, 2999), 1.0);
  EXPECT_DOUBLE_EQ(rarity.EstimateRarity(2, 2999), 0.0);
}

TEST(WindowedRarityTest, AllDoubletonsRarityAtAlphaTwo) {
  WindowedRarity rarity(64, 1000);
  // Each key appears exactly twice within every window of 1000.
  for (uint64_t t = 0; t < 4000; t++) rarity.Add(t / 2, t);
  EXPECT_DOUBLE_EQ(rarity.EstimateRarity(2, 3999), 1.0);
  EXPECT_DOUBLE_EQ(rarity.EstimateRarity(1, 3999), 0.0);
}

TEST(WindowedRarityTest, MixedRarityEstimated) {
  // Each 800-arrival block interleaves 400 singleton keys with 200 keys
  // appearing twice: 600 distinct per block, of which 2/3 are singletons.
  WindowedRarity rarity(512, 1200);
  uint64_t t = 0;
  for (int block = 0; block < 10; block++) {
    for (int i = 0; i < 400; i++) {
      // Singleton for this cycle.
      rarity.Add(1000000ull + static_cast<uint64_t>(block) * 1000 + i, t++);
      // Repeated key: appears in this block twice.
      const uint64_t repeated =
          2000000ull + static_cast<uint64_t>(block) * 1000 + i / 2;
      rarity.Add(repeated, t++);
    }
  }
  EXPECT_NEAR(rarity.EstimateRarity(1, t - 1), 2.0 / 3.0, 0.10);
  EXPECT_NEAR(rarity.EstimateRarity(2, t - 1), 1.0 / 3.0, 0.10);
}

TEST(WindowedRarityTest, WindowForgetsOldMultiplicity) {
  // Keys repeat heavily early, then appear once each: recent window is all
  // singletons even though history was not.
  WindowedRarity rarity(64, 500);
  uint64_t t = 0;
  for (int rep = 0; rep < 10; rep++) {
    for (uint64_t k = 0; k < 100; k++) rarity.Add(k, t++);
  }
  for (uint64_t k = 1000; k < 1600; k++) rarity.Add(k, t++);
  EXPECT_DOUBLE_EQ(rarity.EstimateRarity(1, t - 1), 1.0);
}

TEST(WindowedMinHashTest, MemoryIsLogarithmicInWindow) {
  WindowedMinHash mh(64, 1 << 16);
  for (uint64_t t = 0; t < (1 << 18); t++) mh.Add(t, t);  // All distinct.
  // Expected O(log W) per function ~ 16; allow headroom.
  EXPECT_LT(mh.TotalEntries(), 64u * 40u);
}

TEST(SlidingHyperLogLogTest, MemoryStaysBounded) {
  SlidingHyperLogLog shll(10, 1 << 12);
  for (uint64_t t = 0; t < 200000; t++) shll.Add(t, t);
  // LFPM theory: expected entries per register is O(log window).
  EXPECT_LT(shll.TotalEntries(), (size_t{1} << 10) * 24);
}

}  // namespace
}  // namespace streamlib
