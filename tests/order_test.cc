#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/order/inversions.h"
#include "core/order/lis.h"

namespace streamlib {
namespace {

uint64_t BruteForceInversions(const std::vector<uint32_t>& v) {
  uint64_t inv = 0;
  for (size_t i = 0; i < v.size(); i++) {
    for (size_t j = i + 1; j < v.size(); j++) {
      if (v[i] > v[j]) inv++;
    }
  }
  return inv;
}

size_t BruteForceLis(const std::vector<double>& v) {
  std::vector<size_t> best(v.size(), 1);
  size_t lis = v.empty() ? 0 : 1;
  for (size_t i = 1; i < v.size(); i++) {
    for (size_t j = 0; j < i; j++) {
      if (v[j] < v[i]) best[i] = std::max(best[i], best[j] + 1);
    }
    lis = std::max(lis, best[i]);
  }
  return lis;
}

TEST(ExactInversionCounterTest, MatchesBruteForce) {
  Rng rng(1);
  std::vector<uint32_t> v;
  ExactInversionCounter counter(1000);
  for (int i = 0; i < 500; i++) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBounded(1000));
    v.push_back(x);
    counter.Add(x);
  }
  EXPECT_EQ(counter.Inversions(), BruteForceInversions(v));
}

TEST(ExactInversionCounterTest, SortedHasZeroReversedHasMax) {
  ExactInversionCounter sorted(100);
  ExactInversionCounter reversed(100);
  for (uint32_t i = 0; i < 100; i++) {
    sorted.Add(i);
    reversed.Add(99 - i);
  }
  EXPECT_EQ(sorted.Inversions(), 0u);
  EXPECT_EQ(reversed.Inversions(), 100u * 99u / 2u);
  EXPECT_DOUBLE_EQ(sorted.Sortedness(), 1.0);
  EXPECT_DOUBLE_EQ(reversed.Sortedness(), 0.0);
}

TEST(ExactInversionCounterTest, DuplicatesAreNotInversions) {
  ExactInversionCounter counter(10);
  for (int i = 0; i < 100; i++) counter.Add(5);
  EXPECT_EQ(counter.Inversions(), 0u);
}

TEST(SampledInversionEstimatorTest, AccurateOnRandomPermutation) {
  // Random stream: expected inversions = n(n-1)/4.
  const int kN = 100000;
  SampledInversionEstimator estimator(1000, 2);
  ExactInversionCounter exact(1 << 20);
  Rng rng(3);
  for (int i = 0; i < kN; i++) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBounded(1 << 20));
    estimator.Add(x);
    exact.Add(x);
  }
  const double truth = static_cast<double>(exact.Inversions());
  EXPECT_NEAR(estimator.Estimate(), truth, truth * 0.05);
}

TEST(SampledInversionEstimatorTest, NearSortedStreamsEstimateLow) {
  // 1% random swaps: inversion fraction far below 1/2.
  SampledInversionEstimator estimator(2000, 4);
  Rng rng(5);
  const int kN = 50000;
  for (int i = 0; i < kN; i++) {
    uint32_t x = static_cast<uint32_t>(i);
    if (rng.NextBool(0.01)) {
      x = static_cast<uint32_t>(rng.NextBounded(kN));
    }
    estimator.Add(x);
  }
  const double max_inv = static_cast<double>(kN) * (kN - 1) / 2.0;
  EXPECT_LT(estimator.Estimate(), max_inv * 0.05);
}

TEST(LisTrackerTest, MatchesBruteForce) {
  Rng rng(6);
  std::vector<double> v;
  LisTracker tracker;
  for (int i = 0; i < 400; i++) {
    const double x = rng.NextDouble();
    v.push_back(x);
    tracker.Add(x);
  }
  EXPECT_EQ(tracker.Length(), BruteForceLis(v));
}

TEST(LisTrackerTest, MonotoneStreams) {
  LisTracker increasing;
  LisTracker decreasing;
  for (int i = 0; i < 1000; i++) {
    increasing.Add(static_cast<double>(i));
    decreasing.Add(static_cast<double>(-i));
  }
  EXPECT_EQ(increasing.Length(), 1000u);
  EXPECT_EQ(decreasing.Length(), 1u);
}

TEST(LisTrackerTest, MemoryEqualsLisLength) {
  // Random permutation of n has expected LIS ~ 2 sqrt(n): memory sublinear.
  LisTracker tracker;
  Rng rng(7);
  const int kN = 100000;
  for (int i = 0; i < kN; i++) tracker.Add(rng.NextDouble());
  EXPECT_LT(tracker.MemoryValues(), 3u * static_cast<size_t>(std::sqrt(kN)));
}

TEST(BoundedLisEstimatorTest, ExactWithinBudget) {
  BoundedLisEstimator estimator(256);
  LisTracker exact;
  Rng rng(8);
  for (int i = 0; i < 5000; i++) {
    const double x = rng.NextDouble();
    estimator.Add(x);
    exact.Add(x);
  }
  // Random 5000-stream has LIS ~ 140 < 256: still exact.
  EXPECT_FALSE(estimator.IsApproximate());
  EXPECT_EQ(estimator.Estimate(), exact.Length());
}

TEST(BoundedLisEstimatorTest, ApproximatesBeyondBudget) {
  BoundedLisEstimator estimator(64);
  LisTracker exact;
  // Strictly increasing stream: LIS = n, far beyond the 64 budget.
  for (int i = 0; i < 10000; i++) {
    estimator.Add(static_cast<double>(i));
    exact.Add(static_cast<double>(i));
  }
  EXPECT_TRUE(estimator.IsApproximate());
  EXPECT_LE(estimator.MemoryValues(), 64u);
  // Monotone streams are tracked exactly even after thinning.
  EXPECT_EQ(estimator.Estimate(), exact.Length());
}

TEST(BoundedLisEstimatorTest, NeverUnderestimates) {
  Rng rng(9);
  for (uint64_t seed : {10u, 11u, 12u}) {
    BoundedLisEstimator estimator(32);
    LisTracker exact;
    Rng local(seed);
    // Piecewise-increasing stream: long runs interleaved with noise, LIS
    // well beyond the budget of 32.
    for (int i = 0; i < 20000; i++) {
      const double x = local.NextBool(0.8)
                           ? static_cast<double>(i)
                           : local.NextDouble() * 20000.0;
      estimator.Add(x);
      exact.Add(x);
    }
    EXPECT_GE(estimator.Estimate(), exact.Length()) << seed;
    // And not wildly loose.
    EXPECT_LE(estimator.Estimate(), exact.Length() * 2) << seed;
  }
}

}  // namespace
}  // namespace streamlib
