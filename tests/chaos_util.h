// Shared fixtures for the chaos (fault-injection) suites: a spout that
// replays failed tuples until everything is acked, and a bolt that keeps
// its state in a KvCheckpointStore with MillWheel-style checkpoint-then-ack
// dedup — the two components the at-least-once and exactly-once-state
// verification tests are built from.

#ifndef STREAMLIB_TESTS_CHAOS_UTIL_H_
#define STREAMLIB_TESTS_CHAOS_UTIL_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/serde.h"
#include "platform/checkpoint.h"
#include "platform/topology.h"

namespace streamlib::platform {

/// State shared between a ReplaySpout and the test body. All access is
/// mutex-guarded: NextTuple runs on the spout thread while OnAck/OnFail
/// arrive from the acker thread.
struct ReplayState {
  std::mutex mu;
  std::deque<int64_t> pending;                    // Not yet emitted.
  std::unordered_map<uint64_t, int64_t> inflight; // root id -> payload.
  uint64_t acked = 0;
  uint64_t failed = 0;   // OnFail deliveries (each payload re-queued).
  uint64_t emitted = 0;  // Total emissions including replays.

  explicit ReplayState(int64_t n) {
    for (int64_t i = 0; i < n; i++) pending.push_back(i);
  }
};

/// At-least-once source with real replay semantics: every payload stays the
/// spout's responsibility until OnAck — OnFail re-queues it for another
/// emission. NextTuple idles (without ending the stream) while payloads are
/// in flight, so the run only finishes once every payload was fully acked:
/// "zero root-tuple loss" is the termination condition itself, and the test
/// then just verifies delivery counts.
class ReplaySpout : public Spout {
 public:
  explicit ReplaySpout(std::shared_ptr<ReplayState> state)
      : state_(std::move(state)) {}

  bool NextTuple(OutputCollector* collector) override {
    int64_t payload;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->pending.empty()) {
        if (state_->inflight.empty()) return false;  // All acked: done.
        // In-flight tuples may still fail back to us; idle-poll. The sleep
        // keeps the spout loop from spinning while the acker works.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return true;
      }
      payload = state_->pending.front();
      state_->pending.pop_front();
    }
    collector->Emit(Tuple::Of(payload));
    const uint64_t root = collector->LastRootId();
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->emitted++;
    // The root cannot resolve before this insert: its kInit acker event is
    // staged in the collector and only flushes after NextTuple returns.
    state_->inflight[root] = payload;
    return true;
  }

  void OnAck(uint64_t root_id) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->inflight.erase(root_id);
    state_->acked++;
  }

  void OnFail(uint64_t root_id) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    auto it = state_->inflight.find(root_id);
    if (it == state_->inflight.end()) return;
    state_->pending.push_back(it->second);  // Replay under a fresh root.
    state_->inflight.erase(it);
    state_->failed++;
  }

 private:
  std::shared_ptr<ReplayState> state_;
};

/// Stateful sink with MillWheel checkpoint-then-ack semantics: per-payload
/// counts plus a DedupLedger, both serialized into a KvCheckpointStore
/// entry on every Execute — crucially *before* the engine records the ack
/// (the engine stages the ack only after Execute returns). A crash between
/// the two (exactly what FaultKind::kTaskCrash injects) therefore loses the
/// ack but never the state, and the redelivered tuple is recognized by the
/// restored ledger instead of double-counting.
class CheckpointedCountBolt : public Bolt {
 public:
  CheckpointedCountBolt(KvCheckpointStore* store, std::string key_prefix)
      : store_(store), key_prefix_(std::move(key_prefix)) {}

  void Prepare(uint32_t task_index, uint32_t num_tasks) override {
    (void)num_tasks;
    key_ = key_prefix_ + ":" + std::to_string(task_index);
    // Restore path — runs both on first start (NotFound: begin empty) and
    // after an injected crash-restart (latest checkpoint wins).
    counts_.clear();
    ledger_ = DedupLedger();
    Result<std::vector<uint8_t>> state = store_->Fetch(key_);
    if (state.ok()) RestoreFrom(state.value());
  }

  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    const int64_t payload = input.Int(0);
    // Payloads double as sequence numbers: replays and injected duplicates
    // redeliver the same payload, and the ledger drops them.
    if (!ledger_.CheckAndRecord(/*producer=*/0,
                                static_cast<uint64_t>(payload))) {
      return;
    }
    counts_[payload]++;
    store_->Put(key_, SerializeState());
  }

  const std::unordered_map<int64_t, uint64_t>& counts() const {
    return counts_;
  }

  /// Decodes a serialized state blob into (payload -> count); the static
  /// form lets tests inspect the store's bytes directly.
  static std::unordered_map<int64_t, uint64_t> DecodeCounts(
      const std::vector<uint8_t>& bytes) {
    CheckpointedCountBolt tmp(nullptr, "");
    tmp.RestoreFrom(bytes);
    return tmp.counts_;
  }

 private:
  std::vector<uint8_t> SerializeState() const {
    ByteWriter w;
    w.PutVarint(counts_.size());
    for (const auto& [payload, count] : counts_) {
      w.PutI64(payload);
      w.PutU64(count);
    }
    const std::vector<uint8_t> ledger_bytes = ledger_.Serialize();
    w.PutVarint(ledger_bytes.size());
    w.PutBytes(ledger_bytes.data(), ledger_bytes.size());
    return w.TakeBytes();
  }

  void RestoreFrom(const std::vector<uint8_t>& bytes) {
    ByteReader r(bytes);
    uint64_t n = 0;
    if (!r.GetVarint(&n).ok()) return;
    for (uint64_t i = 0; i < n; i++) {
      int64_t payload = 0;
      uint64_t count = 0;
      if (!r.GetI64(&payload).ok() || !r.GetU64(&count).ok()) return;
      counts_[payload] = count;
    }
    uint64_t ledger_len = 0;
    if (!r.GetVarint(&ledger_len).ok()) return;
    std::vector<uint8_t> ledger_bytes(ledger_len);
    if (!r.GetBytes(ledger_bytes.data(), ledger_len).ok()) return;
    Result<DedupLedger> ledger = DedupLedger::Deserialize(ledger_bytes);
    if (ledger.ok()) ledger_ = std::move(ledger.value());
  }

  KvCheckpointStore* store_;  // Not owned; must outlive the engine run.
  const std::string key_prefix_;
  std::string key_;
  std::unordered_map<int64_t, uint64_t> counts_;
  DedupLedger ledger_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_TESTS_CHAOS_UTIL_H_
