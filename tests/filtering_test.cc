#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/filtering/blocked_bloom_filter.h"
#include "core/filtering/bloom_filter.h"
#include "core/filtering/counting_bloom_filter.h"
#include "core/filtering/cuckoo_filter.h"
#include "core/filtering/stable_bloom_filter.h"

namespace streamlib {
namespace {

std::string Key(uint64_t i) { return "key-" + std::to_string(i); }

// ------------------------------------------------------------- BloomFilter

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter = BloomFilter::WithExpectedItems(10000, 0.01);
  for (uint64_t i = 0; i < 10000; i++) filter.Add(Key(i));
  for (uint64_t i = 0; i < 10000; i++) {
    EXPECT_TRUE(filter.Contains(Key(i))) << i;
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  const double kFpp = 0.01;
  BloomFilter filter = BloomFilter::WithExpectedItems(10000, kFpp);
  for (uint64_t i = 0; i < 10000; i++) filter.Add(Key(i));
  uint64_t false_positives = 0;
  const uint64_t kProbes = 50000;
  for (uint64_t i = 0; i < kProbes; i++) {
    if (filter.Contains(Key(1000000 + i))) false_positives++;
  }
  const double observed = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(observed, kFpp * 2.0);
  EXPECT_GT(observed, kFpp / 8.0);  // A zero rate would mean a sizing bug.
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter filter(1024, 4);
  for (uint64_t i = 0; i < 1000; i++) {
    EXPECT_FALSE(filter.Contains(Key(i)));
  }
}

TEST(BloomFilterTest, UnionCoversBothSets) {
  BloomFilter a(1 << 16, 5);
  BloomFilter b(1 << 16, 5);
  for (uint64_t i = 0; i < 500; i++) a.Add(Key(i));
  for (uint64_t i = 500; i < 1000; i++) b.Add(Key(i));
  ASSERT_TRUE(a.Union(b).ok());
  for (uint64_t i = 0; i < 1000; i++) EXPECT_TRUE(a.Contains(Key(i)));
}

TEST(BloomFilterTest, UnionGeometryMismatchRejected) {
  BloomFilter a(1 << 10, 4);
  BloomFilter b(1 << 12, 4);
  EXPECT_FALSE(a.Union(b).ok());
  BloomFilter c(1 << 10, 5);
  EXPECT_FALSE(a.Union(c).ok());
}

TEST(BloomFilterTest, CardinalityEstimateTracksInsertions) {
  BloomFilter filter = BloomFilter::WithExpectedItems(50000, 0.01);
  for (uint64_t i = 0; i < 20000; i++) filter.Add(i);
  EXPECT_NEAR(filter.EstimatedCardinality(), 20000.0, 1000.0);
}

TEST(BloomFilterTest, IntegerAndStringKeysBothWork) {
  BloomFilter filter(1 << 14, 4);
  filter.Add(uint64_t{42});
  filter.Add(std::string("forty-two"));
  EXPECT_TRUE(filter.Contains(uint64_t{42}));
  EXPECT_TRUE(filter.Contains(std::string("forty-two")));
  EXPECT_FALSE(filter.Contains(uint64_t{43}));
}

// FPP sweep: measured rate should track the configured target across
// two orders of magnitude.
class BloomFppSweep : public ::testing::TestWithParam<double> {};

TEST_P(BloomFppSweep, MeasuredFppTracksTarget) {
  const double fpp = GetParam();
  BloomFilter filter = BloomFilter::WithExpectedItems(20000, fpp);
  for (uint64_t i = 0; i < 20000; i++) filter.Add(i);
  uint64_t fps = 0;
  const uint64_t kProbes = 200000;
  for (uint64_t i = 0; i < kProbes; i++) {
    if (filter.Contains(uint64_t{10000000 + i})) fps++;
  }
  const double observed = static_cast<double>(fps) / kProbes;
  EXPECT_LT(observed, fpp * 2.5) << "target " << fpp;
}

INSTANTIATE_TEST_SUITE_P(Targets, BloomFppSweep,
                         ::testing::Values(0.1, 0.03, 0.01, 0.003, 0.001));

// ----------------------------------------------------- CountingBloomFilter

TEST(CountingBloomFilterTest, AddRemoveRestoresAbsence) {
  CountingBloomFilter filter = CountingBloomFilter::WithExpectedItems(1000, 0.01);
  filter.Add(Key(1));
  EXPECT_TRUE(filter.Contains(Key(1)));
  filter.Remove(Key(1));
  EXPECT_FALSE(filter.Contains(Key(1)));
}

TEST(CountingBloomFilterTest, OtherKeysSurviveRemove) {
  CountingBloomFilter filter = CountingBloomFilter::WithExpectedItems(5000, 0.01);
  for (uint64_t i = 0; i < 5000; i++) filter.Add(Key(i));
  for (uint64_t i = 0; i < 2500; i++) filter.Remove(Key(i));
  for (uint64_t i = 2500; i < 5000; i++) {
    EXPECT_TRUE(filter.Contains(Key(i))) << i;
  }
}

TEST(CountingBloomFilterTest, MultiplicityHonored) {
  CountingBloomFilter filter(4096, 4);
  filter.Add(Key(7));
  filter.Add(Key(7));
  filter.Remove(Key(7));
  EXPECT_TRUE(filter.Contains(Key(7)));
  filter.Remove(Key(7));
  EXPECT_FALSE(filter.Contains(Key(7)));
}

TEST(CountingBloomFilterTest, SaturationDoesNotFalseNegate) {
  CountingBloomFilter filter(64, 2);
  // Push counters far past the 4-bit max.
  for (int i = 0; i < 100; i++) filter.Add(Key(1));
  // Removing more times than max must not clear the sticky counter.
  for (int i = 0; i < 100; i++) filter.Remove(Key(1));
  EXPECT_TRUE(filter.Contains(Key(1)));
  EXPECT_GT(filter.SaturatedCounters(), 0u);
}

// --------------------------------------------------------- BlockedBloom

TEST(BlockedBloomFilterTest, NoFalseNegatives) {
  BlockedBloomFilter filter = BlockedBloomFilter::WithExpectedItems(20000, 0.01);
  for (uint64_t i = 0; i < 20000; i++) filter.Add(i);
  for (uint64_t i = 0; i < 20000; i++) {
    EXPECT_TRUE(filter.Contains(i)) << i;
  }
}

TEST(BlockedBloomFilterTest, FppDegradedButBounded) {
  // Blocked filters trade FPP for locality: expect worse than target but
  // within a small factor (Putze et al. report ~1.2-4x at these parameters).
  const double kFpp = 0.01;
  BlockedBloomFilter filter = BlockedBloomFilter::WithExpectedItems(20000, kFpp);
  for (uint64_t i = 0; i < 20000; i++) filter.Add(i);
  uint64_t fps = 0;
  const uint64_t kProbes = 100000;
  for (uint64_t i = 0; i < kProbes; i++) {
    if (filter.Contains(uint64_t{5000000 + i})) fps++;
  }
  const double observed = static_cast<double>(fps) / kProbes;
  EXPECT_LT(observed, kFpp * 6.0);
}

// ------------------------------------------------------------ CuckooFilter

TEST(CuckooFilterTest, InsertAndLookup) {
  CuckooFilter filter(10000);
  for (uint64_t i = 0; i < 10000; i++) {
    ASSERT_TRUE(filter.Add(Key(i))) << i;
  }
  for (uint64_t i = 0; i < 10000; i++) {
    EXPECT_TRUE(filter.Contains(Key(i))) << i;
  }
  EXPECT_EQ(filter.size(), 10000u);
}

TEST(CuckooFilterTest, LowFalsePositiveRate) {
  CuckooFilter filter(20000);
  for (uint64_t i = 0; i < 20000; i++) filter.Add(i);
  uint64_t fps = 0;
  const uint64_t kProbes = 200000;
  for (uint64_t i = 0; i < kProbes; i++) {
    if (filter.Contains(uint64_t{9000000 + i})) fps++;
  }
  // 16-bit fingerprints, 4-way buckets: FPP ~ 2*4/2^16 ~ 0.012%.
  EXPECT_LT(static_cast<double>(fps) / kProbes, 0.002);
}

TEST(CuckooFilterTest, DeleteRemovesKey) {
  CuckooFilter filter(1000);
  for (uint64_t i = 0; i < 1000; i++) filter.Add(i);
  for (uint64_t i = 0; i < 500; i++) {
    EXPECT_TRUE(filter.Remove(uint64_t{i})) << i;
  }
  for (uint64_t i = 0; i < 500; i++) {
    EXPECT_FALSE(filter.Contains(uint64_t{i})) << i;
  }
  for (uint64_t i = 500; i < 1000; i++) {
    EXPECT_TRUE(filter.Contains(uint64_t{i})) << i;
  }
  EXPECT_EQ(filter.size(), 500u);
}

TEST(CuckooFilterTest, RemoveAbsentKeyReturnsFalse) {
  CuckooFilter filter(100);
  filter.Add(uint64_t{1});
  EXPECT_FALSE(filter.Remove(uint64_t{999}));
  EXPECT_EQ(filter.size(), 1u);
}

TEST(CuckooFilterTest, AchievesHighLoadFactor) {
  CuckooFilter filter(4096);
  uint64_t inserted = 0;
  for (uint64_t i = 0; i < 4096; i++) {
    if (!filter.Add(i)) break;
    inserted++;
  }
  EXPECT_EQ(inserted, 4096u);
  EXPECT_GT(filter.LoadFactor(), 0.4);  // Power-of-two rounding halves it.
}

// --------------------------------------------------------- StableBloom

TEST(StableBloomFilterTest, DetectsImmediateDuplicates) {
  StableBloomFilter filter(1 << 16, 4, 3, 10, 5);
  EXPECT_FALSE(filter.AddAndCheckDuplicate(Key(1)));
  EXPECT_TRUE(filter.AddAndCheckDuplicate(Key(1)));
}

TEST(StableBloomFilterTest, DoesNotSaturateOnUnboundedStream) {
  // A plain Bloom filter would saturate; the stable variant must keep its
  // false-positive rate on fresh keys bounded after 200k distinct inserts.
  StableBloomFilter filter(1 << 16, 4, 3, 10, 6);
  for (uint64_t i = 0; i < 200000; i++) {
    filter.AddAndCheckDuplicate(uint64_t{i});
  }
  uint64_t fps = 0;
  const uint64_t kProbes = 20000;
  for (uint64_t i = 0; i < kProbes; i++) {
    if (filter.Contains(uint64_t{10000000 + i})) fps++;
  }
  EXPECT_LT(static_cast<double>(fps) / kProbes, 0.30);
}

TEST(StableBloomFilterTest, RecentDuplicatesStillCaught) {
  StableBloomFilter filter(1 << 16, 4, 3, 10, 7);
  for (uint64_t i = 0; i < 100000; i++) {
    filter.AddAndCheckDuplicate(uint64_t{i});
  }
  // Re-adding the most recent keys should flag as duplicate almost always.
  uint64_t caught = 0;
  for (uint64_t i = 99000; i < 100000; i++) {
    if (filter.AddAndCheckDuplicate(uint64_t{i})) caught++;
  }
  EXPECT_GT(caught, 900u);
}

}  // namespace
}  // namespace streamlib
