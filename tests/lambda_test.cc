#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "lambda/batch_layer.h"
#include "lambda/lambda_pipeline.h"
#include "lambda/master_log.h"
#include "workload/text_stream.h"

namespace streamlib::lambda {
namespace {

// Builds "prefix<i>" without the operator+ pattern that trips GCC 12's
// -Wrestrict false positive.
std::string NumberedKey(const char* prefix, int i) {
  std::string key(prefix);
  key += std::to_string(i);
  return key;
}

TEST(MasterLogTest, AppendAssignsSequentialOffsets) {
  MasterLog log;
  EXPECT_EQ(log.Append(1, "a", 1.0), 0u);
  EXPECT_EQ(log.Append(2, "b", 1.0), 1u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(MasterLogTest, ReadRangeIsBounded) {
  MasterLog log;
  for (int i = 0; i < 10; i++) log.Append(i, "k", 1.0);
  std::vector<LogRecord> records;
  log.Read(5, 100, &records);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].offset, 5u);
}

TEST(MasterLogTest, GetOutOfRangeFails) {
  MasterLog log;
  log.Append(1, "a", 1.0);
  EXPECT_TRUE(log.Get(0).ok());
  EXPECT_FALSE(log.Get(1).ok());
}

TEST(BatchLayerTest, ExactTotalsOverPrefix) {
  MasterLog log;
  for (int i = 0; i < 100; i++) log.Append(i, "x", 2.0);
  for (int i = 0; i < 50; i++) log.Append(i, "y", 1.0);
  BatchLayer batch;
  BatchView view = batch.Recompute(log);
  EXPECT_DOUBLE_EQ(view.TotalOf("x"), 200.0);
  EXPECT_DOUBLE_EQ(view.TotalOf("y"), 50.0);
  EXPECT_DOUBLE_EQ(view.TotalOf("z"), 0.0);
  EXPECT_EQ(view.through_offset, 150u);
}

TEST(BatchLayerTest, PrefixRecomputeIgnoresSuffix) {
  MasterLog log;
  for (int i = 0; i < 100; i++) log.Append(i, "x", 1.0);
  BatchLayer batch;
  BatchView view = batch.RecomputePrefix(log, 60);
  EXPECT_DOUBLE_EQ(view.TotalOf("x"), 60.0);
}

TEST(BatchLayerTest, TopKOrdering) {
  MasterLog log;
  for (int i = 0; i < 30; i++) log.Append(i, "gold", 1.0);
  for (int i = 0; i < 20; i++) log.Append(i, "silver", 1.0);
  for (int i = 0; i < 10; i++) log.Append(i, "bronze", 1.0);
  BatchView view = BatchLayer().Recompute(log);
  auto top = view.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "gold");
  EXPECT_EQ(top[1].first, "silver");
}

TEST(LambdaPipelineTest, SpeedLayerServesBeforeAnyBatch) {
  LambdaConfig config;
  config.batch_interval_records = 1000000;  // Never triggers.
  config.speed_snapshot_interval_records = 1;  // Exact freshness for asserts.
  LambdaPipeline pipeline(config);
  for (int i = 0; i < 500; i++) pipeline.Ingest(i, "tag", 1.0);
  EXPECT_NEAR(pipeline.QueryTotal("tag"), 500.0, 1.0);
  EXPECT_EQ(pipeline.batch_recomputes(), 0u);
}

TEST(LambdaPipelineTest, BatchAbsorbsSpeedState) {
  LambdaConfig config;
  config.batch_interval_records = 1000000;
  config.speed_snapshot_interval_records = 1;
  LambdaPipeline pipeline(config);
  for (int i = 0; i < 1000; i++) pipeline.Ingest(i, "k", 1.0);
  pipeline.RunBatchNow();
  // After the hand-off the speed layer is empty and the answer is exact.
  EXPECT_EQ(pipeline.SpeedSuffixLength(), 0u);
  EXPECT_DOUBLE_EQ(pipeline.QueryTotal("k"), 1000.0);
  // New events go to the speed layer only.
  for (int i = 0; i < 10; i++) pipeline.Ingest(i, "k", 1.0);
  EXPECT_NEAR(pipeline.QueryTotal("k"), 1010.0, 1.0);
  EXPECT_EQ(pipeline.SpeedSuffixLength(), 10u);
}

TEST(LambdaPipelineTest, AutomaticBatchTriggering) {
  LambdaConfig config;
  config.batch_interval_records = 100;
  LambdaPipeline pipeline(config);
  for (int i = 0; i < 1000; i++) pipeline.Ingest(i, "k", 1.0);
  EXPECT_EQ(pipeline.batch_recomputes(), 10u);
  EXPECT_LT(pipeline.SpeedSuffixLength(), 100u);
  EXPECT_DOUBLE_EQ(pipeline.QueryTotal("k"), 1000.0);
}

TEST(LambdaPipelineTest, MergedTotalsTrackExactCounts) {
  LambdaConfig config;
  config.batch_interval_records = 500;
  LambdaPipeline pipeline(config);
  workload::TextStreamGenerator gen(1000, 1.1, 42);
  std::unordered_map<std::string, double> exact;
  for (int i = 0; i < 20000; i++) {
    const std::string& tag = gen.Next();
    exact[tag] += 1.0;
    pipeline.Ingest(i, tag, 1.0);
  }
  // Heavy keys answered within the speed layer's sketch error.
  for (uint64_t rank = 0; rank < 10; rank++) {
    const std::string& tag = gen.TokenForRank(rank);
    EXPECT_NEAR(pipeline.QueryTotal(tag), exact[tag],
                exact[tag] * 0.02 + 5.0)
        << tag;
  }
}

TEST(LambdaPipelineTest, TopKMergesBatchAndSpeed) {
  LambdaConfig config;
  config.batch_interval_records = 1000000;
  config.speed_snapshot_interval_records = 1;
  LambdaPipeline pipeline(config);
  // Batch phase: "old" dominates, then a batch runs.
  for (int i = 0; i < 300; i++) pipeline.Ingest(i, "old", 1.0);
  for (int i = 0; i < 100; i++) pipeline.Ingest(i, "both", 1.0);
  pipeline.RunBatchNow();
  // Speed phase: "new" surges, "both" keeps accumulating.
  for (int i = 0; i < 250; i++) pipeline.Ingest(i, "new", 1.0);
  for (int i = 0; i < 250; i++) pipeline.Ingest(i, "both", 1.0);

  auto top = pipeline.QueryTopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, "both");  // 350 merged across the two views.
  EXPECT_NEAR(top[0].second, 350.0, 5.0);
  EXPECT_EQ(top[1].first, "old");
  EXPECT_EQ(top[2].first, "new");
}

TEST(LambdaPipelineTest, DistinctKeysMergedAcrossViews) {
  LambdaConfig config;
  config.batch_interval_records = 1000000;
  config.speed_snapshot_interval_records = 1;
  LambdaPipeline pipeline(config);
  for (int i = 0; i < 3000; i++) {
    pipeline.Ingest(i, NumberedKey("batch-key-", i), 1.0);
  }
  pipeline.RunBatchNow();
  for (int i = 0; i < 2000; i++) {
    pipeline.Ingest(i, NumberedKey("speed-key-", i), 1.0);
  }
  // 5000 distinct keys split across both views; HLL(12) stderr ~1.6%.
  EXPECT_NEAR(pipeline.QueryDistinctKeys(), 5000.0, 5000.0 * 0.08);
}

TEST(LambdaPipelineTest, StalenessBoundedByInterval) {
  LambdaConfig config;
  config.batch_interval_records = 250;
  LambdaPipeline pipeline(config);
  for (int i = 0; i < 10000; i++) {
    pipeline.Ingest(i, NumberedKey("k", i % 7), 1.0);
    EXPECT_LT(pipeline.SpeedSuffixLength(), 250u);
  }
}

TEST(LambdaPipelineTest, SaveAndLoadViewsRoundTripsQueries) {
  LambdaConfig config;
  config.batch_interval_records = 1000000;
  config.speed_snapshot_interval_records = 1;
  LambdaPipeline pipeline(config);
  for (int i = 0; i < 3000; i++) {
    pipeline.Ingest(i, NumberedKey("batch-key-", i % 40), 1.0 + i % 3);
  }
  pipeline.RunBatchNow();
  for (int i = 0; i < 2000; i++) {
    pipeline.Ingest(i, NumberedKey("speed-key-", i % 25), 2.0);
  }

  const std::string path = ::testing::TempDir() + "lambda_views.bin";
  ASSERT_TRUE(pipeline.SaveViews(path).ok());

  // A fresh pipeline restored from the image must answer every merged
  // query identically — both views travelled as SketchBlobs.
  LambdaPipeline restored(config);
  ASSERT_TRUE(restored.LoadViews(path).ok());
  EXPECT_DOUBLE_EQ(restored.QueryTotal("batch-key-7"),
                   pipeline.QueryTotal("batch-key-7"));
  EXPECT_DOUBLE_EQ(restored.QueryTotal("speed-key-3"),
                   pipeline.QueryTotal("speed-key-3"));
  EXPECT_DOUBLE_EQ(restored.QueryDistinctKeys(),
                   pipeline.QueryDistinctKeys());
  const auto top_a = restored.QueryTopK(10);
  const auto top_b = pipeline.QueryTopK(10);
  ASSERT_EQ(top_a.size(), top_b.size());
  for (size_t i = 0; i < top_a.size(); i++) {
    EXPECT_EQ(top_a[i].first, top_b[i].first);
    EXPECT_DOUBLE_EQ(top_a[i].second, top_b[i].second);
  }
}

TEST(LambdaPipelineTest, LoadViewsRejectsCorruptImageAtomically) {
  LambdaConfig config;
  LambdaPipeline pipeline(config);
  for (int i = 0; i < 500; i++) {
    pipeline.Ingest(i, NumberedKey("k", i % 10), 1.0);
  }
  const std::string path = ::testing::TempDir() + "lambda_views_corrupt.bin";
  ASSERT_TRUE(pipeline.SaveViews(path).ok());

  // Truncate the image: the load must fail and leave the target untouched.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  LambdaPipeline restored(config);
  for (int i = 0; i < 100; i++) {
    restored.Ingest(i, NumberedKey("live", i), 1.0);
  }
  const double before = restored.QueryTotal("live0");
  EXPECT_FALSE(restored.LoadViews(path).ok());
  EXPECT_DOUBLE_EQ(restored.QueryTotal("live0"), before);
}

}  // namespace
}  // namespace streamlib::lambda
