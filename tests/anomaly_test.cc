#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/anomaly/adwin.h"
#include "core/anomaly/ewma_detector.h"
#include "core/anomaly/half_space_trees.h"
#include "core/anomaly/robust_detector.h"
#include "workload/timeseries.h"

namespace streamlib {
namespace {

// Precision/recall of a detector over a labeled spike stream. A detection
// within +-2 steps of an injected anomaly counts as a hit.
struct Score {
  double precision = 0.0;
  double recall = 0.0;
};

Score Evaluate(AnomalyDetector* detector, double spike_probability,
               uint64_t seed, int n = 50000) {
  workload::TimeSeriesConfig config;
  config.base_level = 100.0;
  config.noise_sigma = 2.0;
  config.spike_probability = spike_probability;
  config.spike_magnitude = 12.0;
  workload::TimeSeriesGenerator gen(config, seed);

  std::vector<bool> truth(n);
  std::vector<bool> flagged(n);
  for (int i = 0; i < n; i++) {
    auto p = gen.Next();
    truth[i] = p.label != workload::AnomalyKind::kNone;
    flagged[i] = detector->AddAndDetect(p.value);
  }
  int tp = 0;
  int fp = 0;
  int fn = 0;
  for (int i = 0; i < n; i++) {
    if (flagged[i]) {
      bool near_truth = false;
      for (int d = -2; d <= 2; d++) {
        if (i + d >= 0 && i + d < n && truth[i + d]) near_truth = true;
      }
      near_truth ? tp++ : fp++;
    }
    if (truth[i]) {
      bool detected = false;
      for (int d = -2; d <= 2; d++) {
        if (i + d >= 0 && i + d < n && flagged[i + d]) detected = true;
      }
      if (!detected) fn++;
    }
  }
  Score s;
  s.precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 1.0;
  s.recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 1.0;
  return s;
}

TEST(EwmaDetectorTest, CatchesLargeSpikes) {
  EwmaDetector detector(0.05, 4.0);
  Score s = Evaluate(&detector, 0.002, 1);
  EXPECT_GT(s.recall, 0.9);
  EXPECT_GT(s.precision, 0.5);
}

TEST(EwmaDetectorTest, QuietOnCleanData) {
  EwmaDetector detector(0.05, 4.0);
  Score s = Evaluate(&detector, 0.0, 2);
  (void)s;
  // No injected anomalies: any flag is a false positive. Count directly.
  workload::TimeSeriesConfig config;
  config.noise_sigma = 1.0;
  workload::TimeSeriesGenerator gen(config, 3);
  EwmaDetector clean(0.05, 4.0);
  int flags = 0;
  for (int i = 0; i < 50000; i++) {
    if (clean.AddAndDetect(gen.Next().value)) flags++;
  }
  EXPECT_LT(flags, 50);  // << 0.1% false positive rate at 4 sigma.
}

TEST(RobustMadDetectorTest, CatchesSpikes) {
  RobustMadDetector detector(128, 5.0);
  Score s = Evaluate(&detector, 0.002, 4);
  EXPECT_GT(s.recall, 0.9);
  EXPECT_GT(s.precision, 0.5);
}

TEST(RobustMadDetectorTest, SurvivesContamination) {
  // 5% of points are huge outliers: the MAD baseline must not be dragged,
  // so ordinary points still pass and outliers still flag.
  RobustMadDetector detector(128, 6.0);
  Rng rng(5);
  int normal_flagged = 0;
  int outlier_flagged = 0;
  int normal_count = 0;
  int outlier_count = 0;
  for (int i = 0; i < 20000; i++) {
    const bool outlier = rng.NextBool(0.05);
    const double v =
        outlier ? 1000.0 + rng.NextGaussian() : rng.NextGaussian();
    const bool flagged = detector.AddAndDetect(v);
    if (i < 500) continue;  // Warm-up.
    if (outlier) {
      outlier_count++;
      if (flagged) outlier_flagged++;
    } else {
      normal_count++;
      if (flagged) normal_flagged++;
    }
  }
  EXPECT_GT(static_cast<double>(outlier_flagged) / outlier_count, 0.95);
  EXPECT_LT(static_cast<double>(normal_flagged) / normal_count, 0.01);
}

TEST(CusumDetectorTest, DetectsSmallPersistentShift) {
  // A 1.5-sigma level shift is invisible to a 4-sigma point detector but
  // must trip CUSUM within a reasonable delay.
  CusumDetector cusum(0.5, 8.0, 200);
  EwmaDetector ewma(0.05, 4.0);
  Rng rng(6);
  int cusum_alarm_at = -1;
  int ewma_alarm_at = -1;
  for (int i = 0; i < 4000; i++) {
    const double shift = i >= 2000 ? 1.5 : 0.0;
    const double v = rng.NextGaussian() + shift;
    if (cusum.AddAndDetect(v) && i >= 2000 && cusum_alarm_at < 0) {
      cusum_alarm_at = i;
    }
    if (ewma.AddAndDetect(v) && i >= 2000 && ewma_alarm_at < 0) {
      ewma_alarm_at = i;
    }
  }
  ASSERT_GE(cusum_alarm_at, 2000);
  EXPECT_LT(cusum_alarm_at, 2200);  // Detected within ~200 steps.
}

TEST(CusumDetectorTest, NoAlarmsOnStationaryData) {
  CusumDetector cusum(0.5, 10.0, 200);
  Rng rng(7);
  int alarms = 0;
  for (int i = 0; i < 50000; i++) {
    if (cusum.AddAndDetect(rng.NextGaussian())) alarms++;
  }
  EXPECT_LE(alarms, 2);
}

TEST(AdwinDetectorTest, DetectsMeanShift) {
  AdwinDetector adwin(0.002);
  Rng rng(8);
  bool detected_before = false;
  int detected_at = -1;
  for (int i = 0; i < 6000; i++) {
    const double v = rng.NextGaussian() * 0.5 + (i >= 3000 ? 2.0 : 0.0);
    const bool change = adwin.AddAndDetect(v);
    if (change && i < 3000) detected_before = true;
    if (change && i >= 3000 && detected_at < 0) detected_at = i;
  }
  EXPECT_FALSE(detected_before);
  ASSERT_GT(detected_at, 0);
  EXPECT_LT(detected_at, 3300);
  // After shrinking, the window mean should reflect the new level.
  EXPECT_NEAR(adwin.Mean(), 2.0, 0.3);
}

TEST(AdwinDetectorTest, WindowGrowsWhileStationary) {
  AdwinDetector adwin(0.002);
  Rng rng(9);
  for (int i = 0; i < 20000; i++) adwin.AddAndDetect(rng.NextGaussian());
  EXPECT_GT(adwin.WindowLength(), 10000u);
  // Memory is logarithmic in the window.
  EXPECT_LT(adwin.NumBuckets(), 200u);
}

TEST(HalfSpaceTreesTest, OutlierScoresLowerThanInliers) {
  HalfSpaceTrees hst(25, 8, 250, 2, 10);
  Rng rng(10);
  // Train on a tight cluster around (0.5, 0.5).
  for (int i = 0; i < 2000; i++) {
    hst.ScoreAndUpdate({0.5 + rng.NextGaussian() * 0.03,
                        0.5 + rng.NextGaussian() * 0.03});
  }
  const double inlier = hst.Score({0.5, 0.5});
  const double outlier = hst.Score({0.05, 0.95});
  EXPECT_GT(inlier, outlier * 3.0);
}

TEST(HstDetectorTest, FlagsSpikesInTimeSeries) {
  // Ratio 0.6 is the sweet spot on this workload (see bench_t1_anomaly);
  // the ensemble detector trades precision for generality vs parametric.
  HstDetector detector(25, 8, 250, 4, 0.6, 11);
  Score s = Evaluate(&detector, 0.002, 12, 30000);
  EXPECT_GT(s.recall, 0.8);
  EXPECT_GT(s.precision, 0.4);
}

TEST(DetectorPolymorphismTest, AllDetectorsShareTheInterface) {
  std::vector<std::unique_ptr<AnomalyDetector>> detectors;
  detectors.push_back(std::make_unique<EwmaDetector>(0.05, 4.0));
  detectors.push_back(std::make_unique<CusumDetector>(0.5, 8.0));
  detectors.push_back(std::make_unique<RobustMadDetector>(64, 5.0));
  detectors.push_back(std::make_unique<AdwinDetector>(0.01));
  detectors.push_back(std::make_unique<HstDetector>(10, 6, 100, 2, 0.2, 13));
  Rng rng(14);
  for (auto& d : detectors) {
    for (int i = 0; i < 1000; i++) d->AddAndDetect(rng.NextGaussian());
    EXPECT_NE(d->Name(), nullptr);
  }
}

}  // namespace
}  // namespace streamlib
