// Single source of randomness for the randomized test suites.
//
// Every test that wants variation derives its seeds from TestSeed()
// (typically `TestSeed() ^ k` for the k-th case) instead of hard-coding
// literals. The default is fixed — CI is reproducible run to run — and the
// STREAMLIB_TEST_SEED environment variable overrides it (decimal or 0x
// hex), so a failure found under one seed is replayed exactly by
// exporting the value the failing run logged.

#ifndef STREAMLIB_TESTS_TEST_SEED_H_
#define STREAMLIB_TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace streamlib {

/// The process-wide test seed: STREAMLIB_TEST_SEED if set, else a fixed
/// default. Resolved and logged once per process, on first use.
inline uint64_t TestSeed() {
  static const uint64_t seed = [] {
    uint64_t s = 0x5eed0000;
    const char* env = std::getenv("STREAMLIB_TEST_SEED");
    if (env != nullptr && env[0] != '\0') {
      s = std::strtoull(env, nullptr, /*base=*/0);
    }
    std::fprintf(stderr,
                 "[ seed ] STREAMLIB_TEST_SEED=%llu (0x%llx) — export this "
                 "to reproduce\n",
                 static_cast<unsigned long long>(s),
                 static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

}  // namespace streamlib

#endif  // STREAMLIB_TESTS_TEST_SEED_H_
