#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/bitutil.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/status.h"

namespace streamlib {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// ---------------------------------------------------------------- Hashing

TEST(HashTest, Murmur3IsDeterministic) {
  const char* data = "the quick brown fox";
  Hash128 a = Murmur3_128(data, std::strlen(data), 0);
  Hash128 b = Murmur3_128(data, std::strlen(data), 0);
  EXPECT_EQ(a.low, b.low);
  EXPECT_EQ(a.high, b.high);
}

TEST(HashTest, Murmur3SeedChangesOutput) {
  const char* data = "the quick brown fox";
  EXPECT_NE(Murmur3_64(data, std::strlen(data), 0),
            Murmur3_64(data, std::strlen(data), 1));
}

TEST(HashTest, Murmur3KnownVector) {
  // Reference value for MurmurHash3 x64 128 of the empty string, seed 0.
  Hash128 h = Murmur3_128("", 0, 0);
  EXPECT_EQ(h.low, 0u);
  EXPECT_EQ(h.high, 0u);
}

TEST(HashTest, Murmur3HandlesAllTailLengths) {
  // Exercise every switch-case tail length; distinct outputs expected.
  std::set<uint64_t> outputs;
  std::string data = "abcdefghijklmnopqrstuvwxyz012345";
  for (size_t len = 0; len <= 17; len++) {
    outputs.insert(Murmur3_64(data.data(), len, 7));
  }
  EXPECT_EQ(outputs.size(), 18u);
}

TEST(HashTest, HashValueDispatchesOnType) {
  // Strings hash by content, not pointer.
  std::string a = "hello";
  std::string b = "hello";
  EXPECT_EQ(HashValue(a), HashValue(b));
  EXPECT_EQ(HashValue(a), HashValue(std::string_view("hello")));
  // Integers work too and differ from their neighbors.
  EXPECT_NE(HashValue(uint64_t{1}), HashValue(uint64_t{2}));
}

TEST(HashTest, Mix64IsBijectiveOnSamples) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; i++) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashTest, DoubleHashProducesDistinctProbes) {
  uint64_t h1 = HashValue(std::string("key"), 1);
  uint64_t h2 = HashValue(std::string("key"), 2) | 1;
  std::set<uint64_t> probes;
  for (uint32_t i = 0; i < 16; i++) probes.insert(DoubleHash(h1, h2, i) % 4096);
  EXPECT_GT(probes.size(), 12u);  // Collisions possible but rare.
}

// ---------------------------------------------------------------- Bit utils

TEST(BitUtilTest, CountLeadingZeros) {
  EXPECT_EQ(CountLeadingZeros64(0), 64);
  EXPECT_EQ(CountLeadingZeros64(1), 63);
  EXPECT_EQ(CountLeadingZeros64(~uint64_t{0}), 0);
}

TEST(BitUtilTest, PowersOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(64), 64u);
  EXPECT_EQ(NextPowerOfTwo(65), 128u);
}

TEST(BitUtilTest, Logs) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(4), 2);
  EXPECT_EQ(Log2Ceil(5), 3);
}

TEST(BitUtilTest, RankOfLeadingOne) {
  // With 8-bit registers: 1000_0000 -> rank 1, 0000_0001 -> rank 8, 0 -> 9.
  EXPECT_EQ(RankOfLeadingOne(0x80, 8), 1);
  EXPECT_EQ(RankOfLeadingOne(0x01, 8), 8);
  EXPECT_EQ(RankOfLeadingOne(0x00, 8), 9);
  EXPECT_EQ(RankOfLeadingOne(uint64_t{1} << 63, 64), 1);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  const uint64_t kBuckets = 10;
  const int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; i++) counts[rng.NextBounded(kBuckets)]++;
  for (uint64_t b = 0; b < kBuckets; b++) {
    EXPECT_NEAR(counts[b], kDraws / static_cast<int>(kBuckets),
                5 * std::sqrt(static_cast<double>(kDraws) / kBuckets));
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; i++) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < n; i++) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; i++) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

// ---------------------------------------------------------------- Serde

TEST(SerdeTest, RoundTripFixedWidth) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutDouble(3.25);

  ByteReader r(w.bytes());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, RoundTripVarintBoundaries) {
  std::vector<uint64_t> values = {0,    1,    127,  128,   16383, 16384,
                                  1u << 20, ~uint64_t{0}, 42};
  ByteWriter w;
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.bytes());
  for (uint64_t expected : values) {
    uint64_t got;
    ASSERT_TRUE(r.GetVarint(&got).ok());
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, RoundTripStrings) {
  ByteWriter w;
  w.PutString("");
  w.PutString("hello");
  w.PutString(std::string(1000, 'x'));
  ByteReader r(w.bytes());
  std::string a;
  std::string b;
  std::string c;
  ASSERT_TRUE(r.GetString(&a).ok());
  ASSERT_TRUE(r.GetString(&b).ok());
  ASSERT_TRUE(r.GetString(&c).ok());
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, "hello");
  EXPECT_EQ(c, std::string(1000, 'x'));
}

TEST(SerdeTest, TruncationIsCorruption) {
  ByteWriter w;
  w.PutU64(7);
  ByteReader r(w.bytes().data(), 4);  // Half the u64.
  uint64_t v;
  Status s = r.GetU64(&v);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(SerdeTest, TruncatedVarintIsCorruption) {
  std::vector<uint8_t> bytes = {0x80, 0x80};  // Unterminated varint.
  ByteReader r(bytes.data(), bytes.size());
  uint64_t v;
  EXPECT_EQ(r.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(SerdeTest, TruncatedStringIsCorruption) {
  ByteWriter w;
  w.PutVarint(100);  // Claims 100 bytes, provides none.
  ByteReader r(w.bytes());
  std::string s;
  EXPECT_EQ(r.GetString(&s).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace streamlib
