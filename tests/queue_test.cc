// Tests for the transport primitives: BlockingQueue batch operations and
// the SPSC ring buffer, including concurrent conservation/order checks and
// close-while-full / close-while-empty races.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "platform/queue.h"
#include "platform/spsc_ring.h"

namespace streamlib::platform {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// BlockingQueue batch API.

TEST(BlockingQueueBatchTest, PushAllPopBatchPreservesFifoOrder) {
  BlockingQueue<int> q(64);
  std::vector<int> in = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.PushAll(std::span<int>(in)), 5u);
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 16), 5u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(BlockingQueueBatchTest, PopBatchRespectsMax) {
  BlockingQueue<int> q(64);
  std::vector<int> in = {1, 2, 3, 4, 5};
  q.PushAll(std::span<int>(in));
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(out, 2), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.TryPopBatch(out, 16), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(BlockingQueueBatchTest, TryPushAllMovesOnlyAPrefixWhenNearCapacity) {
  BlockingQueue<std::string> q(4);
  std::vector<std::string> in = {"a", "b", "c", "d", "e", "f"};
  EXPECT_EQ(q.TryPushAll(std::span<std::string>(in)), 4u);
  // The prefix was consumed (moved-from); the suffix is untouched.
  EXPECT_EQ(in[4], "e");
  EXPECT_EQ(in[5], "f");
  EXPECT_EQ(q.TryPushAll(std::span<std::string>(in).subspan(4)), 0u);
  std::vector<std::string> out;
  EXPECT_EQ(q.TryPopBatch(out, 16), 4u);
  EXPECT_EQ(out, (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(BlockingQueueBatchTest, TryPushHandsTheItemBackOnFailure) {
  BlockingQueue<std::string> q(1);
  std::string first = "first";
  EXPECT_TRUE(q.TryPush(std::move(first)));
  std::string second = "second";
  EXPECT_FALSE(q.TryPush(std::move(second)));
  // Failed push must not consume the item — no copy was lost.
  EXPECT_EQ(second, "second");
}

TEST(BlockingQueueBatchTest, BlockingPushAllCompletesAsConsumerDrains) {
  BlockingQueue<int> q(4);
  std::vector<int> in(64);
  for (int i = 0; i < 64; i++) in[i] = i;
  std::thread producer([&] { EXPECT_EQ(q.PushAll(std::span<int>(in)), 64u); });
  std::vector<int> out;
  while (out.size() < 64) {
    std::vector<int> chunk;
    if (q.PopBatchWithTimeout(chunk, 8, milliseconds(100)) == 0) break;
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  producer.join();
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; i++) EXPECT_EQ(out[i], i);
}

TEST(BlockingQueueBatchTest, PopWithTimeoutTimesOutOnEmptyQueue) {
  BlockingQueue<int> q(4);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopWithTimeout(milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, milliseconds(15));
  q.ForcePush(7);
  EXPECT_EQ(q.PopWithTimeout(milliseconds(20)).value_or(-1), 7);
}

TEST(BlockingQueueBatchTest, CloseWakesBlockedBatchOperations) {
  BlockingQueue<int> full_q(2);
  std::vector<int> overflow = {1, 2, 3, 4, 5};
  std::thread producer([&] {
    // Only the first two fit; the rest are dropped at close.
    EXPECT_EQ(full_q.PushAll(std::span<int>(overflow)), 2u);
  });
  BlockingQueue<int> empty_q(2);
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_EQ(empty_q.PopBatch(out, 4), 0u);  // Blocks until close.
  });
  std::this_thread::sleep_for(milliseconds(20));
  full_q.Close();
  empty_q.Close();
  producer.join();
  consumer.join();
}

TEST(BlockingQueueBatchTest, ConcurrentBatchProducersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  BlockingQueue<uint64_t> q(128);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&q, p] {
      std::vector<uint64_t> batch;
      for (int i = 0; i < kPerProducer; i++) {
        batch.push_back(static_cast<uint64_t>(p) * kPerProducer + i);
        if (batch.size() == 32 || i + 1 == kPerProducer) {
          EXPECT_EQ(q.PushAll(std::span<uint64_t>(batch)), batch.size());
          batch.clear();
        }
      }
    });
  }
  std::vector<uint64_t> seen;
  std::thread consumer([&] {
    std::vector<uint64_t> chunk;
    while (true) {
      chunk.clear();
      if (q.PopBatch(chunk, 64) == 0) break;
      seen.insert(seen.end(), chunk.begin(), chunk.end());
    }
  });
  for (auto& t : producers) t.join();
  q.Close();
  consumer.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers) * kPerProducer);
  std::vector<bool> present(kProducers * kPerProducer, false);
  for (uint64_t v : seen) {
    ASSERT_LT(v, present.size());
    EXPECT_FALSE(present[v]) << "duplicate item " << v;
    present[v] = true;
  }
}

// ---------------------------------------------------------------------------
// SpscRing.

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingTest, BatchPushPopPreservesFifoOrder) {
  SpscRing<int> ring(8);
  std::vector<int> in = {1, 2, 3, 4, 5};
  EXPECT_EQ(ring.TryPushAll(std::span<int>(in)), 5u);
  EXPECT_EQ(ring.Size(), 5u);
  std::vector<int> out;
  EXPECT_EQ(ring.PopBatch(out, 16), 5u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(ring.Size(), 0u);
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  SpscRing<uint64_t> ring(4);
  uint64_t next_out = 0;
  std::vector<uint64_t> out;
  for (uint64_t i = 0; i < 1000; i++) {
    uint64_t v = i;
    EXPECT_TRUE(ring.Push(std::move(v)));
    if (i % 3 == 2) {
      out.clear();
      ASSERT_EQ(ring.PopBatch(out, 3), 3u);
      for (uint64_t got : out) EXPECT_EQ(got, next_out++);
    }
  }
}

TEST(SpscRingTest, TryPushAllMovesOnlyAPrefixWhenFull) {
  SpscRing<int> ring(4);
  std::vector<int> in = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(ring.TryPushAll(std::span<int>(in)), 4u);
  EXPECT_EQ(ring.TryPushAll(std::span<int>(in).subspan(4)), 0u);
  std::vector<int> out;
  EXPECT_EQ(ring.TryPopBatch(out, 2), 2u);
  // Space freed: the suffix now fits. (A single PopBatch may return fewer
  // than everything enqueued — the consumer's cached tail index lags.)
  EXPECT_EQ(ring.TryPushAll(std::span<int>(in).subspan(4)), 2u);
  while (out.size() < 6) {
    ASSERT_GT(ring.PopBatch(out, 16), 0u);
  }
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(SpscRingTest, BlockingPushAllCompletesAsConsumerDrains) {
  SpscRing<uint64_t> ring(4);
  std::vector<uint64_t> in(256);
  for (uint64_t i = 0; i < 256; i++) in[i] = i;
  std::thread producer(
      [&] { EXPECT_EQ(ring.PushAll(std::span<uint64_t>(in)), 256u); });
  std::vector<uint64_t> out;
  while (out.size() < 256) {
    std::vector<uint64_t> chunk;
    if (ring.PopBatch(chunk, 16) == 0) break;
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  producer.join();
  ASSERT_EQ(out.size(), 256u);
  for (uint64_t i = 0; i < 256; i++) EXPECT_EQ(out[i], i);
}

TEST(SpscRingTest, PopWithTimeoutTimesOutOnEmptyRing) {
  SpscRing<int> ring(4);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(ring.PopWithTimeout(milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, milliseconds(15));
  int v = 9;
  EXPECT_TRUE(ring.Push(std::move(v)));
  EXPECT_EQ(ring.PopWithTimeout(milliseconds(20)).value_or(-1), 9);
}

TEST(SpscRingTest, CloseWhileEmptyUnblocksConsumer) {
  SpscRing<int> ring(4);
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_EQ(ring.PopBatch(out, 8), 0u);  // Returns 0 once closed+drained.
  });
  std::this_thread::sleep_for(milliseconds(10));
  ring.Close();
  consumer.join();
}

TEST(SpscRingTest, CloseWhileFullUnblocksProducerAndDrainsResidue) {
  SpscRing<int> ring(2);
  std::vector<int> in = {1, 2, 3, 4};
  std::thread producer([&] {
    // Blocks after two items; close aborts the rest.
    EXPECT_EQ(ring.PushAll(std::span<int>(in)), 2u);
  });
  std::this_thread::sleep_for(milliseconds(10));
  ring.Close();
  producer.join();
  // Items pushed before the close must still drain.
  std::vector<int> out;
  EXPECT_EQ(ring.PopBatch(out, 8), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(ring.PopBatch(out, 8), 0u);
}

TEST(SpscRingTest, ConcurrentStreamConservesCountAndOrder) {
  constexpr uint64_t kN = 200000;
  SpscRing<uint64_t> ring(64);
  std::thread producer([&] {
    std::vector<uint64_t> batch;
    for (uint64_t i = 0; i < kN; i++) {
      batch.push_back(i);
      if (batch.size() == 17 || i + 1 == kN) {
        ASSERT_EQ(ring.PushAll(std::span<uint64_t>(batch)), batch.size());
        batch.clear();
      }
    }
    ring.Close();
  });
  uint64_t expected = 0;
  std::vector<uint64_t> chunk;
  while (true) {
    chunk.clear();
    const size_t n = ring.PopBatch(chunk, 23);
    if (n == 0) break;
    // SPSC: global order must be exactly the push order.
    for (uint64_t v : chunk) ASSERT_EQ(v, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kN);
}

}  // namespace
}  // namespace streamlib::platform
