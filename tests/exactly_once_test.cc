// Exactly-once acceptance suite for epoch-aligned barrier checkpoints
// (DESIGN.md §12): config validation, the EpochAligner / coordinator /
// grouped-state units, key-group rescaling, and the chaos matrix — crash a
// run mid-epoch under every fault kind, restore from the last complete
// epoch, and prove zero loss AND zero duplication. Plus barrier-position
// exactness, a 50-seed frame-bit-identity torture run, and the N->2N
// rescale-equivalence property.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "common/state.h"
#include "core/frequency/count_min_sketch.h"
#include "platform/checkpoint.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/epoch.h"
#include "platform/fault.h"
#include "platform/recorder.h"
#include "platform/stream_operators.h"
#include "platform/topology.h"
#include "test_seed.h"

namespace streamlib::platform {
namespace {

// ------------------------------------------------------ config validation

TEST(ExactlyOnceConfigTest, ExactlyOnceRequiresStoreAndInterval) {
  KvCheckpointStore store;
  EngineConfig config;
  config.semantics = DeliverySemantics::kExactlyOnce;

  // Neither the store nor the interval: rejected with a typed status.
  Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("exactly-once"), std::string::npos);

  // A store alone is not enough — barriers must actually flow.
  config.checkpoint_store = &store;
  EXPECT_FALSE(config.Validate().ok());

  // An interval alone is not enough — frames need somewhere to live.
  config.checkpoint_store = nullptr;
  config.epoch_interval_tuples = 32;
  EXPECT_FALSE(config.Validate().ok());

  config.checkpoint_store = &store;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ExactlyOnceConfigTest, EpochKnobsRequireStoreUnderAnySemantics) {
  KvCheckpointStore store;
  EngineConfig config;  // kAtMostOnce — barriers are semantics-independent.
  config.epoch_interval_tuples = 16;
  Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("checkpoint_store"), std::string::npos);

  config.epoch_interval_tuples = 0;
  config.resume_from_epoch = 3;  // Resuming also needs frames to read.
  EXPECT_FALSE(config.Validate().ok());

  config.checkpoint_store = &store;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ExactlyOnceConfigTest, AlignTimeoutMustBePositiveAndFinite) {
  KvCheckpointStore store;
  EngineConfig config;
  config.semantics = DeliverySemantics::kExactlyOnce;
  config.checkpoint_store = &store;
  config.epoch_interval_tuples = 32;
  ASSERT_TRUE(config.Validate().ok());

  for (const double bad : {0.0, -0.5, std::nan("")}) {
    config.epoch_align_timeout_seconds = bad;
    Status status = config.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("epoch_align_timeout_seconds"),
              std::string::npos);
  }
  config.epoch_align_timeout_seconds = 0.2;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ExactlyOnceConfigTest, RecordingAndEpochCheckpointsAreExclusive) {
  // A recording replays spout emissions only; barrier schedules and
  // restored state are outside its determinism envelope.
  TopologyBuilder builder;
  builder.AddSpout("src", []() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        []() -> std::optional<Tuple> { return std::nullopt; });
  });
  const Topology topology = builder.Build().value();
  const std::string path = ::testing::TempDir() + "epoch_rec.slfr";
  Result<std::unique_ptr<RunRecorder>> recorder =
      RunRecorder::Create(path, EngineConfig{}, topology);
  ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();

  KvCheckpointStore store;
  EngineConfig config;
  config.recorder = recorder.value().get();
  config.checkpoint_store = &store;
  config.epoch_interval_tuples = 8;
  Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("mutually exclusive"), std::string::npos);

  config.epoch_interval_tuples = 0;
  config.resume_from_epoch = 1;
  EXPECT_FALSE(config.Validate().ok());
  std::remove(path.c_str());
}

TEST(ExactlyOnceConfigDeathTest, RunAbortsOnExactlyOnceWithoutStore) {
  TopologyBuilder builder;
  builder.AddSpout("src", []() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        []() -> std::optional<Tuple> { return std::nullopt; });
  });
  EngineConfig config;
  config.semantics = DeliverySemantics::kExactlyOnce;
  TopologyEngine engine(builder.Build().value(), config);
  EXPECT_DEATH(engine.Run(), "exactly-once");
}

// ---------------------------------------------------------- EpochAligner

TEST(EpochAlignerTest, SingleProducerAlignsInstantly) {
  EpochAligner aligner(1, /*timeout_nanos=*/1'000'000, /*base_epoch=*/0);
  EXPECT_EQ(aligner.OnBarrier(7, 1, 100), 1u);
  EXPECT_FALSE(aligner.ShouldHold(7));  // Nothing ever outruns alignment.
  EXPECT_EQ(aligner.OnBarrier(7, 2, 200), 2u);
  EXPECT_EQ(aligner.aligned_epoch(), 2u);
}

TEST(EpochAlignerTest, AlignsOnMinimumWatermarkAndHoldsFastProducers) {
  EpochAligner aligner(2, 1'000'000, 0);
  // Producer 0's barrier arrives first: its post-barrier data must be held
  // (tagged epoch 2) until producer 1 catches up.
  EXPECT_EQ(aligner.OnBarrier(0, 1, 100), 0u);
  EXPECT_TRUE(aligner.ShouldHold(0));
  EXPECT_EQ(aligner.HoldTag(0), 2u);
  EXPECT_FALSE(aligner.ShouldHold(1));
  // Producer 1's barrier completes the alignment and releases the hold.
  EXPECT_EQ(aligner.OnBarrier(1, 1, 200), 1u);
  EXPECT_FALSE(aligner.ShouldHold(0));
  EXPECT_EQ(aligner.aligned_epoch(), 1u);
}

TEST(EpochAlignerTest, SkippedEpochsAlignAtMinimumWatermark) {
  EpochAligner aligner(2, 1'000'000, 0);
  // Barriers 1 and 2 toward producer 0 were lost; its next marker is 3.
  EXPECT_EQ(aligner.OnBarrier(0, 3, 100), 0u);
  EXPECT_EQ(aligner.OnBarrier(1, 2, 200), 2u);  // min(3, 2): epoch 1 skipped.
  EXPECT_TRUE(aligner.ShouldHold(0));           // 0 is still one ahead.
  EXPECT_EQ(aligner.OnBarrier(1, 3, 300), 3u);
  EXPECT_FALSE(aligner.ShouldHold(0));
}

TEST(EpochAlignerTest, StaleBarrierNeverRewindsAlignment) {
  EpochAligner aligner(2, 1'000'000, 0);
  EXPECT_EQ(aligner.OnBarrier(0, 3, 100), 0u);
  EXPECT_EQ(aligner.OnBarrier(1, 3, 200), 3u);
  // A late marker for an already-aligned epoch is a no-op.
  EXPECT_EQ(aligner.OnBarrier(0, 1, 300), 0u);
  EXPECT_EQ(aligner.aligned_epoch(), 3u);
}

TEST(EpochAlignerTest, TimeoutForceAdvancesToMaxWatermarkWithoutSnapshot) {
  EpochAligner aligner(2, /*timeout_nanos=*/1'000, 0);
  EXPECT_EQ(aligner.OnBarrier(0, 2, 100), 0u);  // Producer 1 never shows.
  EXPECT_FALSE(aligner.TimedOut(900));          // 800ns held: under budget.
  EXPECT_TRUE(aligner.TimedOut(1'200));         // 1100ns: over.
  EXPECT_EQ(aligner.ForceAdvance(), 2u);
  EXPECT_EQ(aligner.epochs_timed_out(), 1u);
  EXPECT_FALSE(aligner.TimedOut(10'000));  // Clock disarmed after recovery.
  EXPECT_FALSE(aligner.ShouldHold(0));
  // Alignment retries naturally at the next epoch once both producers talk.
  EXPECT_EQ(aligner.OnBarrier(1, 3, 10'100), 0u);  // min(2, 3) == aligned.
  EXPECT_EQ(aligner.OnBarrier(0, 3, 10'200), 3u);
}

TEST(EpochAlignerTest, BaseEpochResumesNumbering) {
  EpochAligner aligner(2, 1'000'000, /*base_epoch=*/5);
  EXPECT_EQ(aligner.OnBarrier(0, 5, 100), 0u);  // At or below base: stale.
  EXPECT_EQ(aligner.OnBarrier(1, 6, 200), 0u);
  EXPECT_EQ(aligner.OnBarrier(0, 6, 300), 6u);
}

// -------------------------------------------------- CheckpointCoordinator

TEST(CheckpointCoordinatorTest, EpochCompletesOnlyWhenEveryTaskAcks) {
  KvCheckpointStore store;
  CheckpointCoordinator coordinator(&store, /*participants=*/3,
                                    /*base_epoch=*/0);
  EXPECT_FALSE(coordinator.AckEpoch(1, 0));
  EXPECT_FALSE(coordinator.AckEpoch(1, 1));
  EXPECT_FALSE(coordinator.AckEpoch(1, 1));  // Duplicate ack: idempotent.
  EXPECT_EQ(coordinator.last_complete(), 0u);
  EXPECT_FALSE(store.Get(EpochCompleteKey(1)).has_value());

  EXPECT_TRUE(coordinator.AckEpoch(1, 2));
  EXPECT_EQ(coordinator.last_complete(), 1u);
  EXPECT_EQ(coordinator.epochs_completed(), 1u);
  EXPECT_EQ(LastCompleteEpoch(store), 1u);

  // The durable manifest records (epoch, participants).
  std::optional<std::vector<uint8_t>> manifest = store.Get(EpochCompleteKey(1));
  ASSERT_TRUE(manifest.has_value());
  ByteReader r(*manifest);
  uint64_t epoch = 0;
  uint64_t participants = 0;
  ASSERT_TRUE(r.GetVarint(&epoch).ok());
  ASSERT_TRUE(r.GetVarint(&participants).ok());
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(participants, 3u);

  // A completed epoch takes no further acks.
  EXPECT_FALSE(coordinator.AckEpoch(1, 0));
}

TEST(CheckpointCoordinatorTest, PointerAdvancesMonotonicallyAcrossGaps) {
  KvCheckpointStore store;
  CheckpointCoordinator coordinator(&store, 2, 0);
  EXPECT_TRUE((coordinator.AckEpoch(1, 0), coordinator.AckEpoch(1, 1)));
  // Epoch 2 is skipped (say a timeout ate it); epoch 3 still completes and
  // the pointer moves to the highest complete epoch.
  EXPECT_TRUE((coordinator.AckEpoch(3, 0), coordinator.AckEpoch(3, 1)));
  EXPECT_EQ(coordinator.last_complete(), 3u);
  EXPECT_EQ(coordinator.epochs_completed(), 2u);
  EXPECT_EQ(LastCompleteEpoch(store), 3u);
  EXPECT_FALSE(store.Get(EpochCompleteKey(2)).has_value());
}

TEST(CheckpointCoordinatorTest, FenceBlocksEpochsBeyondCrashSnapshot) {
  KvCheckpointStore store;
  CheckpointCoordinator coordinator(&store, 2, 0);
  EXPECT_FALSE(coordinator.AckEpoch(2, 0));  // Gathering.
  coordinator.FenceEpochsAfter(1);           // Crash restored into epoch 1.
  EXPECT_EQ(coordinator.fence(), 1u);
  // The gathered ack was discarded and late acks bounce: epoch 2 may have
  // lost acked effects, it must never be marked complete.
  EXPECT_FALSE(coordinator.AckEpoch(2, 1));
  EXPECT_FALSE(coordinator.AckEpoch(2, 0));
  EXPECT_EQ(coordinator.epochs_completed(), 0u);
  EXPECT_FALSE(store.Get(EpochCompleteKey(2)).has_value());
  // The fence epoch itself is still completable — its frames are whole.
  EXPECT_FALSE(coordinator.AckEpoch(1, 0));
  EXPECT_TRUE(coordinator.AckEpoch(1, 1));
  EXPECT_EQ(coordinator.last_complete(), 1u);
  // A second, earlier crash tightens the fence; it never loosens.
  coordinator.FenceEpochsAfter(3);
  EXPECT_EQ(coordinator.fence(), 1u);
}

TEST(CheckpointCoordinatorTest, BaseEpochTreatsPriorEpochsAsComplete) {
  KvCheckpointStore store;
  CheckpointCoordinator coordinator(&store, 1, /*base_epoch=*/4);
  EXPECT_FALSE(coordinator.AckEpoch(3, 0));  // Below base: moot.
  EXPECT_EQ(coordinator.last_complete(), 4u);
  EXPECT_TRUE(coordinator.AckEpoch(5, 0));
  EXPECT_EQ(coordinator.last_complete(), 5u);
}

// --------------------------------------------------- grouped-state serde

TEST(GroupedStateTest, RoundTrips) {
  std::map<uint32_t, std::vector<uint8_t>> groups;
  groups[3] = {1, 2, 3};
  groups[17] = {};
  groups[63] = {9};
  Result<std::map<uint32_t, std::vector<uint8_t>>> decoded =
      DecodeGroupedState(EncodeGroupedState(groups));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), groups);
}

TEST(GroupedStateTest, RejectsMissingMagic) {
  const std::vector<uint8_t> junk = {'X', 'X', 'X', 'X', 0};
  Result<std::map<uint32_t, std::vector<uint8_t>>> decoded =
      DecodeGroupedState(junk);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(DecodeGroupedState({}).ok());
}

TEST(GroupedStateTest, RejectsTruncatedPayload) {
  ByteWriter w;
  w.PutBytes("EPG1", 4);
  w.PutVarint(1);   // One group...
  w.PutVarint(3);   // ...id 3...
  w.PutVarint(10);  // ...claiming 10 payload bytes...
  w.PutBytes("abc", 3);  // ...but only 3 present.
  Result<std::map<uint32_t, std::vector<uint8_t>>> decoded =
      DecodeGroupedState(w.TakeBytes());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(GroupedStateTest, RejectsOutOfRangeGroupId) {
  ByteWriter w;
  w.PutBytes("EPG1", 4);
  w.PutVarint(1);
  w.PutVarint(kNumKeyGroups);  // One past the last valid id.
  w.PutVarint(0);
  Result<std::map<uint32_t, std::vector<uint8_t>>> decoded =
      DecodeGroupedState(w.TakeBytes());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(GroupedStateTest, RejectsDuplicateGroupId) {
  ByteWriter w;
  w.PutBytes("EPG1", 4);
  w.PutVarint(2);
  for (int i = 0; i < 2; i++) {
    w.PutVarint(5);
    w.PutVarint(1);
    w.PutBytes("x", 1);
  }
  Result<std::map<uint32_t, std::vector<uint8_t>>> decoded =
      DecodeGroupedState(w.TakeBytes());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(decoded.status().ToString().find("duplicate"), std::string::npos);
}

// ----------------------------------------------------- RescaleEpochFrames

/// One shard's grouped frame at parallelism `tasks`: every group it owns,
/// payload = the group id repeated (id + 1) times — distinguishable bytes.
std::vector<uint8_t> MakeShardFrame(uint32_t task, uint32_t tasks) {
  std::map<uint32_t, std::vector<uint8_t>> groups;
  for (uint32_t g = 0; g < kNumKeyGroups; g++) {
    if (g % tasks == task) {
      groups[g] = std::vector<uint8_t>(g + 1, static_cast<uint8_t>(g));
    }
  }
  return EncodeGroupedState(groups);
}

void SeedCompleteEpoch(KvCheckpointStore& store, uint64_t epoch,
                       const std::string& component, uint32_t tasks) {
  for (uint32_t t = 0; t < tasks; t++) {
    store.Put(EpochTaskKey(epoch, component, t), MakeShardFrame(t, tasks));
  }
  ByteWriter manifest;
  manifest.PutVarint(epoch);
  manifest.PutVarint(tasks + 1);
  store.Put(EpochCompleteKey(epoch), manifest.TakeBytes());
}

TEST(RescaleTest, GrowRedistributesEveryKeyGroup) {
  KvCheckpointStore store;
  SeedCompleteEpoch(store, 7, "shard", 2);
  ASSERT_TRUE(RescaleEpochFrames(store, 7, "shard", 2, 4).ok());
  for (uint32_t t = 0; t < 4; t++) {
    std::optional<std::vector<uint8_t>> frame =
        store.Get(EpochTaskKey(7, "shard", t));
    ASSERT_TRUE(frame.has_value()) << "task " << t;
    Result<std::map<uint32_t, std::vector<uint8_t>>> groups =
        DecodeGroupedState(*frame);
    ASSERT_TRUE(groups.ok());
    EXPECT_EQ(groups.value().size(), kNumKeyGroups / 4);
    for (const auto& [g, payload] : groups.value()) {
      EXPECT_EQ(g % 4, t);  // New ownership rule.
      EXPECT_EQ(payload,
                std::vector<uint8_t>(g + 1, static_cast<uint8_t>(g)))
          << "group " << g << " payload mangled in transit";
    }
  }
}

TEST(RescaleTest, ShrinkMergesGroupsAndErasesOrphanFrames) {
  KvCheckpointStore store;
  SeedCompleteEpoch(store, 3, "shard", 4);
  ASSERT_TRUE(RescaleEpochFrames(store, 3, "shard", 4, 2).ok());
  for (uint32_t t = 0; t < 2; t++) {
    Result<std::map<uint32_t, std::vector<uint8_t>>> groups =
        DecodeGroupedState(store.Get(EpochTaskKey(3, "shard", t)).value());
    ASSERT_TRUE(groups.ok());
    EXPECT_EQ(groups.value().size(), kNumKeyGroups / 2);
    for (const auto& [g, payload] : groups.value()) EXPECT_EQ(g % 2, t);
  }
  // Tasks 2 and 3 no longer exist; their frames must be gone.
  EXPECT_FALSE(store.Get(EpochTaskKey(3, "shard", 2)).has_value());
  EXPECT_FALSE(store.Get(EpochTaskKey(3, "shard", 3)).has_value());
}

TEST(RescaleTest, RefusesIncompleteEpoch) {
  KvCheckpointStore store;
  store.Put(EpochTaskKey(5, "shard", 0), MakeShardFrame(0, 1));
  const Status status = RescaleEpochFrames(store, 5, "shard", 1, 2);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(RescaleTest, RejectsParallelismNotDividingKeyGroups) {
  KvCheckpointStore store;
  EXPECT_EQ(RescaleEpochFrames(store, 1, "shard", 2, 3).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RescaleEpochFrames(store, 1, "shard", 0, 2).code(),
            StatusCode::kInvalidArgument);
}

TEST(RescaleTest, MalformedFrameLeavesStoreUntouched) {
  KvCheckpointStore store;
  SeedCompleteEpoch(store, 2, "shard", 2);
  const std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef};
  store.Put(EpochTaskKey(2, "shard", 1), garbage);
  const std::vector<uint8_t> intact =
      store.Get(EpochTaskKey(2, "shard", 0)).value();

  ASSERT_FALSE(RescaleEpochFrames(store, 2, "shard", 2, 4).ok());
  EXPECT_EQ(store.Get(EpochTaskKey(2, "shard", 0)).value(), intact);
  EXPECT_EQ(store.Get(EpochTaskKey(2, "shard", 1)).value(), garbage);
  EXPECT_FALSE(store.Get(EpochTaskKey(2, "shard", 2)).has_value());
  EXPECT_FALSE(store.Get(EpochTaskKey(2, "shard", 3)).has_value());
}

TEST(RescaleTest, MisplacedGroupIsCorruption) {
  KvCheckpointStore store;
  // Task 0 of 2 claiming group 3 (owner: 3 % 2 == task 1).
  std::map<uint32_t, std::vector<uint8_t>> wrong;
  wrong[3] = {1};
  store.Put(EpochTaskKey(9, "shard", 0), EncodeGroupedState(wrong));
  store.Put(EpochTaskKey(9, "shard", 1), MakeShardFrame(1, 2));
  ByteWriter manifest;
  manifest.PutVarint(9);
  manifest.PutVarint(3);
  store.Put(EpochCompleteKey(9), manifest.TakeBytes());
  EXPECT_EQ(RescaleEpochFrames(store, 9, "shard", 2, 4).code(),
            StatusCode::kCorruption);
}

// ------------------------------------------------- KeyGroupedSketchBolt

TEST(KeyGroupedSketchBoltTest, SnapshotRestoreRoundTripsMergedEstimates) {
  auto make = [] { return CountMinSketch(128, 4); };
  auto update = [](CountMinSketch& sketch, const Tuple& t) {
    sketch.Add(static_cast<uint64_t>(t.Int(0)));
  };
  KeyGroupedSketchBolt<CountMinSketch> original(make, update, 0);
  original.Prepare(0, 1);  // Owns all 64 groups.
  for (int64_t k = 0; k < 200; k++) {
    original.Execute(Tuple::Of(k % 23), nullptr);
  }
  std::optional<std::vector<uint8_t>> frame = original.SnapshotEpoch(1);
  ASSERT_TRUE(frame.has_value());

  KeyGroupedSketchBolt<CountMinSketch> restored(make, update, 0);
  restored.Prepare(0, 1);
  ASSERT_TRUE(restored.RestoreEpoch(1, *frame).ok());
  EXPECT_EQ(restored.num_groups(), original.num_groups());
  const CountMinSketch a = original.Merged();
  const CountMinSketch b = restored.Merged();
  EXPECT_EQ(a.total_count(), b.total_count());
  for (uint64_t k = 0; k < 23; k++) {
    EXPECT_EQ(a.Estimate(k), b.Estimate(k)) << "key " << k;
  }
}

TEST(KeyGroupedSketchBoltTest, RestoreRejectsForeignGroupsWithoutRescale) {
  auto make = [] { return CountMinSketch(64, 2); };
  auto update = [](CountMinSketch& sketch, const Tuple& t) {
    sketch.Add(static_cast<uint64_t>(t.Int(0)));
  };
  KeyGroupedSketchBolt<CountMinSketch> wide(make, update, 0);
  wide.Prepare(0, 1);
  for (int64_t k = 0; k < 300; k++) wide.Execute(Tuple::Of(k), nullptr);
  std::optional<std::vector<uint8_t>> frame = wide.SnapshotEpoch(1);
  ASSERT_TRUE(frame.has_value());

  // A parallelism-2 shard handed the full-width frame must refuse: the
  // frame was not run through RescaleEpochFrames.
  KeyGroupedSketchBolt<CountMinSketch> narrow(make, update, 0);
  narrow.Prepare(0, 2);
  const Status status = narrow.RestoreEpoch(1, *frame);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("rescaled"), std::string::npos);
}

// --------------------------------------------- chaos-matrix test fixture

/// Per-payload delivery counts merged across count-bolt tasks at Finish.
struct CountHolder {
  std::mutex mu;
  std::map<int64_t, uint64_t> counts;
};

/// The exactly-once reference sink: per-payload counts plus a DedupLedger
/// (payloads double as sequence numbers), with state living ONLY in epoch
/// frames — no per-tuple store writes. Restores rebuild both the counts
/// and the ledger, so replayed deliveries of already-counted payloads are
/// dropped even across a crash/resume boundary.
class EpochCountBolt : public Bolt {
 public:
  EpochCountBolt(std::shared_ptr<CountHolder> holder, bool dedup)
      : holder_(std::move(holder)), dedup_(dedup) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    const int64_t seq = input.Int(0);
    if (dedup_ &&
        !ledger_.CheckAndRecord(0, static_cast<uint64_t>(seq))) {
      return;
    }
    counts_[seq]++;
  }

  /// Frame bytes are canonical (std::map order + the ledger, which is
  /// order-free whenever the seen-set is empty) — the determinism torture
  /// test compares them bit for bit.
  std::optional<std::vector<uint8_t>> SnapshotEpoch(uint64_t epoch) override {
    (void)epoch;
    ByteWriter w;
    w.PutVarint(counts_.size());
    for (const auto& [seq, count] : counts_) {
      w.PutI64(seq);
      w.PutVarint(count);
    }
    const std::vector<uint8_t> ledger = ledger_.Serialize();
    w.PutVarint(ledger.size());
    w.PutBytes(ledger.data(), ledger.size());
    return w.TakeBytes();
  }

  Status RestoreEpoch(uint64_t epoch,
                      const std::vector<uint8_t>& state) override {
    (void)epoch;
    std::map<int64_t, uint64_t> counts;
    DedupLedger ledger;
    STREAMLIB_RETURN_NOT_OK(Decode(state, &counts, &ledger));
    counts_ = std::move(counts);
    ledger_ = std::move(ledger);
    return Status::OK();
  }

  void Finish(OutputCollector* collector) override {
    (void)collector;
    std::lock_guard<std::mutex> lock(holder_->mu);
    for (const auto& [seq, count] : counts_) holder_->counts[seq] += count;
  }

  static Status Decode(const std::vector<uint8_t>& bytes,
                       std::map<int64_t, uint64_t>* counts,
                       DedupLedger* ledger) {
    ByteReader r(bytes);
    uint64_t n = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&n));
    for (uint64_t i = 0; i < n; i++) {
      int64_t seq = 0;
      uint64_t count = 0;
      STREAMLIB_RETURN_NOT_OK(r.GetI64(&seq));
      STREAMLIB_RETURN_NOT_OK(r.GetVarint(&count));
      (*counts)[seq] = count;
    }
    uint64_t ledger_len = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&ledger_len));
    if (ledger_len > r.remaining()) {
      return Status::Corruption("count frame truncated (ledger)");
    }
    std::vector<uint8_t> ledger_bytes(ledger_len);
    STREAMLIB_RETURN_NOT_OK(r.GetBytes(ledger_bytes.data(), ledger_len));
    Result<DedupLedger> decoded = DedupLedger::Deserialize(ledger_bytes);
    STREAMLIB_RETURN_NOT_OK(decoded.status());
    *ledger = std::move(decoded.value());
    return Status::OK();
  }

 private:
  std::shared_ptr<CountHolder> holder_;
  const bool dedup_;
  std::map<int64_t, uint64_t> counts_;  // Ordered: canonical frame bytes.
  DedupLedger ledger_;
};

/// src -> relay x2 (shuffle) -> count x2 (fields): the chaos topology. The
/// shuffle hop forces real multi-producer barrier alignment at each count
/// task; fields grouping keeps every payload on a stable count task so the
/// per-task ledgers see all redeliveries of their own payloads.
Topology BuildCountTopology(int64_t limit, int64_t halt,
                            std::shared_ptr<CountHolder> holder) {
  TopologyBuilder builder;
  builder.AddSpout("src", [limit, halt]() -> std::unique_ptr<Spout> {
    return std::make_unique<ReplayableSequenceSpout>(limit, nullptr, halt);
  });
  builder.AddBolt(
      "relay",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& t, OutputCollector* out) { out->Emit(t); });
      },
      2, {{"src", Grouping::Shuffle()}});
  builder.AddBolt(
      "count",
      [holder]() -> std::unique_ptr<Bolt> {
        return std::make_unique<EpochCountBolt>(holder, /*dedup=*/true);
      },
      2, {{"relay", Grouping::Fields(0)}});
  return builder.Build().value();
}

EngineConfig MakeExactlyOnceConfig(KvCheckpointStore* store, uint64_t resume,
                                   const FaultSpec& faults) {
  EngineConfig config;
  config.semantics = DeliverySemantics::kExactlyOnce;
  config.checkpoint_store = store;
  config.epoch_interval_tuples = 32;
  config.resume_from_epoch = resume;
  config.ack_timeout_seconds = 0.15;  // Fast replay rounds under faults.
  config.epoch_align_timeout_seconds = 0.25;
  config.faults = faults;
  return config;
}

/// The acceptance property: run phase 1 under `phase1` faults with the
/// source dying mid-epoch at `halt`, then resume a fresh engine from the
/// last complete epoch under `phase2` faults and let it finish the stream.
/// Every payload must be counted exactly once — zero loss (every sequence
/// present) and zero duplication (no count above one), regardless of which
/// fault mix ran.
void RunCrashResumeScenario(const std::string& name, FaultSpec phase1,
                            FaultSpec phase2) {
  SCOPED_TRACE(name);
  constexpr int64_t kN = 280;
  constexpr int64_t kHalt = 150;
  KvCheckpointStore store;

  {
    auto torn = std::make_shared<CountHolder>();
    TopologyEngine engine(BuildCountTopology(kN, kHalt, torn),
                          MakeExactlyOnceConfig(&store, 0, phase1));
    engine.Run();
    if (phase1.Enabled()) {
      EXPECT_GT(engine.fault_plan()->total_injected(), 0u);
    }
    // The pointer the resumed run will trust matches the coordinator's.
    EXPECT_EQ(LastCompleteEpoch(store), engine.last_complete_epoch());
  }

  const uint64_t resume = LastCompleteEpoch(store);
  auto counts = std::make_shared<CountHolder>();
  TopologyEngine engine(BuildCountTopology(kN, /*halt=*/-1, counts),
                        MakeExactlyOnceConfig(&store, resume, phase2));
  engine.Run();
  EXPECT_GE(engine.last_complete_epoch(), resume);

  std::lock_guard<std::mutex> lock(counts->mu);
  ASSERT_EQ(counts->counts.size(), static_cast<size_t>(kN))
      << "lost " << (kN - counts->counts.size()) << " payloads";
  for (int64_t i = 0; i < kN; i++) {
    auto it = counts->counts.find(i);
    ASSERT_NE(it, counts->counts.end()) << "payload " << i << " lost";
    EXPECT_EQ(it->second, 1u) << "payload " << i << " double-counted";
  }
}

// -------------------------------------- the chaos matrix (the tentpole)

TEST(ExactlyOnceChaosTest, CleanCrashResume) {
  RunCrashResumeScenario("clean", FaultSpec{}, FaultSpec{});
}

TEST(ExactlyOnceChaosTest, SurvivesTransportDrops) {
  FaultSpec faults;
  faults.seed = TestSeed() ^ 0xe001;
  faults.drop_tuple_prob = 0.02;
  RunCrashResumeScenario("drops", faults, faults);
}

TEST(ExactlyOnceChaosTest, SurvivesTransportDuplicates) {
  FaultSpec faults;
  faults.seed = TestSeed() ^ 0xe002;
  faults.duplicate_tuple_prob = 0.03;
  RunCrashResumeScenario("duplicates", faults, faults);
}

TEST(ExactlyOnceChaosTest, SurvivesDeliveryDelays) {
  FaultSpec faults;
  faults.seed = TestSeed() ^ 0xe003;
  faults.delay_delivery_prob = 0.02;
  faults.delay_max_micros = 150;
  RunCrashResumeScenario("delays", faults, faults);
}

TEST(ExactlyOnceChaosTest, SurvivesBoltThrows) {
  FaultSpec faults;
  faults.seed = TestSeed() ^ 0xe004;
  faults.bolt_throw_prob = 0.01;
  RunCrashResumeScenario("throws", faults, faults);
}

TEST(ExactlyOnceChaosTest, SurvivesTaskCrashMidEpoch) {
  // The hard case: a bolt dies between its snapshot and the next barrier,
  // restores a stale frame, and the coordinator fence must keep every
  // torn epoch from ever completing. Phase 2 runs crash-free (a live
  // crash tears in-memory state by design — recovery happens by resuming
  // from the fenced last-complete epoch, which is exactly phase 2).
  FaultSpec phase1;
  phase1.seed = TestSeed() ^ 0xe005;
  phase1.task_crash_prob = 0.05;
  phase1.max_task_crashes = 1;
  RunCrashResumeScenario("crash", phase1, FaultSpec{});
}

TEST(ExactlyOnceChaosTest, SurvivesQueueStalls) {
  FaultSpec faults;
  faults.seed = TestSeed() ^ 0xe006;
  faults.queue_stall_prob = 0.01;
  faults.queue_stall_micros = 80;
  RunCrashResumeScenario("stalls", faults, faults);
}

TEST(ExactlyOnceChaosTest, SurvivesAckerEventLoss) {
  FaultSpec faults;
  faults.seed = TestSeed() ^ 0xe007;
  faults.acker_loss_prob = 0.01;
  RunCrashResumeScenario("acker_loss", faults, faults);
}

TEST(ExactlyOnceChaosTest, SurvivesEverythingAtOnce) {
  FaultSpec phase1;
  phase1.seed = TestSeed() ^ 0xe008;
  phase1.drop_tuple_prob = 0.01;
  phase1.duplicate_tuple_prob = 0.01;
  phase1.delay_delivery_prob = 0.005;
  phase1.delay_max_micros = 100;
  phase1.bolt_throw_prob = 0.005;
  phase1.task_crash_prob = 0.03;
  phase1.max_task_crashes = 1;
  phase1.queue_stall_prob = 0.005;
  phase1.queue_stall_micros = 60;
  phase1.acker_loss_prob = 0.005;
  phase1.barrier_drop_prob = 0.15;
  phase1.barrier_delay_prob = 0.1;
  phase1.barrier_delay_max_micros = 120;
  FaultSpec phase2 = phase1;
  phase2.seed = TestSeed() ^ 0xe009;  // Different schedule, same mix...
  phase2.task_crash_prob = 0.0;       // ...minus live crashes (see above).
  RunCrashResumeScenario("everything", phase1, phase2);
}

// ------------------------------------------------ barrier exactness

TEST(BarrierExactnessTest, EpochFramesHoldExactEmissionPrefixes) {
  // Single chain, no faults, lazy ack timeout (no spurious replays): the
  // barrier after the e*K-th emission must cut the stream exactly there,
  // so epoch e's count frame is precisely the payloads [0, e*K) and the
  // spout frame's cursor is e*K.
  static constexpr int64_t kN = 100;
  constexpr uint64_t kInterval = 25;
  KvCheckpointStore store;
  auto holder = std::make_shared<CountHolder>();

  TopologyBuilder builder;
  builder.AddSpout("src", []() -> std::unique_ptr<Spout> {
    return std::make_unique<ReplayableSequenceSpout>(kN);
  });
  builder.AddBolt(
      "count",
      [holder]() -> std::unique_ptr<Bolt> {
        return std::make_unique<EpochCountBolt>(holder, /*dedup=*/true);
      },
      1, {{"src", Grouping::Global()}});

  EngineConfig config;
  config.semantics = DeliverySemantics::kExactlyOnce;
  config.checkpoint_store = &store;
  config.epoch_interval_tuples = kInterval;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  EXPECT_EQ(engine.last_complete_epoch(), 4u);
  EXPECT_EQ(engine.epochs_completed(), 4u);
  EXPECT_EQ(engine.epoch_timeouts(), 0u);
  EXPECT_EQ(LastCompleteEpoch(store), 4u);

  for (uint64_t e = 1; e <= 4; e++) {
    std::optional<std::vector<uint8_t>> frame =
        store.Get(EpochTaskKey(e, "count", 0));
    ASSERT_TRUE(frame.has_value()) << "epoch " << e;
    std::map<int64_t, uint64_t> counts;
    DedupLedger ledger;
    ASSERT_TRUE(EpochCountBolt::Decode(*frame, &counts, &ledger).ok());
    ASSERT_EQ(counts.size(), e * kInterval) << "epoch " << e;
    for (uint64_t i = 0; i < e * kInterval; i++) {
      EXPECT_EQ(counts[static_cast<int64_t>(i)], 1u)
          << "epoch " << e << " payload " << i;
    }

    std::optional<std::vector<uint8_t>> spout_frame =
        store.Get(EpochTaskKey(e, "src", 0));
    ASSERT_TRUE(spout_frame.has_value()) << "epoch " << e;
    ByteReader r(*spout_frame);
    uint64_t cursor = 0;
    ASSERT_TRUE(r.GetVarint(&cursor).ok());
    EXPECT_EQ(cursor, e * kInterval) << "epoch " << e;
  }

  std::lock_guard<std::mutex> lock(holder->mu);
  EXPECT_EQ(holder->counts.size(), static_cast<size_t>(kN));
}

// ---------------------------------------- 50-seed determinism torture

struct EpochFingerprint {
  uint64_t last_complete = 0;
  // Frame key -> bytes, plus completion-marker presence per epoch. Missing
  // frames (skipped epochs) are part of the fingerprint too.
  std::map<std::string, std::vector<uint8_t>> frames;

  bool operator==(const EpochFingerprint& other) const {
    return last_complete == other.last_complete && frames == other.frames;
  }
};

/// One at-most-once chain run (src -> relay -> count, width 1 everywhere)
/// under a lossy fault mix including barrier drops. Width 1 keeps every
/// fault site's consultation order schedule-free and the chain hold-free
/// (a single-producer aligner never waits), so the whole epoch history —
/// which epochs completed and every frame's exact bytes — must be a pure
/// function of the seeds.
EpochFingerprint RunDeterminismChain(uint64_t fault_seed) {
  static constexpr int64_t kN = 300;
  constexpr uint64_t kInterval = 32;
  KvCheckpointStore store;
  auto holder = std::make_shared<CountHolder>();

  TopologyBuilder builder;
  builder.AddSpout("src", []() -> std::unique_ptr<Spout> {
    return std::make_unique<ReplayableSequenceSpout>(kN);
  });
  builder.AddBolt(
      "relay",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& t, OutputCollector* out) { out->Emit(t); });
      },
      1, {{"src", Grouping::Global()}});
  builder.AddBolt(
      "count",
      [holder]() -> std::unique_ptr<Bolt> {
        // Dedup off: a DedupLedger's seen-set serializes in hash order, so
        // canonical bytes require it empty — with at-most-once drops the
        // payload sequence has holes and the set would be nonempty.
        return std::make_unique<EpochCountBolt>(holder, /*dedup=*/false);
      },
      1, {{"relay", Grouping::Global()}});

  EngineConfig config;
  config.semantics = DeliverySemantics::kAtMostOnce;
  config.checkpoint_store = &store;
  config.epoch_interval_tuples = kInterval;
  config.telemetry_sample_interval_ms = 0;  // 100 runs: shed the sampler.
  config.faults.seed = fault_seed;
  config.faults.drop_tuple_prob = 0.03;
  config.faults.duplicate_tuple_prob = 0.03;
  config.faults.delay_delivery_prob = 0.01;
  config.faults.delay_max_micros = 50;
  config.faults.bolt_throw_prob = 0.01;
  config.faults.queue_stall_prob = 0.01;
  config.faults.queue_stall_micros = 50;
  config.faults.barrier_drop_prob = 0.1;
  config.faults.barrier_delay_prob = 0.1;
  config.faults.barrier_delay_max_micros = 80;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  EpochFingerprint fp;
  fp.last_complete = LastCompleteEpoch(store);
  for (uint64_t e = 1; e <= kN / kInterval; e++) {
    for (const char* component : {"src", "count"}) {
      const std::string key = EpochTaskKey(e, component, 0);
      std::optional<std::vector<uint8_t>> frame = store.Get(key);
      if (frame.has_value()) fp.frames[key] = std::move(*frame);
    }
    std::optional<std::vector<uint8_t>> marker =
        store.Get(EpochCompleteKey(e));
    if (marker.has_value()) fp.frames[EpochCompleteKey(e)] = *marker;
  }
  return fp;
}

TEST(EpochDeterminismTortureTest, FiftySeedsProduceBitIdenticalFrames) {
  size_t runs_with_complete_epochs = 0;
  for (uint64_t i = 0; i < 50; i++) {
    const uint64_t seed = TestSeed() ^ (0xde7e'0000ULL + i * 0x9e37ULL);
    const EpochFingerprint a = RunDeterminismChain(seed);
    const EpochFingerprint b = RunDeterminismChain(seed);
    EXPECT_EQ(a.last_complete, b.last_complete) << "seed " << seed;
    EXPECT_TRUE(a.frames == b.frames)
        << "seed " << seed << ": " << a.frames.size() << " vs "
        << b.frames.size() << " frames, or differing bytes";
    ASSERT_FALSE(a.frames.empty()) << "seed " << seed;
    if (a.last_complete > 0) runs_with_complete_epochs++;
  }
  // With 10% barrier drops most seeds still complete some epoch; if none
  // did, the fingerprints were vacuously equal and the test proved nothing.
  EXPECT_GT(runs_with_complete_epochs, 25u);
}

// ------------------------------------------- rescale equivalence (N->2N)

struct BlobHolder {
  std::mutex mu;
  std::vector<std::string> blobs;
};

/// src (keyed payloads) -> shard xP (fields on key, key-grouped CM sketch,
/// ledger dedup on the sequence field) -> collect (gathers Finish blobs).
Topology BuildShardTopology(uint32_t parallelism, int64_t limit, int64_t halt,
                            std::shared_ptr<BlobHolder> blobs) {
  TopologyBuilder builder;
  builder.AddSpout("src", [limit, halt]() -> std::unique_ptr<Spout> {
    return std::make_unique<ReplayableSequenceSpout>(
        limit,
        [](int64_t seq) { return Tuple::Of(seq % 37, seq); },
        halt);
  });
  builder.AddBolt(
      "shard",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<KeyGroupedSketchBolt<CountMinSketch>>(
            [] { return CountMinSketch(256, 4); },
            [](CountMinSketch& sketch, const Tuple& t) {
              sketch.Add(static_cast<uint64_t>(t.Int(0)));
            },
            /*key_field=*/0, /*dedup_seq_field=*/1);
      },
      parallelism, {{"src", Grouping::Fields(0)}});
  builder.AddBolt(
      "collect",
      [blobs]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [blobs](const Tuple& t, OutputCollector* out) {
              (void)out;
              std::lock_guard<std::mutex> lock(blobs->mu);
              blobs->blobs.push_back(t.Str(0));
            });
      },
      1, {{"shard", Grouping::Global()}});
  return builder.Build().value();
}

TEST(RescaleEquivalenceTest, GrowUnderLoadMatchesUnshardedBaseline) {
  // Phase 1 runs 2 shards and dies mid-stream; the last complete epoch's
  // shard frames are rescaled 2 -> 4 and phase 2 finishes the stream on 4
  // shards. The merged sketch must equal (bit-for-bit estimates and total
  // count) a single sketch fed every payload exactly once — resharding
  // must neither lose, duplicate, nor misroute any key group.
  static constexpr int64_t kN = 400;
  static constexpr int64_t kHalt = 220;
  KvCheckpointStore store;

  EngineConfig config;
  config.semantics = DeliverySemantics::kExactlyOnce;
  config.checkpoint_store = &store;
  config.epoch_interval_tuples = 40;

  {
    auto ignored = std::make_shared<BlobHolder>();
    TopologyEngine engine(BuildShardTopology(2, kN, kHalt, ignored), config);
    engine.Run();
  }
  const uint64_t resume = LastCompleteEpoch(store);
  ASSERT_GT(resume, 0u) << "no epoch completed before the simulated crash";
  ASSERT_TRUE(RescaleEpochFrames(store, resume, "shard", 2, 4).ok());

  config.resume_from_epoch = resume;
  auto blobs = std::make_shared<BlobHolder>();
  TopologyEngine engine(BuildShardTopology(4, kN, /*halt=*/-1, blobs),
                        config);
  engine.Run();

  std::lock_guard<std::mutex> lock(blobs->mu);
  ASSERT_EQ(blobs->blobs.size(), 4u);
  CountMinSketch merged(256, 4);
  for (const std::string& blob : blobs->blobs) {
    ASSERT_TRUE(
        state::MergeBlob(merged,
                         std::vector<uint8_t>(blob.begin(), blob.end()))
            .ok());
  }

  CountMinSketch baseline(256, 4);
  for (int64_t seq = 0; seq < kN; seq++) {
    baseline.Add(static_cast<uint64_t>(seq % 37));
  }
  EXPECT_EQ(merged.total_count(), baseline.total_count());
  for (uint64_t key = 0; key < 37; key++) {
    EXPECT_EQ(merged.Estimate(key), baseline.Estimate(key)) << "key " << key;
  }
}

}  // namespace
}  // namespace streamlib::platform
