// Record→replay verification suite for the flight recorder (recorder.h)
// and the time-travel replayer (replay.h): the SLFR tuple codec and file
// format round-trip, corruption edges resolve to typed Statuses, replay
// reproduces the recorded run bit-for-bit (counters and sketch state)
// across 100 fault-injected seeds — including a chaos crash-and-restore
// mid-recording — and the debugger surface (breakpoints, stepping, state
// inspection, divergence bisection) behaves as documented.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/random.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"
#include "core/frequency/count_min_sketch.h"
#include "platform/checkpoint.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/fault.h"
#include "platform/recorder.h"
#include "platform/replay.h"
#include "platform/replayable_log.h"
#include "platform/stream_operators.h"
#include "platform/topology.h"
#include "test_seed.h"

namespace streamlib::platform {
namespace {

// Paths include the pid: ctest runs each discovered test as its own
// process, possibly in parallel, and they must not share scratch files.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "replay_test_" + std::to_string(::getpid()) +
         "_" + name;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Deterministic (word, sequence) generator; `diverge_at` swaps in a
// sentinel word at one index to plant a known divergence between runs.
class WordGen {
 public:
  WordGen(uint64_t seed, uint64_t n, int64_t diverge_at = -1)
      : rng_(seed), n_(n), diverge_at_(diverge_at) {}

  std::optional<Tuple> Next() {
    if (i_ >= n_) return std::nullopt;
    const int64_t i = static_cast<int64_t>(i_++);
    std::string word = "w" + std::to_string(rng_.NextBounded(50));
    if (i == diverge_at_) word = "DIVERGENT";
    return Tuple::Of(std::move(word), i);
  }

 private:
  Rng rng_;
  uint64_t n_;
  uint64_t i_ = 0;
  int64_t diverge_at_;
};

// Shared side-state of one pipeline build. Factories capture the
// shared_ptrs, so the parts may go out of scope before the topology.
struct PipelineParts {
  std::shared_ptr<KvCheckpointStore> store =
      std::make_shared<KvCheckpointStore>();
  std::shared_ptr<std::vector<uint8_t>> merged =
      std::make_shared<std::vector<uint8_t>>();
};

// The contract-conformant pipeline every test here replays:
//   src x1 -> relay x1 (shuffle) -> cm x`cm_parallelism` (fields, sketch
//   checkpoints) -> merge x1 (global, captures the merged blob).
// Every run-phase bolt has exactly one producer task, as the replay
// determinism contract requires. With `log` set the spout replays the
// log (at-least-once redelivery included); otherwise it generates
// `n` words from `seed`.
Topology BuildPipeline(uint64_t seed, uint64_t n, PipelineParts* parts,
                       std::shared_ptr<ReplayableLog> log = nullptr,
                       int64_t diverge_at = -1, uint32_t cm_parallelism = 3,
                       uint64_t checkpoint_every = 48) {
  TopologyBuilder builder;
  if (log != nullptr) {
    const uint64_t end = log->Size();
    builder.AddSpout("src", [log, end] {
      return std::make_unique<LogReplaySpout>(log.get(), 0, end);
    });
  } else {
    auto gen = std::make_shared<WordGen>(seed, n, diverge_at);
    builder.AddSpout("src", [gen] {
      return std::make_unique<GeneratorSpout>([gen] { return gen->Next(); });
    });
  }
  builder.AddBolt(
      "relay",
      [] {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& input, OutputCollector* out) { out->Emit(input); });
      },
      1, {{"src", Grouping::Shuffle()}});
  auto store = parts->store;
  builder.AddBolt(
      "cm",
      [store, checkpoint_every] {
        return std::make_unique<SketchBolt<CountMinSketch>>(
            CountMinSketch(512, 4),
            [](CountMinSketch& sketch, const Tuple& input) {
              sketch.Add(input.Str(0));
            },
            FieldKeyBatchUpdate<CountMinSketch>(0),
            SketchCheckpoint{store.get(), "cm", checkpoint_every});
      },
      cm_parallelism, {{"relay", Grouping::Fields(0)}});
  auto merged = parts->merged;
  builder.AddBolt(
      "merge",
      [merged] {
        return std::make_unique<SketchCombinerBolt<CountMinSketch>>(
            CountMinSketch(512, 4),
            [merged](const CountMinSketch& sketch, OutputCollector*) {
              *merged = state::ToBlob(sketch);
            });
      },
      1, {{"cm", Grouping::Global()}});
  Result<Topology> topology = builder.Build();
  STREAMLIB_CHECK_MSG(topology.ok(), "pipeline build failed: %s",
                      topology.status().ToString().c_str());
  return std::move(topology).value();
}

// Records one live run of the pipeline to `path` and returns the parsed
// recording. The run's side effects (final checkpoints, merged blob)
// land in whatever PipelineParts the topology was built with.
RecordedRun RecordRun(const std::string& path, EngineConfig config,
                      Topology topology) {
  Result<std::unique_ptr<RunRecorder>> recorder =
      RunRecorder::Create(path, config, topology);
  STREAMLIB_CHECK_MSG(recorder.ok(), "recorder create failed: %s",
                      recorder.status().ToString().c_str());
  config.recorder = recorder.value().get();
  {
    TopologyEngine engine(std::move(topology), config);
    engine.Run();
  }
  const Status finalized = recorder.value()->Finalize();
  STREAMLIB_CHECK_MSG(finalized.ok(), "finalize failed: %s",
                      finalized.ToString().c_str());
  Result<RecordedRun> run = ReadRecording(path);
  STREAMLIB_CHECK_MSG(run.ok(), "read recording failed: %s",
                      run.status().ToString().c_str());
  return std::move(run).value();
}

// ---------------------------------------------------------- tuple codec

TEST(TupleCodecTest, RoundTripsEveryFieldType) {
  const Tuple original(std::vector<Value>{
      Value{}, Value{true}, Value{false}, Value{int64_t{-42}},
      Value{int64_t{INT64_MIN}}, Value{int64_t{INT64_MAX}}, Value{3.25},
      Value{-0.0}, Value{std::string("hello world")}, Value{std::string()}});
  ByteWriter w;
  EncodeTuple(w, original);
  ByteReader r(w.bytes());
  Tuple decoded;
  const Status status = DecodeTuple(r, &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(decoded.values(), original.values());
}

TEST(TupleCodecTest, RoundTripsEmptyTuple) {
  ByteWriter w;
  EncodeTuple(w, Tuple());
  ByteReader r(w.bytes());
  Tuple decoded;
  ASSERT_TRUE(DecodeTuple(r, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(TupleCodecTest, RejectsUnknownFieldTag) {
  ByteWriter w;
  w.PutVarint(1);  // one field
  w.PutU8(9);      // no such tag
  ByteReader r(w.bytes());
  Tuple decoded;
  EXPECT_EQ(DecodeTuple(r, &decoded).code(), StatusCode::kCorruption);
}

TEST(TupleCodecTest, RejectsTruncatedPayload) {
  ByteWriter w;
  EncodeTuple(w, Tuple::Of(std::string("abcdef"), int64_t{7}));
  std::vector<uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() - 3);
  ByteReader r(bytes);
  Tuple decoded;
  EXPECT_EQ(DecodeTuple(r, &decoded).code(), StatusCode::kCorruption);
}

// ------------------------------------------------------- file round-trip

TEST(RecorderFormatTest, RoundTripsConfigEmissionsAndSummary) {
  const std::string path = TempPath("roundtrip.slfr");
  PipelineParts parts;
  Topology topology = BuildPipeline(1, 4, &parts);

  EngineConfig config;
  config.mode = ExecutionMode::kMultiplexed;
  config.semantics = DeliverySemantics::kAtLeastOnce;
  config.queue_capacity = 77;
  config.seed = 424242;
  config.ack_timeout_seconds = 2.5;
  config.enable_spsc = false;
  config.faults.seed = 99;
  config.faults.drop_tuple_prob = 0.125;
  config.faults.max_task_crashes = 3;

  Result<std::unique_ptr<RunRecorder>> recorder =
      RunRecorder::Create(path, config, topology);
  ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
  recorder.value()->RecordEmission(0, Tuple::Of(std::string("alpha"),
                                                int64_t{1}));
  recorder.value()->RecordEmission(0, Tuple::Of(std::string("beta"),
                                                int64_t{2}));
  RunSummary summary;
  summary.completed_roots = 2;
  summary.faults_by_kind[static_cast<size_t>(FaultKind::kDropTuple)] = 5;
  summary.tasks.resize(6);
  summary.tasks[0].emitted = 2;
  recorder.value()->SetSummary(summary);
  ASSERT_TRUE(recorder.value()->Finalize().ok());
  EXPECT_EQ(recorder.value()->records_written(), 2u);

  Result<RecordedRun> run = ReadRecording(path);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const RecordedRun& r = run.value();
  EXPECT_EQ(r.config.mode, ExecutionMode::kMultiplexed);
  EXPECT_EQ(r.config.semantics, DeliverySemantics::kAtLeastOnce);
  EXPECT_EQ(r.config.queue_capacity, 77u);
  EXPECT_EQ(r.config.seed, 424242u);
  EXPECT_EQ(r.config.ack_timeout_seconds, 2.5);
  EXPECT_FALSE(r.config.enable_spsc);
  EXPECT_EQ(r.config.faults.seed, 99u);
  EXPECT_EQ(r.config.faults.drop_tuple_prob, 0.125);
  EXPECT_EQ(r.config.faults.max_task_crashes, 3u);
  EXPECT_EQ(r.config.recorder, nullptr);

  ASSERT_EQ(r.emissions.size(), 2u);
  EXPECT_EQ(r.emissions[0].spout_task, 0u);
  EXPECT_EQ(r.emissions[0].tuple.Str(0), "alpha");
  EXPECT_EQ(r.emissions[1].tuple.Int(1), 2);

  ASSERT_TRUE(r.has_summary);
  EXPECT_EQ(r.summary.completed_roots, 2u);
  EXPECT_EQ(
      r.summary.faults_by_kind[static_cast<size_t>(FaultKind::kDropTuple)],
      5u);
  ASSERT_EQ(r.summary.tasks.size(), 6u);
  EXPECT_EQ(r.summary.tasks[0].emitted, 2u);

  EXPECT_TRUE(MatchesTopology(r.fingerprint, topology).ok());
  PipelineParts other_parts;
  const Topology narrower =
      BuildPipeline(1, 4, &other_parts, nullptr, -1, /*cm_parallelism=*/2);
  EXPECT_EQ(MatchesTopology(r.fingerprint, narrower).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(RecorderFormatTest, TargetAppearsOnlyOnFinalize) {
  const std::string path = TempPath("atomic.slfr");
  std::remove(path.c_str());
  PipelineParts parts;
  EngineConfig config;
  Result<std::unique_ptr<RunRecorder>> recorder =
      RunRecorder::Create(path, config, BuildPipeline(1, 4, &parts));
  ASSERT_TRUE(recorder.ok());
  recorder.value()->RecordEmission(0, Tuple::Of(int64_t{1}));
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(FileExists(path + ".tmp"));
  ASSERT_TRUE(recorder.value()->Finalize().ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_TRUE(recorder.value()->Finalize().ok());  // Idempotent.
  std::remove(path.c_str());
}

// ------------------------------------------------------ corruption edges

class RecordingCorruptionTest : public ::testing::Test {
 protected:
  // One pristine recording all mutation cases start from.
  void SetUp() override {
    path_ = TempPath("corrupt.slfr");
    PipelineParts parts;
    EngineConfig config;
    Result<std::unique_ptr<RunRecorder>> recorder =
        RunRecorder::Create(path_, config, BuildPipeline(1, 4, &parts));
    ASSERT_TRUE(recorder.ok());
    recorder.value()->RecordEmission(0, Tuple::Of(std::string("alpha"),
                                                  int64_t{1}));
    recorder.value()->RecordEmission(0, Tuple::Of(std::string("beta"),
                                                  int64_t{2}));
    ASSERT_TRUE(recorder.value()->Finalize().ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 40u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  StatusCode ReadCodeAfter(const std::vector<uint8_t>& mutated) {
    WriteFileBytes(path_, mutated);
    return ReadRecording(path_).status().code();
  }

  std::string path_;
  std::vector<uint8_t> bytes_;
};

TEST_F(RecordingCorruptionTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadRecording(TempPath("nonexistent.slfr")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(RecordingCorruptionTest, ZeroLengthFileIsCorruption) {
  EXPECT_EQ(ReadCodeAfter({}), StatusCode::kCorruption);
}

TEST_F(RecordingCorruptionTest, BadMagicIsCorruption) {
  std::vector<uint8_t> mutated = bytes_;
  mutated[0] ^= 0xff;
  EXPECT_EQ(ReadCodeAfter(mutated), StatusCode::kCorruption);
}

TEST_F(RecordingCorruptionTest, UnsupportedVersionIsInvalidArgument) {
  std::vector<uint8_t> mutated = bytes_;
  mutated[4] = 99;  // Version field follows the u32 magic.
  EXPECT_EQ(ReadCodeAfter(mutated), StatusCode::kInvalidArgument);
}

TEST_F(RecordingCorruptionTest, TruncatedSegmentIsCorruption) {
  // Chop from several depths: mid end-segment, mid records payload, and
  // right after the file header (no meta segment at all).
  for (const size_t keep :
       {bytes_.size() - 5, bytes_.size() / 2, size_t{8}, size_t{9}}) {
    std::vector<uint8_t> mutated(bytes_.begin(),
                                 bytes_.begin() + static_cast<long>(keep));
    EXPECT_EQ(ReadCodeAfter(mutated), StatusCode::kCorruption)
        << "kept " << keep << " of " << bytes_.size() << " bytes";
  }
}

TEST_F(RecordingCorruptionTest, CrcMismatchIsCorruption) {
  // Flip one payload byte in the meta segment (header is 8 bytes, the
  // segment frame is 9, so offset 20 sits inside the meta payload).
  std::vector<uint8_t> mutated = bytes_;
  mutated[20] ^= 0x01;
  EXPECT_EQ(ReadCodeAfter(mutated), StatusCode::kCorruption);
}

TEST_F(RecordingCorruptionTest, TrailingGarbageIsCorruption) {
  std::vector<uint8_t> mutated = bytes_;
  mutated.insert(mutated.end(), {0xde, 0xad, 0xbe, 0xef});
  EXPECT_EQ(ReadCodeAfter(mutated), StatusCode::kCorruption);
}

// ------------------------------------------------- record/replay torture

EngineConfig TortureConfig(uint64_t seed, uint64_t k) {
  EngineConfig config;
  config.seed = seed;
  config.mode = (k % 4 < 2) ? ExecutionMode::kDedicated
                            : ExecutionMode::kMultiplexed;
  config.multiplexed_threads = 2;
  config.semantics = (k % 2 == 0) ? DeliverySemantics::kAtLeastOnce
                                  : DeliverySemantics::kAtMostOnce;
  // Far above the microseconds a 160-tuple tree needs, so only
  // structurally unresolvable (fault-hit) trees time out — the contract's
  // requirement — while failed roots still resolve quickly.
  config.ack_timeout_seconds = 0.1;
  config.telemetry_sample_interval_ms = 0;
  // Executor-site faults are armed, so the contract requires per-tuple
  // batches; bolt-batch fusing stays legal because bolt_throw is the only
  // executor probability (the draw order within a tuple can't differ).
  config.execute_batch_size = 1;
  config.enable_bolt_batch = (k % 2 == 0);
  config.faults.seed = seed ^ 0xfau;
  config.faults.drop_tuple_prob = 0.02;
  config.faults.duplicate_tuple_prob = 0.02;
  config.faults.delay_delivery_prob = 0.01;
  config.faults.delay_max_micros = 20;
  config.faults.bolt_throw_prob = 0.01;
  if (k % 3 == 0) {
    config.faults.queue_stall_prob = 0.02;
    config.faults.queue_stall_micros = 30;
  }
  return config;
}

// The tentpole acceptance: across 100 seeds spanning both execution
// modes, both delivery semantics, generator and log-replay spouts, and a
// live fault mix (drops/dups/delays/throws/stalls), replaying the
// recording reproduces the recorded run exactly — every per-task counter,
// every per-kind fault count, and every sketch's state blob, byte for
// byte.
TEST(RecordReplayTortureTest, HundredSeedsReplayBitIdentical) {
  const uint64_t base = TestSeed();
  const uint64_t n = 160;
  for (uint64_t k = 0; k < 100; k++) {
    SCOPED_TRACE("seed index " + std::to_string(k));
    const uint64_t seed = base ^ (k * 0x9e3779b9u + 1);
    const std::string path = TempPath("torture.slfr");

    // Every tenth run replays a prefilled log through LogReplaySpout,
    // exercising at-least-once redelivery emissions in the recording.
    // Only on at-least-once seeds (k even): the log spout blocks on acks
    // for its pending roots, which at-most-once mode never delivers.
    std::shared_ptr<ReplayableLog> log;
    if (k % 10 == 0) {
      log = std::make_shared<ReplayableLog>();
      WordGen gen(seed, n);
      while (std::optional<Tuple> tuple = gen.Next()) {
        log->Append(*std::move(tuple));
      }
    }

    const EngineConfig config = TortureConfig(seed, k);
    PipelineParts live;
    const RecordedRun run =
        RecordRun(path, config, BuildPipeline(seed, n, &live, log));
    ASSERT_TRUE(run.has_summary);
    ASSERT_FALSE(run.summary.tasks.empty());
    EXPECT_EQ(run.emissions.size(), run.summary.tasks[0].emitted);

    PipelineParts replayed;
    ReplayEngine replay(BuildPipeline(seed, n, &replayed, log), run);
    const Status prepared = replay.Prepare();
    ASSERT_TRUE(prepared.ok()) << prepared.ToString();
    EXPECT_EQ(replay.Run(), ReplayStop::kEnd);

    const Status verdict = replay.CompareWithRecorded();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();

    // Sketch state, not just counters: the merged result and every
    // shard's final blob must match the live run's bytes.
    EXPECT_FALSE(live.merged->empty());
    EXPECT_EQ(*live.merged, *replayed.merged);
    for (uint32_t shard = 0; shard < 3; shard++) {
      Result<std::vector<uint8_t>> blob = replay.BoltStateBlob("cm", shard);
      ASSERT_TRUE(blob.ok()) << blob.status().ToString();
      Result<std::vector<uint8_t>> live_blob =
          live.store->Fetch("cm:" + std::to_string(shard));
      ASSERT_TRUE(live_blob.ok()) << live_blob.status().ToString();
      EXPECT_EQ(blob.value(), live_blob.value());
    }
    std::remove(path.c_str());
  }
}

// Chaos crash-and-restore mid-recording: a bolt task crashes (fault
// budget > 0), restarts from its factory, and restores its sketch from
// the checkpoint store — and the replay, maintaining its own store at the
// same cadence, walks through the identical crash/restore and still
// reproduces counters and state exactly.
TEST(RecordReplayChaosTest, CrashAndRestoreMidRecordingReplaysIdentically) {
  const uint64_t n = 400;
  bool crash_covered = false;
  for (uint64_t attempt = 0; attempt < 8 && !crash_covered; attempt++) {
    SCOPED_TRACE("attempt " + std::to_string(attempt));
    const uint64_t seed = TestSeed() ^ (0xc0ffee + attempt * 1315423911ull);
    const std::string path = TempPath("chaos.slfr");

    EngineConfig config;
    config.seed = seed;
    config.semantics = DeliverySemantics::kAtLeastOnce;
    config.ack_timeout_seconds = 0.15;
    config.telemetry_sample_interval_ms = 0;
    // Several executor-site probabilities at once: the contract then
    // demands the scalar per-tuple path (fused batching would consult the
    // crash draw before the throw draw).
    config.execute_batch_size = 1;
    config.enable_bolt_batch = false;
    config.faults.seed = seed ^ 0x5eedu;
    // The crash budget must never bind: an exhausted budget is allocated
    // to concurrently-firing sites in wall-clock order, which a
    // sequential replay cannot reproduce (the contract's condition on
    // task_crash). ~4 crash draws fire over these 400 tuples.
    config.faults.task_crash_prob = 0.005;
    config.faults.max_task_crashes = 64;
    config.faults.bolt_throw_prob = 0.005;
    config.faults.drop_tuple_prob = 0.01;
    config.faults.acker_loss_prob = 0.005;

    PipelineParts live;
    const RecordedRun run =
        RecordRun(path, config,
                  BuildPipeline(seed, n, &live, nullptr, -1, 3,
                                /*checkpoint_every=*/32));
    ASSERT_TRUE(run.has_summary);
    const uint64_t crashes =
        run.summary.faults_by_kind[static_cast<size_t>(FaultKind::kTaskCrash)];
    if (crashes == 0) {
      std::remove(path.c_str());
      continue;  // This seed never crashed; try the next.
    }
    crash_covered = true;

    PipelineParts replayed;
    ReplayEngine replay(
        BuildPipeline(seed, n, &replayed, nullptr, -1, 3, 32), run);
    ASSERT_TRUE(replay.Prepare().ok());
    EXPECT_EQ(replay.Run(), ReplayStop::kEnd);
    const Status verdict = replay.CompareWithRecorded();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    EXPECT_EQ(*live.merged, *replayed.merged);
    for (uint32_t shard = 0; shard < 3; shard++) {
      Result<std::vector<uint8_t>> blob = replay.BoltStateBlob("cm", shard);
      ASSERT_TRUE(blob.ok());
      Result<std::vector<uint8_t>> live_blob =
          live.store->Fetch("cm:" + std::to_string(shard));
      ASSERT_TRUE(live_blob.ok());
      EXPECT_EQ(blob.value(), live_blob.value());
    }
    std::remove(path.c_str());
  }
  EXPECT_TRUE(crash_covered) << "no seed produced a mid-run task crash";
}

// --------------------------------------------- breakpoints and stepping

// A quiet (no faults, at-most-once) recording for the debugger-surface
// tests. Global task indices: src=0, relay=1, cm=2..4, merge=5.
RecordedRun QuietRecording(uint64_t seed, uint64_t n, PipelineParts* live) {
  EngineConfig config;
  config.telemetry_sample_interval_ms = 0;
  return RecordRun(TempPath("quiet.slfr"), config,
                   BuildPipeline(seed, n, live));
}

TEST(ReplayBreakpointTest, TaskTuplePausesBeforeTheNthInput) {
  PipelineParts live;
  const RecordedRun run = QuietRecording(TestSeed() ^ 0xb1, 30, &live);
  PipelineParts replayed;
  ReplayEngine replay(BuildPipeline(0, 0, &replayed), run);
  ASSERT_TRUE(replay.Prepare().ok());
  replay.AddBreakpoint(
      Breakpoint{Breakpoint::Kind::kTaskTuple, /*task=*/1, /*count=*/5});
  ASSERT_EQ(replay.Run(), ReplayStop::kBreakpoint);
  EXPECT_EQ(replay.inputs_seen(1), 4u);  // Paused *before* input 5.
  EXPECT_FALSE(replay.Done());
  EXPECT_GE(replay.pending_deliveries(), 1u);
  // Resume past the (persistent but now unmatchable) breakpoint.
  EXPECT_EQ(replay.Run(), ReplayStop::kEnd);
  EXPECT_TRUE(replay.Done());
  EXPECT_EQ(replay.inputs_seen(1), 30u);
  EXPECT_TRUE(replay.CompareWithRecorded().ok());
}

TEST(ReplayBreakpointTest, FirstFaultPausesOnceThenRunsToEnd) {
  const uint64_t seed = TestSeed() ^ 0xf0;
  EngineConfig config;
  config.telemetry_sample_interval_ms = 0;
  config.execute_batch_size = 1;
  config.faults.seed = seed ^ 1;
  config.faults.drop_tuple_prob = 0.25;
  PipelineParts live;
  const RecordedRun run = RecordRun(TempPath("faulty.slfr"), config,
                                    BuildPipeline(seed, 40, &live));

  PipelineParts replayed;
  ReplayEngine replay(BuildPipeline(0, 0, &replayed), run);
  ASSERT_TRUE(replay.Prepare().ok());
  replay.AddBreakpoint(Breakpoint{Breakpoint::Kind::kFirstFault, 0, 0});
  ASSERT_EQ(replay.Run(), ReplayStop::kBreakpoint);
  ASSERT_NE(replay.fault_plan(), nullptr);
  EXPECT_GE(replay.fault_plan()->total_injected(), 1u);
  EXPECT_FALSE(replay.Done());
  EXPECT_EQ(replay.Run(), ReplayStop::kEnd);  // One-shot: never re-fires.
  EXPECT_TRUE(replay.CompareWithRecorded().ok());
}

TEST(ReplayBreakpointTest, CheckpointPausesAfterKPuts) {
  PipelineParts live;
  const RecordedRun run = QuietRecording(TestSeed() ^ 0xcc, 200, &live);
  PipelineParts replayed;
  ReplayOptions options;
  options.checkpoint_store = replayed.store.get();
  ReplayEngine replay(BuildPipeline(0, 0, &replayed), run, options);
  ASSERT_TRUE(replay.Prepare().ok());
  replay.AddBreakpoint(
      Breakpoint{Breakpoint::Kind::kCheckpoint, 0, /*count=*/2});
  ASSERT_EQ(replay.Run(), ReplayStop::kBreakpoint);
  EXPECT_GE(replayed.store->TotalPuts(), 2u);
  EXPECT_FALSE(replay.Done());
  EXPECT_EQ(replay.Run(), ReplayStop::kEnd);
}

TEST(ReplayStepTest, StepsOneUnitAtATimeToTheEnd) {
  PipelineParts live;
  const RecordedRun run = QuietRecording(TestSeed() ^ 0x57e9, 10, &live);
  PipelineParts replayed;
  ReplayEngine replay(BuildPipeline(0, 0, &replayed), run);
  ASSERT_TRUE(replay.Prepare().ok());
  uint64_t steps = 0;
  while (replay.Step() == ReplayStop::kStep) {
    steps++;
    ASSERT_LT(steps, 10000u) << "replay never terminated";
  }
  // At minimum each of the 10 emissions plus each delivery at relay and
  // cm is its own unit.
  EXPECT_GE(steps, 30u);
  EXPECT_TRUE(replay.Done());
  EXPECT_EQ(replay.emissions_processed(), 10u);
  EXPECT_EQ(replay.Step(), ReplayStop::kEnd);  // Idempotent at the end.
  EXPECT_TRUE(replay.CompareWithRecorded().ok());
}

TEST(ReplayStepTest, RunToEmissionHoldsBetweenTreesAndClamps) {
  PipelineParts live;
  const RecordedRun run = QuietRecording(TestSeed() ^ 0xa7, 20, &live);
  PipelineParts replayed;
  ReplayEngine replay(BuildPipeline(0, 0, &replayed), run);
  ASSERT_TRUE(replay.Prepare().ok());
  ASSERT_TRUE(replay.RunToEmission(3).ok());
  EXPECT_EQ(replay.emissions_processed(), 3u);
  EXPECT_EQ(replay.pending_deliveries(), 0u);  // Tree fully drained.
  EXPECT_FALSE(replay.Done());                 // Finish pass not run.
  ASSERT_TRUE(replay.RunToEmission(1u << 30).ok());  // Clamps to length.
  EXPECT_EQ(replay.emissions_processed(), replay.total_emissions());
  EXPECT_FALSE(replay.Done());
  EXPECT_EQ(replay.Run(), ReplayStop::kEnd);
  EXPECT_TRUE(replay.Done());
}

TEST(ReplayInspectionTest, BoltStateBlobReportsTypedErrors) {
  PipelineParts live;
  const RecordedRun run = QuietRecording(TestSeed() ^ 0x1b, 10, &live);
  PipelineParts replayed;
  ReplayEngine replay(BuildPipeline(0, 0, &replayed), run);
  ASSERT_TRUE(replay.Prepare().ok());
  EXPECT_EQ(replay.BoltStateBlob("nosuch", 0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(replay.BoltStateBlob("cm", 9).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(replay.BoltStateBlob("src", 0).status().code(),
            StatusCode::kInvalidArgument);
  // FunctionBolt exposes no StateBlob.
  EXPECT_EQ(replay.BoltStateBlob("relay", 0).status().code(),
            StatusCode::kUnimplemented);
  EXPECT_TRUE(replay.BoltStateBlob("cm", 0).ok());
  EXPECT_FALSE(replay.TaskStateBlob(0).has_value());  // Spout.
  EXPECT_TRUE(replay.TaskStateBlob(2).has_value());   // cm shard 0.
}

TEST(ReplayInspectionTest, PrepareRejectsMismatchedTopology) {
  PipelineParts live;
  const RecordedRun run = QuietRecording(TestSeed() ^ 0x33, 10, &live);
  PipelineParts replayed;
  ReplayEngine replay(
      BuildPipeline(0, 0, &replayed, nullptr, -1, /*cm_parallelism=*/2), run);
  EXPECT_EQ(replay.Prepare().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------- divergence bisection

TEST(DivergenceBisectTest, SelfComparisonFindsNoDivergence) {
  const uint64_t seed = TestSeed() ^ 0xb15ec7;
  PipelineParts live;
  const RecordedRun run = QuietRecording(seed, 60, &live);
  const auto make_topology = [] {
    PipelineParts parts;  // Factories keep the stores alive.
    return BuildPipeline(0, 0, &parts);
  };
  Result<std::optional<uint64_t>> result = FindFirstDivergence(
      ReplayTarget{make_topology, &run}, ReplayTarget{make_topology, &run});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().has_value());
}

TEST(DivergenceBisectTest, FindsThePlantedDivergenceIndex) {
  const uint64_t seed = TestSeed() ^ 0xd1f;
  const uint64_t n = 120;
  const int64_t planted = 37;
  EngineConfig config;
  config.telemetry_sample_interval_ms = 0;

  PipelineParts live_a;
  const RecordedRun run_a = RecordRun(TempPath("bisect_a.slfr"), config,
                                      BuildPipeline(seed, n, &live_a));
  PipelineParts live_b;
  const RecordedRun run_b =
      RecordRun(TempPath("bisect_b.slfr"), config,
                BuildPipeline(seed, n, &live_b, nullptr, planted));
  ASSERT_EQ(run_a.emissions.size(), n);
  ASSERT_EQ(run_b.emissions.size(), n);

  const auto make_topology = [] {
    PipelineParts parts;
    return BuildPipeline(0, 0, &parts);
  };
  Result<std::optional<uint64_t>> result = FindFirstDivergence(
      ReplayTarget{make_topology, &run_a}, ReplayTarget{make_topology, &run_b});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.value().has_value());
  EXPECT_EQ(*result.value(), static_cast<uint64_t>(planted));
}

TEST(DivergenceBisectTest, StrictPrefixReportsTheCommonLength) {
  const uint64_t seed = TestSeed() ^ 0x9ef;
  EngineConfig config;
  config.telemetry_sample_interval_ms = 0;
  PipelineParts live_short;
  const RecordedRun run_short = RecordRun(
      TempPath("prefix_a.slfr"), config, BuildPipeline(seed, 60, &live_short));
  PipelineParts live_long;
  const RecordedRun run_long = RecordRun(
      TempPath("prefix_b.slfr"), config, BuildPipeline(seed, 100, &live_long));
  const auto make_topology = [] {
    PipelineParts parts;
    return BuildPipeline(0, 0, &parts);
  };
  Result<std::optional<uint64_t>> result =
      FindFirstDivergence(ReplayTarget{make_topology, &run_short},
                          ReplayTarget{make_topology, &run_long});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.value().has_value());
  EXPECT_EQ(*result.value(), 60u);
}

// ------------------------------------------- log batching and telemetry

TEST(ReplayableLogBatchTest, ReadBatchMatchesScalarReads) {
  ReplayableLog log;
  for (int64_t i = 0; i < 10; i++) log.Append(Tuple::Of(i));

  const std::vector<Tuple> middle = log.ReadBatch(2, 5);
  ASSERT_EQ(middle.size(), 5u);
  for (size_t i = 0; i < middle.size(); i++) {
    EXPECT_EQ(middle[i].values(),
              log.Read(2 + i)->values());
  }
  EXPECT_EQ(log.ReadBatch(7, 100).size(), 3u);  // Clamped at the tail.
  EXPECT_TRUE(log.ReadBatch(10, 4).empty());    // Past the end.
  EXPECT_TRUE(log.ReadBatch(500, 4).empty());
  EXPECT_EQ(log.ReadBatch(0, 0).size(), 0u);
}

TEST(ReplayableLogBatchTest, PrefetchingSpoutDeliversEveryOffsetInOrder) {
  // 300 tuples forces several 64-tuple prefetch refills, including a
  // short final one.
  auto log = std::make_shared<ReplayableLog>();
  for (int64_t i = 0; i < 300; i++) {
    std::string key = "k";  // Built up to dodge a GCC 12 -Wrestrict
    key += std::to_string(i % 7);  // false positive on "k" + to_string().
    log->Append(Tuple::Of(std::move(key), i));
  }
  auto sink = std::make_shared<TupleSink>();
  TopologyBuilder builder;
  builder.AddSpout("src", [log] {
    return std::make_unique<LogReplaySpout>(log.get(), 0, log->Size());
  });
  builder.AddBolt(
      "sink", [sink] { return std::make_unique<SinkBolt>(sink.get()); }, 1,
      {{"src", Grouping::Global()}});
  Result<Topology> topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  EngineConfig config;
  config.telemetry_sample_interval_ms = 0;
  // The log spout waits for acks on its pending roots, so it needs the
  // at-least-once acker to make progress.
  config.semantics = DeliverySemantics::kAtLeastOnce;
  TopologyEngine engine(std::move(topology).value(), config);
  engine.Run();
  const std::vector<Tuple> seen = sink->Snapshot();
  ASSERT_EQ(seen.size(), 300u);
  for (size_t i = 0; i < seen.size(); i++) {
    EXPECT_EQ(seen[i].values(), log->Read(i)->values());
  }
}

TEST(RecorderTelemetryTest, ReportCarriesTheRecordingSection) {
  const std::string path = TempPath("telemetry.slfr");
  const uint64_t seed = TestSeed() ^ 0x7e1e;
  PipelineParts parts;
  Topology topology = BuildPipeline(seed, 50, &parts);
  EngineConfig config;
  config.telemetry_sample_interval_ms = 0;
  Result<std::unique_ptr<RunRecorder>> recorder =
      RunRecorder::Create(path, config, topology);
  ASSERT_TRUE(recorder.ok());
  config.recorder = recorder.value().get();
  TopologyEngine engine(std::move(topology), config);
  engine.Run();

  const TelemetryReport report = engine.telemetry().BuildReport();
  EXPECT_TRUE(report.recording.enabled);
  EXPECT_EQ(report.recording.path, path);
  EXPECT_EQ(report.recording.records, 50u);
  EXPECT_GT(report.recording.bytes, 0u);
  EXPECT_EQ(report.recording.dropped, 0u);
  std::ostringstream json;
  report.WriteJson(json);
  EXPECT_NE(json.str().find("\"recording\": {\"enabled\": true"),
            std::string::npos);

  ASSERT_TRUE(recorder.value()->Finalize().ok());
  std::remove(path.c_str());
}

TEST(RecorderTelemetryTest, ReportWithoutRecorderIsDisabled) {
  PipelineParts parts;
  EngineConfig config;
  config.telemetry_sample_interval_ms = 0;
  TopologyEngine engine(BuildPipeline(TestSeed() ^ 0x0ff, 20, &parts), config);
  engine.Run();
  const TelemetryReport report = engine.telemetry().BuildReport();
  EXPECT_FALSE(report.recording.enabled);
  std::ostringstream json;
  report.WriteJson(json);
  EXPECT_NE(json.str().find("\"recording\": {\"enabled\": false"),
            std::string::npos);
}

}  // namespace
}  // namespace streamlib::platform
