// Chaos verification suite for the deterministic fault injector: seeded
// replay of fault schedules, at-least-once delivery under drops/dups/
// throws/crashes, exactly-once *state* via checkpoint-then-ack across an
// injected crash-restart, checkpoint restore-path edge cases, and the
// fault counters' telemetry surface.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos_util.h"
#include "common/state.h"
#include "core/frequency/count_min_sketch.h"
#include "platform/checkpoint.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/epoch.h"
#include "platform/fault.h"
#include "platform/stream_operators.h"
#include "platform/topology.h"
#include "test_seed.h"

namespace streamlib::platform {
namespace {

// ------------------------------------------------------ config validation

TEST(EngineConfigValidationTest, RejectsNonPositiveAckTimeout) {
  // The timeout knob must be sane under *both* semantics — a bad value
  // must not hide behind at-most-once mode.
  for (const DeliverySemantics semantics :
       {DeliverySemantics::kAtMostOnce, DeliverySemantics::kAtLeastOnce}) {
    EngineConfig config;
    config.semantics = semantics;
    config.ack_timeout_seconds = 0.0;
    EXPECT_FALSE(config.Validate().ok());
    config.ack_timeout_seconds = -1.5;
    EXPECT_FALSE(config.Validate().ok());
    config.ack_timeout_seconds = std::nan("");
    EXPECT_FALSE(config.Validate().ok());
    config.ack_timeout_seconds = 5.0;
    EXPECT_TRUE(config.Validate().ok());
  }
}

TEST(EngineConfigValidationDeathTest, RunAbortsOnNonPositiveAckTimeout) {
  TopologyBuilder builder;
  builder.AddSpout("src", []() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        []() -> std::optional<Tuple> { return std::nullopt; });
  });
  EngineConfig config;
  config.ack_timeout_seconds = 0.0;
  TopologyEngine engine(builder.Build().value(), config);
  EXPECT_DEATH(engine.Run(), "ack_timeout_seconds");
}

TEST(FaultSpecValidationTest, RejectsOutOfRangeProbabilities) {
  FaultSpec spec;
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_FALSE(spec.Enabled());  // All-zero default: injection off.

  spec.drop_tuple_prob = 1.5;
  EXPECT_FALSE(spec.Validate().ok());
  spec.drop_tuple_prob = -0.1;
  EXPECT_FALSE(spec.Validate().ok());
  spec.drop_tuple_prob = std::nan("");
  EXPECT_FALSE(spec.Validate().ok());
  spec.drop_tuple_prob = 0.5;
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_TRUE(spec.Enabled());
}

// --------------------------------------------------- deterministic replay

struct ChaosRunResult {
  std::array<uint64_t, kNumFaultKinds> injected{};
  uint64_t total_injected = 0;
  uint64_t sink_count = 0;
};

/// One at-most-once chain run (src -> relay -> sink, parallelism 1) under
/// `spec`. With one task per component every injection site is consulted a
/// deterministic number of times — no acker, no replays, no timeout races —
/// so two runs with the same spec must produce identical fault schedules.
ChaosRunResult RunAtMostOnceChain(const FaultSpec& spec, uint64_t n,
                                  ExecutionMode mode) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  auto sunk = std::make_shared<std::atomic<uint64_t>>(0);
  TopologyBuilder builder;
  builder.AddSpout("src", [counter, n]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter, n]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= n) return std::nullopt;
          return Tuple::Of(static_cast<int64_t>(i));
        });
  });
  builder.AddBolt(
      "relay",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& t, OutputCollector* out) { out->Emit(t); });
      },
      1, {{"src", Grouping::Shuffle()}});
  builder.AddBolt(
      "sink",
      [sunk]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [sunk](const Tuple&, OutputCollector*) {
              sunk->fetch_add(1, std::memory_order_relaxed);
            });
      },
      1, {{"relay", Grouping::Global()}});

  EngineConfig config;
  config.mode = mode;
  config.semantics = DeliverySemantics::kAtMostOnce;
  config.faults = spec;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  ChaosRunResult result;
  result.injected = engine.fault_plan()->Snapshot();
  result.total_injected = engine.fault_plan()->total_injected();
  result.sink_count = sunk->load();
  return result;
}

TEST(FaultDeterminismTest, SeededReplayProducesIdenticalFaultSchedule) {
  FaultSpec spec;
  spec.seed = TestSeed() ^ 0xfa17;
  spec.drop_tuple_prob = 0.02;
  spec.duplicate_tuple_prob = 0.02;
  spec.delay_delivery_prob = 0.005;
  spec.delay_max_micros = 30;
  spec.bolt_throw_prob = 0.01;
  spec.queue_stall_prob = 0.01;
  spec.queue_stall_micros = 30;
  // Crash injection is excluded on purpose: a crash discards the *rest of
  // the popped batch*, and batch boundaries depend on thread timing, so
  // downstream consultation counts would no longer be schedule-free.

  const ChaosRunResult a = RunAtMostOnceChain(spec, 4000,
                                              ExecutionMode::kDedicated);
  const ChaosRunResult b = RunAtMostOnceChain(spec, 4000,
                                              ExecutionMode::kDedicated);

  EXPECT_GT(a.total_injected, 0u);
  EXPECT_GT(a.injected[static_cast<size_t>(FaultKind::kDropTuple)], 0u);
  EXPECT_GT(a.injected[static_cast<size_t>(FaultKind::kDuplicateTuple)], 0u);
  EXPECT_GT(a.injected[static_cast<size_t>(FaultKind::kBoltThrow)], 0u);
  EXPECT_GT(a.injected[static_cast<size_t>(FaultKind::kQueueStall)], 0u);
  for (size_t k = 0; k < kNumFaultKinds; k++) {
    EXPECT_EQ(a.injected[k], b.injected[k])
        << FaultKindName(static_cast<FaultKind>(k));
  }
  EXPECT_EQ(a.sink_count, b.sink_count);
  // And a different seed must produce a different schedule (astronomically
  // unlikely to collide across four active sites).
  FaultSpec other = spec;
  other.seed = spec.seed + 1;
  const ChaosRunResult c = RunAtMostOnceChain(other, 4000,
                                              ExecutionMode::kDedicated);
  EXPECT_NE(a.injected, c.injected);
}

// ------------------------------------------- at-least-once under chaos mix

/// The acceptance mix: drops, duplicates, bolt throws, acker losses, and a
/// one-crash budget, against a replaying spout. Returns the per-payload
/// delivery counts observed by the (dedup-free) sink.
void RunAtLeastOnceChaos(ExecutionMode mode, uint64_t seed_salt) {
  constexpr int64_t kN = 250;
  auto state = std::make_shared<ReplayState>(kN);
  auto delivered = std::make_shared<std::atomic<uint64_t>>(0);

  TopologyBuilder builder;
  builder.AddSpout("src", [state]() -> std::unique_ptr<Spout> {
    return std::make_unique<ReplaySpout>(state);
  });
  builder.AddBolt(
      "relay",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& t, OutputCollector* out) { out->Emit(t); });
      },
      2, {{"src", Grouping::Shuffle()}});
  builder.AddBolt(
      "sink",
      [delivered]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [delivered](const Tuple&, OutputCollector*) {
              delivered->fetch_add(1, std::memory_order_relaxed);
            });
      },
      2, {{"relay", Grouping::Fields(0)}});

  EngineConfig config;
  config.mode = mode;
  config.semantics = DeliverySemantics::kAtLeastOnce;
  config.ack_timeout_seconds = 0.15;  // Fast replay rounds.
  config.faults.seed = TestSeed() ^ seed_salt;
  config.faults.drop_tuple_prob = 0.01;
  config.faults.duplicate_tuple_prob = 0.01;
  config.faults.bolt_throw_prob = 0.005;
  config.faults.task_crash_prob = 0.02;
  config.faults.max_task_crashes = 1;
  config.faults.acker_loss_prob = 0.005;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  // Termination alone proves no root was lost forever (the spout only ends
  // the stream once every payload is acked); now check the books.
  EXPECT_EQ(state->acked, static_cast<uint64_t>(kN));
  EXPECT_TRUE(state->pending.empty());
  EXPECT_TRUE(state->inflight.empty());
  EXPECT_EQ(engine.completed_roots(), state->acked);
  EXPECT_EQ(engine.failed_roots(), state->failed);
  // Every payload reached the sink at least once; with injected drops and
  // replays the total can exceed kN but can never fall short.
  EXPECT_GE(delivered->load(), static_cast<uint64_t>(kN));
  EXPECT_GT(engine.fault_plan()->total_injected(), 0u);
}

TEST(ChaosMixTest, AtLeastOnceNeverLosesRootsDedicated) {
  RunAtLeastOnceChaos(ExecutionMode::kDedicated, 0xa110);
}

TEST(ChaosMixTest, AtLeastOnceNeverLosesRootsMultiplexed) {
  RunAtLeastOnceChaos(ExecutionMode::kMultiplexed, 0xa111);
}

TEST(ChaosMixTest, AtMostOnceChaosTerminatesAndNeverDoubleCounts) {
  // At-most-once under a no-duplication mix: faults may lose tuples but
  // the engine must drain cleanly and the sink must never see a tuple
  // twice (count bounded above by emissions, below by emissions minus
  // everything droppable).
  FaultSpec spec;
  spec.seed = TestSeed() ^ 0xa105;
  spec.drop_tuple_prob = 0.05;
  spec.bolt_throw_prob = 0.02;
  spec.queue_stall_prob = 0.01;
  spec.queue_stall_micros = 50;
  spec.task_crash_prob = 0.01;
  spec.max_task_crashes = 2;
  for (const ExecutionMode mode :
       {ExecutionMode::kDedicated, ExecutionMode::kMultiplexed}) {
    const ChaosRunResult r = RunAtMostOnceChain(spec, 4000, mode);
    EXPECT_LE(r.sink_count, 4000u);
    EXPECT_GT(r.total_injected, 0u);
  }
}

// ----------------------------------- exactly-once state across a crash

TEST(CrashRestoreTest, CheckpointRestoreReproducesExactOperatorState) {
  // src -> count(1 task, checkpoint-then-ack + dedup). The injected crash
  // fires between an Execute (state already checkpointed) and its ack —
  // the torn window — so the root replays into restored state and the
  // ledger must absorb the redelivery. Ground truth: every payload counted
  // exactly once, crash or no crash, duplicates or not.
  constexpr int64_t kN = 200;
  auto state = std::make_shared<ReplayState>(kN);
  KvCheckpointStore store;

  TopologyBuilder builder;
  builder.AddSpout("src", [state]() -> std::unique_ptr<Spout> {
    return std::make_unique<ReplaySpout>(state);
  });
  builder.AddBolt(
      "count",
      [&store]() -> std::unique_ptr<Bolt> {
        return std::make_unique<CheckpointedCountBolt>(&store, "count");
      },
      1, {{"src", Grouping::Global()}});

  EngineConfig config;
  config.semantics = DeliverySemantics::kAtLeastOnce;
  config.ack_timeout_seconds = 0.15;
  config.faults.seed = TestSeed() ^ 0xc4a5;
  config.faults.duplicate_tuple_prob = 0.02;
  config.faults.task_crash_prob = 0.1;
  config.faults.max_task_crashes = 1;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  // The crash all but surely fired (p_miss = 0.9^200 ~ 7e-10); assert so
  // the test can't silently pass without exercising restore.
  ASSERT_EQ(engine.fault_plan()->injected(FaultKind::kTaskCrash), 1u);
  EXPECT_EQ(state->acked, static_cast<uint64_t>(kN));

  // The store's final checkpoint *is* the operator state an independent
  // restore would see; decode it and compare against ground truth.
  Result<std::vector<uint8_t>> bytes = store.Fetch("count:0");
  ASSERT_TRUE(bytes.ok());
  const auto counts = CheckpointedCountBolt::DecodeCounts(bytes.value());
  ASSERT_EQ(counts.size(), static_cast<size_t>(kN));
  for (int64_t i = 0; i < kN; i++) {
    auto it = counts.find(i);
    ASSERT_NE(it, counts.end()) << "payload " << i << " lost";
    EXPECT_EQ(it->second, 1u) << "payload " << i << " double-counted";
  }
}

// ------------------------- batched updates vs snapshots under chaos

TEST(CrashRestoreTest, BatchedSketchSnapshotsStayConsistentUnderChaos) {
  // src -> SketchBolt<CountMinSketch> carrying a batched update fn and a
  // small-cadence SketchCheckpoint. The engine's fused path applies whole
  // transport batches via AddHashBatch; the checkpoint threshold is
  // evaluated only AFTER a batch fully applies, so every blob the store
  // sees is a between-batches sketch — and the injected mid-run crash must
  // restore from such a blob and finish the stream. Duplicates and drops
  // run alongside to interleave replays with the batch/snapshot cadence.
  constexpr int64_t kN = 400;
  auto state = std::make_shared<ReplayState>(kN);
  KvCheckpointStore store;

  TopologyBuilder builder;
  builder.AddSpout("src", [state]() -> std::unique_ptr<Spout> {
    return std::make_unique<ReplaySpout>(state);
  });
  builder.AddBolt(
      "cms",
      [&store]() -> std::unique_ptr<Bolt> {
        SketchCheckpoint checkpoint;
        checkpoint.store = &store;
        checkpoint.key_prefix = "cms";
        checkpoint.every = 32;  // Many snapshots interleaved with batches.
        return std::make_unique<SketchBolt<CountMinSketch>>(
            CountMinSketch(512, 4),
            [](CountMinSketch& sketch, const Tuple& t) {
              sketch.Add(static_cast<uint64_t>(t.Int(0)));
            },
            FieldKeyBatchUpdate<CountMinSketch>(0), checkpoint);
      },
      1, {{"src", Grouping::Global()}});

  EngineConfig config;
  config.semantics = DeliverySemantics::kAtLeastOnce;
  config.ack_timeout_seconds = 0.15;
  config.enable_bolt_batch = true;
  config.faults.seed = TestSeed() ^ 0xbeef;
  config.faults.drop_tuple_prob = 0.01;
  config.faults.duplicate_tuple_prob = 0.02;
  // The fused path takes ONE crash draw per transport batch, so the draw
  // count here is tens, not kN — the probability must be sized for that.
  config.faults.task_crash_prob = 0.5;
  config.faults.max_task_crashes = 1;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  // The crash all but surely fired; without it the restore path under the
  // fused batch cadence goes untested.
  ASSERT_EQ(engine.fault_plan()->injected(FaultKind::kTaskCrash), 1u);
  // At-least-once: every payload eventually acked despite the crash
  // landing on (and discarding) a whole unexecuted batch.
  EXPECT_EQ(state->acked, static_cast<uint64_t>(kN));

  // The final checkpoint must be a decodable v2 SketchBlob — the exact
  // bytes an independent restart would restore.
  Result<std::vector<uint8_t>> bytes = store.Fetch("cms:0");
  ASSERT_TRUE(bytes.ok());
  Result<CountMinSketch> restored =
      state::FromBlob<CountMinSketch>(bytes.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // Sketch-checkpoint semantics: updates between the last Put and the
  // crash are lost, replays may double-add — the count is approximate but
  // must stay within the only-bounded-staleness envelope: nonzero, and no
  // more than one full delivery per payload plus injected duplicates.
  const uint64_t total = restored.value().total_count();
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, static_cast<uint64_t>(kN) + state->emitted);
}

// -------------------------------------------- ack-timeout replay (no dup)

TEST(AckTimeoutReplayTest, DroppedTupleFailsThenReplaysToFullAck) {
  // Drops only: a root whose delivery was dropped can resolve only via
  // ack-timeout -> OnFail -> spout re-emission. Termination requires that
  // whole path to work.
  constexpr int64_t kN = 100;
  auto state = std::make_shared<ReplayState>(kN);
  auto delivered = std::make_shared<std::atomic<uint64_t>>(0);

  TopologyBuilder builder;
  builder.AddSpout("src", [state]() -> std::unique_ptr<Spout> {
    return std::make_unique<ReplaySpout>(state);
  });
  builder.AddBolt(
      "sink",
      [delivered]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [delivered](const Tuple&, OutputCollector*) {
              delivered->fetch_add(1, std::memory_order_relaxed);
            });
      },
      1, {{"src", Grouping::Global()}});

  EngineConfig config;
  config.semantics = DeliverySemantics::kAtLeastOnce;
  config.ack_timeout_seconds = 0.1;
  config.faults.seed = TestSeed() ^ 0xd409;
  config.faults.drop_tuple_prob = 0.05;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  const uint64_t drops =
      engine.fault_plan()->injected(FaultKind::kDropTuple);
  EXPECT_GT(drops, 0u);          // The fault actually fired...
  EXPECT_GT(state->failed, 0u);  // ...and OnFail replay was exercised.
  EXPECT_EQ(state->acked, static_cast<uint64_t>(kN));
  EXPECT_EQ(delivered->load(), static_cast<uint64_t>(kN));
  EXPECT_EQ(engine.failed_roots(), state->failed);
}

// ----------------------------------------- checkpoint restore edge cases

TEST(CheckpointRestoreEdgeTest, EmptyStoreRoundTripsThroughFile) {
  const std::string path = ::testing::TempDir() + "empty_ckpt.bin";
  KvCheckpointStore empty;
  ASSERT_TRUE(empty.SaveToFile(path).ok());
  KvCheckpointStore restored;
  restored.Put("stale", {1, 2, 3});  // Load must replace, not merge.
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.NumKeys(), 0u);
  std::remove(path.c_str());
}

TEST(CheckpointRestoreEdgeTest, PopulatedStoreRoundTripsThroughFile) {
  const std::string path = ::testing::TempDir() + "full_ckpt.bin";
  KvCheckpointStore store;
  store.Put("a", {1, 2, 3});
  store.Put("a", {4, 5});  // Version 2 — versions must survive the trip.
  store.Put("b", {});      // Empty state is valid state.
  ASSERT_TRUE(store.SaveToFile(path).ok());

  KvCheckpointStore restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.NumKeys(), 2u);
  EXPECT_EQ(restored.Get("a").value(), (std::vector<uint8_t>{4, 5}));
  EXPECT_EQ(restored.VersionOf("a"), 2u);
  EXPECT_EQ(restored.Get("b").value(), std::vector<uint8_t>{});
  std::remove(path.c_str());
}

TEST(CheckpointRestoreEdgeTest, TornFileIsRejectedAndStoreUntouched) {
  const std::string path = ::testing::TempDir() + "torn_ckpt.bin";
  KvCheckpointStore store;
  std::vector<uint8_t> blob(64);
  for (size_t i = 0; i < blob.size(); i++) {
    blob[i] = static_cast<uint8_t>(i);
  }
  store.Put("state", blob);
  ASSERT_TRUE(store.SaveToFile(path).ok());

  // Truncate at every prefix length; no prefix except the full file may
  // load, and a failed load must leave existing contents intact.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> full;
  uint8_t buf[512];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    full.insert(full.end(), buf, buf + n);
  }
  std::fclose(f);

  const std::string torn = ::testing::TempDir() + "torn_ckpt_cut.bin";
  for (size_t cut = 0; cut < full.size(); cut += 7) {
    std::FILE* out = std::fopen(torn.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(full.data(), 1, cut, out);
    std::fclose(out);
    KvCheckpointStore victim;
    victim.Put("keep", {9});
    EXPECT_FALSE(victim.LoadFromFile(torn).ok()) << "cut=" << cut;
    EXPECT_EQ(victim.Get("keep").value(), std::vector<uint8_t>{9})
        << "failed load must not clobber the store (cut=" << cut << ")";
  }
  std::remove(torn.c_str());
  std::remove(path.c_str());
}

TEST(CheckpointRestoreEdgeTest, GarbageAndMissingFiles) {
  KvCheckpointStore store;
  EXPECT_EQ(store.LoadFromFile("/nonexistent/dir/ckpt.bin").code(),
            StatusCode::kNotFound);

  const std::string path = ::testing::TempDir() + "garbage_ckpt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a checkpoint file at all";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_FALSE(store.LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointRestoreEdgeTest, RenamedComponentRestoreIsCleanError) {
  // A bolt renamed between checkpoint and restore must get a diagnosable
  // NotFound (and start empty), never someone else's state or UB.
  KvCheckpointStore store;
  store.Put("old_name:0", {1, 2, 3});
  const Result<std::vector<uint8_t>> result = store.Fetch("new_name:0");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().ToString().find("new_name:0"),
            std::string::npos);  // The message names the missing key.

  // The bolt-level behaviour: restore under the wrong name starts empty.
  CheckpointedCountBolt bolt(&store, "new_name");
  bolt.Prepare(0, 1);
  EXPECT_TRUE(bolt.counts().empty());
}

TEST(CheckpointRestoreEdgeTest, TruncatedDedupLedgerBytesAreRejected) {
  DedupLedger ledger;
  for (uint64_t seq : {5u, 7u, 9u}) {
    ASSERT_TRUE(ledger.CheckAndRecord(1, seq));
  }
  const std::vector<uint8_t> good = ledger.Serialize();
  for (size_t cut = 0; cut + 1 < good.size(); cut += 3) {
    const std::vector<uint8_t> torn(good.begin(), good.begin() + cut);
    EXPECT_FALSE(DedupLedger::Deserialize(torn).ok()) << "cut=" << cut;
  }
  EXPECT_TRUE(DedupLedger::Deserialize(good).ok());
}

// ------------------------------------------------------ telemetry surface

TEST(FaultTelemetryTest, InjectedCountersSurfaceInReportAndJson) {
  FaultSpec spec;
  spec.seed = TestSeed() ^ 0x7e1e;
  spec.drop_tuple_prob = 0.05;
  spec.duplicate_tuple_prob = 0.05;
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  TopologyBuilder builder;
  builder.AddSpout("src", [counter]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= 2000) return std::nullopt;
          return Tuple::Of(static_cast<int64_t>(i));
        });
  });
  builder.AddBolt(
      "sink",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple&, OutputCollector*) {});
      },
      1, {{"src", Grouping::Global()}});

  EngineConfig config;
  config.faults = spec;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  const FaultPlan* plan = engine.fault_plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->total_injected(), 0u);

  const TelemetryReport report = engine.telemetry().BuildReport();
  EXPECT_TRUE(report.faults.enabled);
  EXPECT_EQ(report.faults.seed, spec.seed);
  EXPECT_EQ(report.faults.total_injected, plan->total_injected());
  EXPECT_EQ(report.faults.by_kind, plan->Snapshot());
  // Per-task counters roll up to the engine-wide total: every injected
  // fault is attributed to exactly one task.
  uint64_t per_task_sum = 0;
  for (const TelemetryReport::TaskRow& row : report.tasks) {
    per_task_sum += row.faults_injected;
  }
  EXPECT_EQ(per_task_sum, plan->total_injected());

  std::ostringstream json;
  report.WriteJson(json);
  const std::string doc = json.str();
  EXPECT_NE(doc.find("\"fault_injection\""), std::string::npos);
  EXPECT_NE(doc.find("\"drop_tuple\""), std::string::npos);
  EXPECT_NE(doc.find("\"faults_injected\""), std::string::npos);
}

TEST(FaultTelemetryTest, DisabledInjectionReportsDisabled) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  TopologyBuilder builder;
  builder.AddSpout("src", [counter]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter]() -> std::optional<Tuple> {
          if (counter->fetch_add(1) >= 100) return std::nullopt;
          return Tuple::Of(int64_t{1});
        });
  });
  TopologyEngine engine(builder.Build().value(), EngineConfig{});
  engine.Run();
  EXPECT_EQ(engine.fault_plan(), nullptr);
  const TelemetryReport report = engine.telemetry().BuildReport();
  EXPECT_FALSE(report.faults.enabled);
  EXPECT_EQ(report.faults.total_injected, 0u);
}

// --------------------------------------- barrier faults (epoch protocol)

TEST(BarrierFaultTest, DroppedAndDelayedBarriersNeverWedgeDelivery) {
  // Barriers themselves are a fault target: a dropped marker starves one
  // consumer's alignment until the epoch_align_timeout force-advance kicks
  // in, a delayed one jitters alignment order. Neither may wedge the data
  // plane or corrupt at-least-once delivery — epochs that lose a barrier
  // simply never complete and checkpointing retries at the next epoch.
  constexpr int64_t kN = 240;
  auto state = std::make_shared<ReplayState>(kN);
  auto delivered = std::make_shared<std::atomic<uint64_t>>(0);

  TopologyBuilder builder;
  builder.AddSpout("src", [state]() -> std::unique_ptr<Spout> {
    return std::make_unique<ReplaySpout>(state);
  });
  builder.AddBolt(
      "relay",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& t, OutputCollector* out) { out->Emit(t); });
      },
      2, {{"src", Grouping::Shuffle()}});
  builder.AddBolt(
      "sink",
      [delivered]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [delivered](const Tuple&, OutputCollector*) {
              delivered->fetch_add(1, std::memory_order_relaxed);
            });
      },
      1, {{"relay", Grouping::Global()}});

  KvCheckpointStore store;
  EngineConfig config;
  config.semantics = DeliverySemantics::kAtLeastOnce;
  config.checkpoint_store = &store;
  config.epoch_interval_tuples = 16;
  config.ack_timeout_seconds = 0.15;
  config.epoch_align_timeout_seconds = 0.1;  // Fast force-advance rounds.
  config.faults.seed = TestSeed() ^ 0xbab1;
  config.faults.barrier_drop_prob = 0.25;
  config.faults.barrier_delay_prob = 0.2;
  config.faults.barrier_delay_max_micros = 100;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  // Termination + full ack: barrier chaos never blocked or lost payloads.
  EXPECT_EQ(state->acked, static_cast<uint64_t>(kN));
  EXPECT_TRUE(state->pending.empty());
  EXPECT_TRUE(state->inflight.empty());
  EXPECT_GE(delivered->load(), static_cast<uint64_t>(kN));

  // Both barrier fault kinds actually fired (0.25/0.2 over ~15 epochs x 3
  // barrier deliveries makes either vanishingly unlikely to stay at zero).
  const std::array<uint64_t, kNumFaultKinds> injected =
      engine.fault_plan()->Snapshot();
  EXPECT_GT(injected[static_cast<size_t>(FaultKind::kBarrierDrop)], 0u);
  EXPECT_GT(injected[static_cast<size_t>(FaultKind::kBarrierDelay)], 0u);

  // The durable pointer agrees with the coordinator's view, and any epoch
  // it names has a complete manifest.
  EXPECT_EQ(LastCompleteEpoch(store), engine.last_complete_epoch());
  if (engine.last_complete_epoch() > 0) {
    EXPECT_TRUE(
        store.Get(EpochCompleteKey(engine.last_complete_epoch())).has_value());
  }
}

TEST(BarrierFaultTest, AlignmentTimesOutOnSkewThenRetriesToCompletion) {
  // A deterministic alignment stall, no randomness. srcA paces steadily
  // (~0.5ms/tuple => a barrier every ~8ms); srcB sleeps 3ms per tuple for
  // its first 16 tuples (~48ms), then free-runs. The sink holds srcA's
  // post-barrier data from ~8ms on, so its 30ms hold clock must expire
  // before srcB's first barrier (~48ms): force-advance => epoch_timeouts
  // > 0, and the skipped epochs never complete. Then srcB overtakes the
  // still-pacing srcA and alignment succeeds again for later epochs —
  // the protocol retries rather than wedging, and no data is lost.
  static constexpr int64_t kPerSpout = 400;
  auto delivered = std::make_shared<std::atomic<uint64_t>>(0);
  auto MakeCountdownSpout = [](bool slow_start) {
    auto remaining = std::make_shared<std::atomic<int64_t>>(kPerSpout);
    return [remaining, slow_start]() -> std::unique_ptr<Spout> {
      return std::make_unique<GeneratorSpout>(
          [remaining, slow_start]() -> std::optional<Tuple> {
            const int64_t left = remaining->fetch_sub(1);
            if (left <= 0) return std::nullopt;
            if (slow_start) {
              if (left > kPerSpout - 16) {
                std::this_thread::sleep_for(std::chrono::milliseconds(3));
              }
            } else {
              std::this_thread::sleep_for(std::chrono::microseconds(500));
            }
            return Tuple::Of(int64_t{kPerSpout - left});
          });
    };
  };

  TopologyBuilder builder;
  builder.AddSpout("srcA", MakeCountdownSpout(false));
  builder.AddSpout("srcB", MakeCountdownSpout(true));
  builder.AddBolt(
      "sink",
      [delivered]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [delivered](const Tuple&, OutputCollector*) {
              delivered->fetch_add(1, std::memory_order_relaxed);
            });
      },
      1, {{"srcA", Grouping::Global()}, {"srcB", Grouping::Global()}});

  KvCheckpointStore store;
  EngineConfig config;
  config.checkpoint_store = &store;
  config.epoch_interval_tuples = 16;
  config.epoch_align_timeout_seconds = 0.03;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  EXPECT_EQ(delivered->load(), static_cast<uint64_t>(2 * kPerSpout));
  EXPECT_GT(engine.epoch_timeouts(), 0u) << "skew never tripped the hold";
  EXPECT_GT(engine.epochs_completed(), 0u) << "alignment never recovered";
  EXPECT_EQ(LastCompleteEpoch(store), engine.last_complete_epoch());
}

}  // namespace
}  // namespace streamlib::platform
