#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/wavelet/haar_wavelet.h"

namespace streamlib {
namespace {

std::vector<double> RandomSignal(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.NextGaussian();
  return v;
}

TEST(HaarWaveletTest, TransformInverseRoundTrip) {
  for (size_t n : {2u, 8u, 64u, 1024u}) {
    auto signal = RandomSignal(n, n);
    auto coeffs = HaarWavelet::Transform(signal);
    auto restored = HaarWavelet::Inverse(coeffs);
    ASSERT_EQ(restored.size(), n);
    for (size_t i = 0; i < n; i++) {
      EXPECT_NEAR(restored[i], signal[i], 1e-9) << "n=" << n << " i=" << i;
    }
  }
}

TEST(HaarWaveletTest, TransformPreservesL2Norm) {
  // Normalized Haar is orthonormal: ||signal|| == ||coefficients||.
  auto signal = RandomSignal(256, 7);
  auto coeffs = HaarWavelet::Transform(signal);
  double s_norm = 0.0;
  double c_norm = 0.0;
  for (double x : signal) s_norm += x * x;
  for (double c : coeffs) c_norm += c * c;
  EXPECT_NEAR(s_norm, c_norm, 1e-9);
}

TEST(HaarWaveletTest, ConstantSignalHasOneCoefficient) {
  std::vector<double> signal(64, 5.0);
  auto coeffs = HaarWavelet::Transform(signal);
  EXPECT_NEAR(coeffs[0], 5.0 * std::sqrt(64.0), 1e-9);
  for (size_t i = 1; i < coeffs.size(); i++) {
    EXPECT_NEAR(coeffs[i], 0.0, 1e-9);
  }
}

TEST(HaarWaveletTest, TopKCapturesStepFunction) {
  // A signal with one step needs very few Haar coefficients.
  std::vector<double> signal(128, 1.0);
  for (size_t i = 64; i < 128; i++) signal[i] = 9.0;
  const double err = HaarWavelet::SynopsisError(signal, 2);
  EXPECT_NEAR(err, 0.0, 1e-9);
}

TEST(HaarWaveletTest, ErrorDecreasesWithK) {
  auto signal = RandomSignal(512, 11);
  double prev = 1e300;
  for (size_t k : {8u, 32u, 128u, 512u}) {
    const double err = HaarWavelet::SynopsisError(signal, k);
    EXPECT_LE(err, prev + 1e-12);
    prev = err;
  }
  EXPECT_NEAR(HaarWavelet::SynopsisError(signal, 512), 0.0, 1e-8);
}

TEST(HaarWaveletTest, TopKIsL2Optimal) {
  // Keeping the largest coefficients must beat keeping any other subset:
  // compare against keeping the *smallest* k.
  auto signal = RandomSignal(256, 13);
  auto coeffs = HaarWavelet::Transform(signal);
  const size_t k = 32;
  auto top = HaarWavelet::TopK(coeffs, k);
  // Build the worst-k synopsis.
  auto worst_sorted = HaarWavelet::TopK(coeffs, coeffs.size());
  std::vector<WaveletCoefficient> worst(worst_sorted.end() - k,
                                        worst_sorted.end());
  auto best_approx = HaarWavelet::Reconstruct(top, signal.size());
  auto worst_approx = HaarWavelet::Reconstruct(worst, signal.size());
  double best_err = 0.0;
  double worst_err = 0.0;
  for (size_t i = 0; i < signal.size(); i++) {
    best_err += (signal[i] - best_approx[i]) * (signal[i] - best_approx[i]);
    worst_err +=
        (signal[i] - worst_approx[i]) * (signal[i] - worst_approx[i]);
  }
  EXPECT_LT(best_err, worst_err);
}

}  // namespace
}  // namespace streamlib
