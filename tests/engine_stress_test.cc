// Randomized stress tests for the topology engine: random topology shapes,
// parallelism, groupings, modes and semantics — the invariant under test is
// tuple conservation (every spout emission is processed exactly the
// declared number of times) and clean shutdown, across dozens of engine
// lifecycles in one process.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos_util.h"
#include "common/random.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/fault.h"
#include "platform/stream_operators.h"
#include "platform/topology.h"
#include "test_seed.h"

namespace streamlib::platform {
namespace {

struct StressResult {
  uint64_t emitted;
  uint64_t sink_count;
  uint64_t expected_multiplier;  // Broadcast fan-out product.
};

// Builds spout -> [stage1 (xP1)] -> [stage2 (xP2)] -> counting sink, with
// random groupings; returns observed vs expected delivery counts.
StressResult RunRandomTopology(uint64_t seed, uint64_t n_tuples) {
  Rng rng(seed);
  const uint32_t p1 = 1 + static_cast<uint32_t>(rng.NextBounded(4));
  const uint32_t p2 = 1 + static_cast<uint32_t>(rng.NextBounded(4));
  const int g1 = static_cast<int>(rng.NextBounded(4));
  const int g2 = static_cast<int>(rng.NextBounded(4));
  auto grouping = [](int which, uint32_t targets) -> Grouping {
    switch (which) {
      case 0:
        return Grouping::Shuffle();
      case 1:
        return Grouping::Fields(0);
      case 2:
        return Grouping::Global();
      default:
        return targets > 0 ? Grouping::Broadcast() : Grouping::Shuffle();
    }
  };

  uint64_t multiplier = 1;
  if (g1 == 3) multiplier *= p1;
  if (g2 == 3) multiplier *= p2;

  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  auto delivered = std::make_shared<std::atomic<uint64_t>>(0);

  TopologyBuilder builder;
  builder.AddSpout(
      "src",
      [counter, n_tuples]() -> std::unique_ptr<Spout> {
        return std::make_unique<GeneratorSpout>(
            [counter, n_tuples]() -> std::optional<Tuple> {
              const uint64_t i = counter->fetch_add(1);
              if (i >= n_tuples) return std::nullopt;
              return Tuple::Of(static_cast<int64_t>(i));
            });
      },
      1 + static_cast<uint32_t>(seed % 2));
  builder.AddBolt(
      "stage1",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& in, OutputCollector* out) { out->Emit(in); });
      },
      p1, {{"src", grouping(g1, p1)}});
  builder.AddBolt(
      "stage2",
      [delivered]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [delivered](const Tuple&, OutputCollector*) {
              delivered->fetch_add(1);
            });
      },
      p2, {{"stage1", grouping(g2, p2)}});

  EngineConfig config;
  config.mode = (seed % 3 == 0) ? ExecutionMode::kMultiplexed
                                : ExecutionMode::kDedicated;
  config.multiplexed_threads = 1 + static_cast<uint32_t>(seed % 4);
  config.queue_capacity = 32 + static_cast<size_t>(rng.NextBounded(512));
  config.semantics = (seed % 5 == 0) ? DeliverySemantics::kAtLeastOnce
                                     : DeliverySemantics::kAtMostOnce;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  StressResult result;
  result.emitted = n_tuples;
  result.sink_count = delivered->load();
  result.expected_multiplier = multiplier;
  return result;
}

TEST(EngineStressTest, TupleConservationAcrossRandomTopologies) {
  for (uint64_t k = 1; k <= 30; k++) {
    const uint64_t seed = TestSeed() ^ k;
    const StressResult r = RunRandomTopology(seed, 3000);
    EXPECT_EQ(r.sink_count, r.emitted * r.expected_multiplier)
        << "case " << k << " seed " << seed;
  }
}

TEST(EngineStressTest, DeepPipelineUnderTinyQueues) {
  // 5 stages with 8-slot queues: heavy backpressure, must still conserve.
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  auto delivered = std::make_shared<std::atomic<uint64_t>>(0);
  const uint64_t kN = 20000;

  TopologyBuilder builder;
  builder.AddSpout("src", [counter]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= kN) return std::nullopt;
          return Tuple::Of(static_cast<int64_t>(i));
        });
  });
  std::string prev = "src";
  for (int stage = 0; stage < 4; stage++) {
    std::string name("s");
    name += std::to_string(stage);
    builder.AddBolt(
        name,
        []() -> std::unique_ptr<Bolt> {
          return std::make_unique<FunctionBolt>(
              [](const Tuple& in, OutputCollector* out) { out->Emit(in); });
        },
        2, {{prev, Grouping::Shuffle()}});
    prev = name;
  }
  builder.AddBolt(
      "sink",
      [delivered]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [delivered](const Tuple&, OutputCollector*) {
              delivered->fetch_add(1);
            });
      },
      1, {{prev, Grouping::Shuffle()}});

  EngineConfig config;
  config.queue_capacity = 8;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();
  EXPECT_EQ(delivered->load(), kN);
}

TEST(EngineStressTest, AtLeastOnceUnderRandomSlowness) {
  // Random execution delays below the ack timeout: everything must still
  // complete exactly (no spurious failures, no hangs).
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  const uint64_t kN = 2000;

  TopologyBuilder builder;
  builder.AddSpout("src", [counter]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= kN) return std::nullopt;
          return Tuple::Of(static_cast<int64_t>(i));
        });
  });
  builder.AddBolt(
      "jitter",
      []() -> std::unique_ptr<Bolt> {
        auto rng = std::make_shared<Rng>(TestSeed() ^ 77);
        return std::make_unique<FunctionBolt>(
            [rng](const Tuple& in, OutputCollector* out) {
              if (rng->NextBool(0.01)) {
                std::this_thread::sleep_for(std::chrono::microseconds(
                    rng->NextBounded(2000)));
              }
              out->Emit(in);
            });
      },
      3, {{"src", Grouping::Shuffle()}});
  builder.AddBolt(
      "end",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple&, OutputCollector*) {});
      },
      2, {{"jitter", Grouping::Fields(0)}});

  EngineConfig config;
  config.semantics = DeliverySemantics::kAtLeastOnce;
  config.ack_timeout_seconds = 5.0;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();
  EXPECT_EQ(engine.completed_roots(), kN);
  EXPECT_EQ(engine.failed_roots(), 0u);
}

TEST(OperatorIntegrationTest, AggregateAndJoinPipelineThroughEngine) {
  // spout -> filter (drop odds) -> enrich (region lookup) -> tumbling
  // aggregate by region -> sink: the paper's operator chain, end to end on
  // the engine with parallelism and fields grouping.
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  auto sink = std::make_shared<TupleSink>();
  const uint64_t kN = 12000;

  TopologyBuilder builder;
  builder.AddSpout("events", [counter]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= kN) return std::nullopt;
          std::string city("city");
          city += std::to_string(i % 4);
          return Tuple::Of(std::move(city), static_cast<double>(i % 10),
                           static_cast<int64_t>(i));
        });
  });
  builder.AddBolt(
      "evens",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FilterBolt>(
            [](const Tuple& t) { return t.Int(2) % 2 == 0; });
      },
      2, {{"events", Grouping::Shuffle()}});
  builder.AddBolt(
      "enrich",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<EnrichBolt>(
            std::unordered_map<std::string, Value>{
                {"city0", Value{std::string("east")}},
                {"city1", Value{std::string("east")}},
                {"city2", Value{std::string("west")}},
                {"city3", Value{std::string("west")}},
            },
            /*key_index=*/0, Value{std::string("unknown")});
      },
      2, {{"evens", Grouping::Shuffle()}});
  builder.AddBolt(
      "rekey",
      []() -> std::unique_ptr<Bolt> {
        // Project to (region, value) for the aggregator.
        return std::make_unique<FunctionBolt>(
            [](const Tuple& in, OutputCollector* out) {
              out->Emit(Tuple::Of(in.Str(3), in.Double(1)));
            });
      },
      2, {{"enrich", Grouping::Shuffle()}});
  builder.AddBolt(
      "aggregate",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<TumblingAggregateBolt>(1000000);  // Finish-only.
      },
      2, {{"rekey", Grouping::Fields(0)}});
  builder.AddBolt(
      "sink",
      [sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(sink.get());
      },
      1, {{"aggregate", Grouping::Global()}});

  TopologyEngine engine(builder.Build().value(), EngineConfig{});
  engine.Run();

  // Ground truth: even i only; region east = cities 0,1; value = i % 10.
  double expected_east = 0;
  double expected_west = 0;
  uint64_t expected_east_n = 0;
  uint64_t expected_west_n = 0;
  for (uint64_t i = 0; i < kN; i += 2) {
    const double v = static_cast<double>(i % 10);
    if (i % 4 <= 1) {
      expected_east += v;
      expected_east_n++;
    } else {
      expected_west += v;
      expected_west_n++;
    }
  }
  std::map<std::string, std::pair<double, int64_t>> got;
  for (const Tuple& t : sink->Snapshot()) {
    got[t.Str(0)].first += t.Double(1);
    got[t.Str(0)].second += t.Int(2);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got["east"].first, expected_east);
  EXPECT_DOUBLE_EQ(got["west"].first, expected_west);
  EXPECT_EQ(static_cast<uint64_t>(got["east"].second), expected_east_n);
  EXPECT_EQ(static_cast<uint64_t>(got["west"].second), expected_west_n);
}

// At-least-once accounting must be exact under transport batching: every
// spout-emitted root resolves as completed (none failed, none lost) even
// though tuples and acker events now travel in batches.
void RunAtLeastOnceAccounting(ExecutionMode mode) {
  constexpr uint64_t kN = 50000;
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  auto executed = std::make_shared<std::atomic<uint64_t>>(0);
  TopologyBuilder builder;
  builder.AddSpout(
      "src",
      [counter]() -> std::unique_ptr<Spout> {
        return std::make_unique<GeneratorSpout>(
            [counter]() -> std::optional<Tuple> {
              const uint64_t i = counter->fetch_add(1);
              if (i >= kN) return std::nullopt;
              return Tuple::Of(static_cast<int64_t>(i));
            });
      },
      1);
  builder.AddBolt(
      "work",
      [executed]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [executed](const Tuple&, OutputCollector*) {
              executed->fetch_add(1, std::memory_order_relaxed);
            });
      },
      4, {{"src", Grouping::Shuffle()}});

  EngineConfig config;
  config.mode = mode;
  config.semantics = DeliverySemantics::kAtLeastOnce;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  EXPECT_EQ(engine.completed_roots(), kN);
  EXPECT_EQ(engine.failed_roots(), 0u);
  EXPECT_EQ(executed->load(), kN);
}

TEST(EngineBatchingTest, AtLeastOnceAccountingExactDedicated) {
  RunAtLeastOnceAccounting(ExecutionMode::kDedicated);
}

TEST(EngineBatchingTest, AtLeastOnceAccountingExactMultiplexed) {
  RunAtLeastOnceAccounting(ExecutionMode::kMultiplexed);
}

// A single-producer chain in dedicated mode must select the SPSC ring for
// every bolt input and still conserve tuples exactly; with the ring
// disabled the same topology runs on BlockingQueues with identical counts.
TEST(EngineBatchingTest, SpscChainConservesTuples) {
  for (const bool enable_spsc : {true, false}) {
    constexpr uint64_t kN = 100000;
    auto counter = std::make_shared<std::atomic<uint64_t>>(0);
    auto sunk = std::make_shared<std::atomic<uint64_t>>(0);
    TopologyBuilder builder;
    builder.AddSpout(
        "src",
        [counter]() -> std::unique_ptr<Spout> {
          return std::make_unique<GeneratorSpout>(
              [counter]() -> std::optional<Tuple> {
                const uint64_t i = counter->fetch_add(1);
                if (i >= kN) return std::nullopt;
                return Tuple::Of(static_cast<int64_t>(i));
              });
        },
        1);
    builder.AddBolt(
        "relay",
        []() -> std::unique_ptr<Bolt> {
          return std::make_unique<FunctionBolt>(
              [](const Tuple& t, OutputCollector* out) { out->Emit(t); });
        },
        1, {{"src", Grouping::Shuffle()}});
    builder.AddBolt(
        "sink",
        [sunk]() -> std::unique_ptr<Bolt> {
          return std::make_unique<FunctionBolt>(
              [sunk](const Tuple&, OutputCollector*) {
                sunk->fetch_add(1, std::memory_order_relaxed);
              });
        },
        1, {{"relay", Grouping::Global()}});

    EngineConfig config;
    config.mode = ExecutionMode::kDedicated;
    config.enable_spsc = enable_spsc;
    TopologyEngine engine(builder.Build().value(), config);
    engine.Run();

    EXPECT_EQ(engine.spsc_edges(), enable_spsc ? 2u : 0u);
    EXPECT_EQ(sunk->load(), kN) << "enable_spsc=" << enable_spsc;
  }
}

// ------------------------------------------------------------ chaos sweep
//
// Fault-mix sweep across the engine's two architectural axes (delivery
// semantics × executor mode): the delivery contract must hold in every
// cell. At-least-once cells use a replaying spout, so termination itself
// proves no root is ever lost; at-most-once cells may lose tuples to
// faults but must drain cleanly and never deliver a tuple twice (their
// mixes exclude duplication — the one fault whose whole point is double
// delivery).

struct FaultMix {
  const char* name;
  FaultSpec spec;  // seed is filled in per cell.
};

std::vector<FaultMix> ChaosSweepMixes() {
  std::vector<FaultMix> mixes;
  {
    FaultMix transport{"transport", {}};
    transport.spec.drop_tuple_prob = 0.02;
    transport.spec.delay_delivery_prob = 0.01;
    transport.spec.delay_max_micros = 30;
    mixes.push_back(transport);
  }
  {
    FaultMix executor{"executor", {}};
    executor.spec.bolt_throw_prob = 0.01;
    executor.spec.task_crash_prob = 0.02;
    executor.spec.max_task_crashes = 1;
    mixes.push_back(executor);
  }
  {
    FaultMix queueing{"queueing", {}};
    queueing.spec.queue_stall_prob = 0.02;
    queueing.spec.queue_stall_micros = 40;
    queueing.spec.acker_loss_prob = 0.01;
    mixes.push_back(queueing);
  }
  return mixes;
}

TEST(EngineChaosSweepTest, AtLeastOnceHoldsAcrossModeAndFaultMix) {
  constexpr int64_t kN = 150;
  uint64_t salt = 0;
  for (const ExecutionMode mode :
       {ExecutionMode::kDedicated, ExecutionMode::kMultiplexed}) {
    for (FaultMix mix : ChaosSweepMixes()) {
      salt++;
      auto state = std::make_shared<ReplayState>(kN);
      auto delivered = std::make_shared<std::atomic<uint64_t>>(0);
      TopologyBuilder builder;
      builder.AddSpout("src", [state]() -> std::unique_ptr<Spout> {
        return std::make_unique<ReplaySpout>(state);
      });
      builder.AddBolt(
          "relay",
          []() -> std::unique_ptr<Bolt> {
            return std::make_unique<FunctionBolt>(
                [](const Tuple& t, OutputCollector* out) { out->Emit(t); });
          },
          2, {{"src", Grouping::Shuffle()}});
      builder.AddBolt(
          "sink",
          [delivered]() -> std::unique_ptr<Bolt> {
            return std::make_unique<FunctionBolt>(
                [delivered](const Tuple&, OutputCollector*) {
                  delivered->fetch_add(1, std::memory_order_relaxed);
                });
          },
          2, {{"relay", Grouping::Shuffle()}});

      EngineConfig config;
      config.mode = mode;
      config.semantics = DeliverySemantics::kAtLeastOnce;
      config.ack_timeout_seconds = 0.15;
      config.faults = mix.spec;
      config.faults.duplicate_tuple_prob = 0.01;  // Dups are fine here.
      config.faults.seed = TestSeed() ^ (0xca05 + salt);
      TopologyEngine engine(builder.Build().value(), config);
      engine.Run();

      const std::string cell =
          std::string(mix.name) + "/" +
          (mode == ExecutionMode::kDedicated ? "dedicated" : "multiplexed");
      EXPECT_EQ(state->acked, static_cast<uint64_t>(kN)) << cell;
      EXPECT_TRUE(state->inflight.empty()) << cell;
      EXPECT_GE(delivered->load(), static_cast<uint64_t>(kN)) << cell;
      EXPECT_EQ(engine.completed_roots(), static_cast<uint64_t>(kN)) << cell;
    }
  }
}

TEST(EngineChaosSweepTest, AtMostOnceDrainsCleanlyAcrossModeAndFaultMix) {
  constexpr uint64_t kN = 1500;
  uint64_t salt = 0;
  for (const ExecutionMode mode :
       {ExecutionMode::kDedicated, ExecutionMode::kMultiplexed}) {
    for (FaultMix mix : ChaosSweepMixes()) {
      salt++;
      auto counter = std::make_shared<std::atomic<uint64_t>>(0);
      auto delivered = std::make_shared<std::atomic<uint64_t>>(0);
      TopologyBuilder builder;
      builder.AddSpout("src", [counter]() -> std::unique_ptr<Spout> {
        return std::make_unique<GeneratorSpout>(
            [counter]() -> std::optional<Tuple> {
              const uint64_t i = counter->fetch_add(1);
              if (i >= kN) return std::nullopt;
              return Tuple::Of(static_cast<int64_t>(i));
            });
      });
      builder.AddBolt(
          "relay",
          []() -> std::unique_ptr<Bolt> {
            return std::make_unique<FunctionBolt>(
                [](const Tuple& t, OutputCollector* out) { out->Emit(t); });
          },
          2, {{"src", Grouping::Shuffle()}});
      builder.AddBolt(
          "sink",
          [delivered]() -> std::unique_ptr<Bolt> {
            return std::make_unique<FunctionBolt>(
                [delivered](const Tuple&, OutputCollector*) {
                  delivered->fetch_add(1, std::memory_order_relaxed);
                });
          },
          2, {{"relay", Grouping::Shuffle()}});

      EngineConfig config;
      config.mode = mode;
      config.semantics = DeliverySemantics::kAtMostOnce;
      config.faults = mix.spec;
      config.faults.seed = TestSeed() ^ (0xca15 + salt);
      TopologyEngine engine(builder.Build().value(), config);
      engine.Run();  // Must terminate (no deadlock) despite lost tuples.

      const std::string cell =
          std::string(mix.name) + "/" +
          (mode == ExecutionMode::kDedicated ? "dedicated" : "multiplexed");
      // Never double-delivers: every sink execution maps to a distinct
      // spout emission (mixes here inject no duplication).
      EXPECT_LE(delivered->load(), kN) << cell;
    }
  }
}

}  // namespace
}  // namespace streamlib::platform
