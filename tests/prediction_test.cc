#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/prediction/kalman_filter.h"
#include "core/prediction/online_ar.h"

namespace streamlib {
namespace {

TEST(ScalarKalmanFilterTest, ConvergesToConstantLevel) {
  ScalarKalmanFilter kf(0.001, 1.0);
  Rng rng(1);
  double estimate = 0.0;
  for (int i = 0; i < 5000; i++) {
    estimate = kf.Update(42.0 + rng.NextGaussian());
  }
  EXPECT_NEAR(estimate, 42.0, 0.3);
  // Posterior uncertainty should have shrunk far below R.
  EXPECT_LT(kf.uncertainty(), 0.2);
}

TEST(ScalarKalmanFilterTest, SmoothsNoiseBelowRawVariance) {
  ScalarKalmanFilter kf(0.01, 4.0);
  Rng rng(2);
  double err_raw = 0.0;
  double err_filtered = 0.0;
  const double truth = 10.0;
  for (int i = 0; i < 20000; i++) {
    const double obs = truth + 2.0 * rng.NextGaussian();
    const double est = kf.Update(obs);
    if (i > 100) {
      err_raw += (obs - truth) * (obs - truth);
      err_filtered += (est - truth) * (est - truth);
    }
  }
  EXPECT_LT(err_filtered, err_raw / 4.0);
}

TEST(ScalarKalmanFilterTest, PredictMissingHoldsLevel) {
  ScalarKalmanFilter kf(0.01, 1.0);
  for (int i = 0; i < 100; i++) kf.Update(5.0);
  const double before = kf.uncertainty();
  const double predicted = kf.PredictMissing();
  EXPECT_DOUBLE_EQ(predicted, kf.level());
  EXPECT_NEAR(predicted, 5.0, 0.1);
  EXPECT_GT(kf.uncertainty(), before);  // Uncertainty grows without data.
}

TEST(VelocityKalmanFilterTest, TracksLinearTrend) {
  VelocityKalmanFilter kf(0.01, 1.0);
  Rng rng(3);
  for (int i = 0; i < 2000; i++) {
    kf.Update(0.5 * i + rng.NextGaussian());
  }
  EXPECT_NEAR(kf.trend(), 0.5, 0.05);
  EXPECT_NEAR(kf.Forecast(), 0.5 * 2000, 5.0);
}

TEST(VelocityKalmanFilterTest, BeatsLocalLevelOnDrift) {
  // On a steadily drifting signal the velocity model's one-step forecast
  // must have lower error than the local-level model's.
  ScalarKalmanFilter level_model(0.01, 1.0);
  VelocityKalmanFilter velocity_model(0.01, 1.0);
  Rng rng(4);
  double err_level = 0.0;
  double err_velocity = 0.0;
  for (int i = 0; i < 5000; i++) {
    const double truth = 0.3 * i;
    const double obs = truth + rng.NextGaussian();
    if (i > 100) {
      const double lf = level_model.level();          // Forecast = level.
      const double vf = velocity_model.Forecast();
      err_level += (lf - truth) * (lf - truth);
      err_velocity += (vf - truth) * (vf - truth);
    }
    level_model.Update(obs);
    velocity_model.Update(obs);
  }
  EXPECT_LT(err_velocity, err_level);
}

TEST(VelocityKalmanFilterTest, MissingValueImputationOnRamp) {
  VelocityKalmanFilter kf(0.01, 1.0);
  Rng rng(5);
  for (int i = 0; i < 1000; i++) kf.Update(2.0 * i + rng.NextGaussian());
  // Impute the next 5 missing points: should continue the ramp.
  for (int m = 1; m <= 5; m++) {
    const double predicted = kf.PredictMissing();
    EXPECT_NEAR(predicted, 2.0 * (999 + m), 10.0) << m;
  }
}

TEST(OnlineArModelTest, LearnsAr2Coefficients) {
  // x_t = 1.2 x_{t-1} - 0.4 x_{t-2} + noise (stationary AR(2)).
  OnlineArModel ar(2, 0.999);
  Rng rng(6);
  double x1 = 0.0;
  double x2 = 0.0;
  for (int i = 0; i < 30000; i++) {
    const double x = 1.2 * x1 - 0.4 * x2 + rng.NextGaussian() * 0.5;
    ar.Update(x);
    x2 = x1;
    x1 = x;
  }
  ASSERT_EQ(ar.coefficients().size(), 2u);
  EXPECT_NEAR(ar.coefficients()[0], 1.2, 0.08);
  EXPECT_NEAR(ar.coefficients()[1], -0.4, 0.08);
}

TEST(OnlineArModelTest, ForecastBeatsPersistenceOnAr2) {
  OnlineArModel ar(2, 0.999);
  Rng rng(7);
  double x1 = 0.0;
  double x2 = 0.0;
  double err_ar = 0.0;
  double err_persist = 0.0;
  for (int i = 0; i < 30000; i++) {
    const double x = 1.2 * x1 - 0.4 * x2 + rng.NextGaussian() * 0.5;
    if (i > 1000) {
      const double f = ar.Forecast();
      err_ar += (f - x) * (f - x);
      err_persist += (x1 - x) * (x1 - x);
    }
    ar.Update(x);
    x2 = x1;
    x1 = x;
  }
  EXPECT_LT(err_ar, err_persist);
}

TEST(OnlineArModelTest, ForgettingTracksRegimeChange) {
  // Coefficients flip mid-stream; a forgetting RLS must re-learn.
  OnlineArModel ar(1, 0.99);
  Rng rng(8);
  double x1 = 1.0;
  for (int i = 0; i < 20000; i++) {
    const double coef = i < 10000 ? 0.9 : -0.9;
    const double x = coef * x1 + rng.NextGaussian() * 0.5;
    ar.Update(x);
    x1 = x;
  }
  EXPECT_NEAR(ar.coefficients()[0], -0.9, 0.1);
}

TEST(OnlineArModelTest, MultiStepForecast) {
  // Deterministic doubling sequence: x_t = 2 x_{t-1} is learned by AR(1);
  // ForecastAhead should iterate it.
  OnlineArModel ar(1, 1.0);
  double x = 1.0;
  for (int i = 0; i < 60; i++) {
    ar.Update(x);
    x *= 1.1;
  }
  const double one = ar.ForecastAhead(1);
  const double three = ar.ForecastAhead(3);
  EXPECT_NEAR(three / one, 1.1 * 1.1, 0.05);
}

TEST(HoltWintersTest, TracksTrend) {
  HoltWinters hw(0.3, 0.1);
  Rng rng(9);
  for (int i = 0; i < 5000; i++) {
    hw.Update(3.0 * i + rng.NextGaussian() * 2.0);
  }
  EXPECT_NEAR(hw.trend(), 3.0, 0.3);
  EXPECT_NEAR(hw.Forecast(), 3.0 * 5000, 30.0);
}

TEST(HoltWintersTest, FlatSeriesHasZeroTrend) {
  HoltWinters hw(0.3, 0.1);
  Rng rng(10);
  for (int i = 0; i < 5000; i++) hw.Update(7.0 + rng.NextGaussian() * 0.1);
  EXPECT_NEAR(hw.trend(), 0.0, 0.05);
  EXPECT_NEAR(hw.level(), 7.0, 0.2);
}

}  // namespace
}  // namespace streamlib
