#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/random.h"
#include "core/windowing/eh_sum.h"
#include "core/windowing/exponential_histogram.h"
#include "core/windowing/significant_ones.h"
#include "core/windowing/sliding_aggregator.h"
#include "core/windowing/sliding_topk.h"
#include "workload/bit_stream.h"

namespace streamlib {
namespace {

// Exact sliding-window 1-counter for ground truth.
class ExactWindowCounter {
 public:
  explicit ExactWindowCounter(uint64_t window) : window_(window) {}

  void Add(bool bit) {
    bits_.push_back(bit);
    if (bit) ones_++;
    if (bits_.size() > window_) {
      if (bits_.front()) ones_--;
      bits_.pop_front();
    }
  }

  uint64_t Count() const { return ones_; }

 private:
  uint64_t window_;
  std::deque<bool> bits_;
  uint64_t ones_ = 0;
};

// --------------------------------------------------- ExponentialHistogram

TEST(ExponentialHistogramTest, ExactForAllZeros) {
  ExponentialHistogram eh(100, 4);
  for (int i = 0; i < 1000; i++) eh.Add(false);
  EXPECT_EQ(eh.Estimate(), 0u);
}

TEST(ExponentialHistogramTest, ExactWhileFewOnes) {
  ExponentialHistogram eh(1000, 8);
  for (int i = 0; i < 5; i++) {
    eh.Add(true);
    eh.Add(false);
  }
  EXPECT_EQ(eh.Estimate(), 5u);
}

TEST(ExponentialHistogramTest, OnesExpireWithWindow) {
  ExponentialHistogram eh(100, 4);
  for (int i = 0; i < 50; i++) eh.Add(true);
  for (int i = 0; i < 200; i++) eh.Add(false);
  EXPECT_EQ(eh.Estimate(), 0u);
}

TEST(ExponentialHistogramTest, RelativeErrorBound) {
  const uint64_t kWindow = 10000;
  const uint32_t kK = 8;  // Relative error <= 1/(2*(k-1)) ~ 7%.
  ExponentialHistogram eh(kWindow, kK);
  ExactWindowCounter exact(kWindow);
  workload::BernoulliBitStream stream(0.3, 31);

  double max_rel_err = 0;
  for (int i = 0; i < 100000; i++) {
    const bool bit = stream.Next();
    eh.Add(bit);
    exact.Add(bit);
    if (i > 1000 && i % 97 == 0) {
      const double m = static_cast<double>(exact.Count());
      const double err = std::fabs(static_cast<double>(eh.Estimate()) - m);
      if (m > 0) max_rel_err = std::max(max_rel_err, err / m);
      // Bounds must always bracket the truth.
      EXPECT_LE(eh.LowerBound(), exact.Count());
      EXPECT_GE(eh.UpperBound(), exact.Count());
    }
  }
  EXPECT_LE(max_rel_err, 1.0 / kK);
}

TEST(ExponentialHistogramTest, BurstyStreamStillBounded) {
  const uint64_t kWindow = 4096;
  const uint32_t kK = 4;
  ExponentialHistogram eh(kWindow, kK);
  ExactWindowCounter exact(kWindow);
  workload::BurstyBitStream stream(0.95, 0.01, 0.002, 0.01, 33);
  double max_rel_err = 0;
  for (int i = 0; i < 200000; i++) {
    const bool bit = stream.Next();
    eh.Add(bit);
    exact.Add(bit);
    if (i % 101 == 0 && exact.Count() > 50) {
      const double m = static_cast<double>(exact.Count());
      max_rel_err = std::max(
          max_rel_err, std::fabs(static_cast<double>(eh.Estimate()) - m) / m);
    }
  }
  EXPECT_LE(max_rel_err, 1.0 / (2.0 * (kK - 1)) + 0.02);
}

TEST(ExponentialHistogramTest, SpaceIsLogarithmic) {
  ExponentialHistogram eh(1 << 20, 8);
  workload::BernoulliBitStream stream(0.5, 35);
  for (int i = 0; i < (1 << 21); i++) eh.Add(stream.Next());
  // O(k log W): ~ 8 * 20 = 160 buckets, far below the 2^19 ones in window.
  EXPECT_LT(eh.NumBuckets(), 400u);
}

// K sweep: error must shrink as k grows.
class EhKSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EhKSweep, ErrorScalesInverselyWithK) {
  const uint32_t k = GetParam();
  const uint64_t kWindow = 8192;
  ExponentialHistogram eh(kWindow, k);
  ExactWindowCounter exact(kWindow);
  workload::BernoulliBitStream stream(0.4, 100 + k);
  double max_rel_err = 0;
  for (int i = 0; i < 60000; i++) {
    const bool bit = stream.Next();
    eh.Add(bit);
    exact.Add(bit);
    if (i > 9000 && i % 89 == 0) {
      const double m = static_cast<double>(exact.Count());
      max_rel_err = std::max(
          max_rel_err, std::fabs(static_cast<double>(eh.Estimate()) - m) / m);
    }
  }
  EXPECT_LE(max_rel_err, 1.0 / (2.0 * (k - 1)) + 0.01) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, EhKSweep, ::testing::Values(2, 4, 8, 16, 32));

// -------------------------------------------------------------- EhSum

TEST(EhSumTest, SumOfConstantStream) {
  EhSum sum(1000, 16, 8);
  for (int i = 0; i < 5000; i++) sum.Add(10);
  // Window of 1000 values of 10 = 10000.
  EXPECT_NEAR(static_cast<double>(sum.Estimate()), 10000.0, 10000.0 * 0.10);
}

TEST(EhSumTest, TracksChangingValues) {
  EhSum sum(1024, 16, 10);
  Rng rng(37);
  std::deque<uint32_t> window;
  uint64_t exact = 0;
  double max_rel_err = 0;
  for (int i = 0; i < 50000; i++) {
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(1000));
    sum.Add(v);
    window.push_back(v);
    exact += v;
    if (window.size() > 1024) {
      exact -= window.front();
      window.pop_front();
    }
    if (i > 2000 && i % 61 == 0) {
      max_rel_err = std::max(
          max_rel_err,
          std::fabs(static_cast<double>(sum.Estimate()) -
                    static_cast<double>(exact)) /
              static_cast<double>(exact));
    }
  }
  EXPECT_LT(max_rel_err, 0.08);
}

TEST(EhSumTest, ZeroValuesContributeNothing) {
  EhSum sum(100, 8, 4);
  for (int i = 0; i < 1000; i++) sum.Add(0);
  EXPECT_EQ(sum.Estimate(), 0u);
}

// ----------------------------------------------------- SlidingAggregator

TEST(SlidingAggregatorTest, SumMatchesExact) {
  SlidingAggregator<SumMonoid> agg(100);
  double exact = 0;
  std::deque<double> window;
  Rng rng(41);
  for (int i = 0; i < 10000; i++) {
    const double v = rng.NextDouble();
    agg.Add(SumMonoid::Of(v));
    window.push_back(v);
    exact += v;
    if (window.size() > 100) {
      exact -= window.front();
      window.pop_front();
    }
    ASSERT_NEAR(agg.Query().sum, exact, 1e-6);
  }
}

TEST(SlidingAggregatorTest, MaxAndMinMatchExact) {
  SlidingAggregator<MaxMonoid> max_agg(64);
  SlidingAggregator<MinMonoid> min_agg(64);
  std::deque<double> window;
  Rng rng(43);
  for (int i = 0; i < 5000; i++) {
    const double v = rng.NextGaussian();
    max_agg.Add(MaxMonoid::Of(v));
    min_agg.Add(MinMonoid::Of(v));
    window.push_back(v);
    if (window.size() > 64) window.pop_front();
    const double exact_max = *std::max_element(window.begin(), window.end());
    const double exact_min = *std::min_element(window.begin(), window.end());
    ASSERT_DOUBLE_EQ(max_agg.Query().max, exact_max);
    ASSERT_DOUBLE_EQ(min_agg.Query().min, exact_min);
  }
}

TEST(SlidingAggregatorTest, VarianceMatchesExact) {
  SlidingAggregator<VarianceMonoid> agg(128);
  std::deque<double> window;
  Rng rng(47);
  for (int i = 0; i < 5000; i++) {
    const double v = rng.NextGaussian() * 5.0 + 100.0;
    agg.Add(VarianceMonoid::Of(v));
    window.push_back(v);
    if (window.size() > 128) window.pop_front();
    if (i % 37 == 0 && window.size() > 1) {
      double mean = 0;
      for (double x : window) mean += x;
      mean /= static_cast<double>(window.size());
      double m2 = 0;
      for (double x : window) m2 += (x - mean) * (x - mean);
      const double exact_var = m2 / static_cast<double>(window.size());
      EXPECT_NEAR(agg.Query().Variance(), exact_var, 1e-6);
    }
  }
}

TEST(SlidingAggregatorTest, WindowOfOne) {
  SlidingAggregator<SumMonoid> agg(1);
  agg.Add(SumMonoid::Of(5.0));
  EXPECT_DOUBLE_EQ(agg.Query().sum, 5.0);
  agg.Add(SumMonoid::Of(7.0));
  EXPECT_DOUBLE_EQ(agg.Query().sum, 7.0);
}

// ------------------------------------------------- SignificantOneCounter

TEST(SignificantOneCounterTest, AccurateWhenSignificant) {
  const uint64_t kWindow = 10000;
  const double kTheta = 0.2;
  const double kEps = 0.1;
  SignificantOneCounter soc(kWindow, kTheta, kEps);
  ExactWindowCounter exact(kWindow);
  workload::BernoulliBitStream stream(0.5, 51);  // Always significant.
  double max_rel_err = 0;
  for (int i = 0; i < 100000; i++) {
    const bool bit = stream.Next();
    soc.Add(bit);
    exact.Add(bit);
    if (i > 20000 && i % 113 == 0) {
      const double m = static_cast<double>(exact.Count());
      EXPECT_TRUE(soc.IsSignificant());
      max_rel_err = std::max(
          max_rel_err,
          std::fabs(static_cast<double>(soc.Estimate()) - m) / m);
    }
  }
  EXPECT_LE(max_rel_err, kEps);
}

TEST(SignificantOneCounterTest, UsesLessSpaceThanPlainDgim) {
  const uint64_t kWindow = 1 << 16;
  const double kEps = 0.05;
  SignificantOneCounter soc(kWindow, /*theta=*/0.3, kEps);
  ExponentialHistogram dgim(kWindow,
                            static_cast<uint32_t>(std::ceil(1.0 / kEps)) + 1);
  workload::BernoulliBitStream stream(0.5, 53);
  for (int i = 0; i < (1 << 18); i++) {
    const bool bit = stream.Next();
    soc.Add(bit);
    dgim.Add(bit);
  }
  EXPECT_LT(soc.NumBuckets(), dgim.NumBuckets());
}

// ------------------------------------------------------------ SlidingTopK

TEST(SlidingTopKTest, MatchesBruteForceOnRandomStream) {
  const size_t kK = 5;
  const uint64_t kW = 200;
  SlidingTopK<int> topk(kK, kW);
  std::deque<std::pair<double, int>> window;
  Rng rng(61);
  for (int i = 0; i < 5000; i++) {
    const double score = rng.NextDouble() * 1000.0;
    topk.Add(score, i);
    window.emplace_back(score, i);
    if (window.size() > kW) window.pop_front();
    if (i > 300 && i % 97 == 0) {
      auto brute = window;
      std::sort(brute.begin(), brute.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      auto got = topk.TopK();
      ASSERT_EQ(got.size(), kK) << i;
      for (size_t j = 0; j < kK; j++) {
        EXPECT_DOUBLE_EQ(got[j].first, brute[j].first) << i << " " << j;
        EXPECT_EQ(got[j].second, brute[j].second) << i << " " << j;
      }
    }
  }
}

TEST(SlidingTopKTest, OldChampionExpires) {
  SlidingTopK<std::string> topk(1, 10);
  topk.Add(1000.0, "champion");
  for (int i = 0; i < 9; i++) topk.Add(1.0, "filler");
  EXPECT_EQ(topk.TopK()[0].second, "champion");
  topk.Add(1.0, "pusher");  // Champion leaves the window.
  EXPECT_NE(topk.TopK()[0].second, "champion");
}

TEST(SlidingTopKTest, CandidateSetStaysSmall) {
  // The k-skyband over a 100k window of random scores should retain
  // O(k log(W/k)) ~ tens of candidates, not W.
  SlidingTopK<int> topk(10, 100000);
  Rng rng(67);
  for (int i = 0; i < 300000; i++) {
    topk.Add(rng.NextDouble(), i);
  }
  EXPECT_LT(topk.CandidateCount(), 400u);
}

TEST(SlidingTopKTest, AscendingScoresKeepOnlyKCandidates) {
  SlidingTopK<int> topk(3, 1000);
  for (int i = 0; i < 5000; i++) {
    topk.Add(static_cast<double>(i), i);
  }
  // Every arrival dominates all residents: only the last k survive.
  EXPECT_EQ(topk.CandidateCount(), 3u);
  auto top = topk.TopK();
  EXPECT_DOUBLE_EQ(top[0].first, 4999.0);
}

TEST(SignificantOneCounterTest, InsignificantWindowsFlagged) {
  SignificantOneCounter soc(1000, 0.5, 0.1);
  workload::BernoulliBitStream stream(0.05, 55);  // Well below theta.
  for (int i = 0; i < 5000; i++) soc.Add(stream.Next());
  EXPECT_FALSE(soc.IsSignificant());
}

}  // namespace
}  // namespace streamlib
