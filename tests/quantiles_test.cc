#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/random.h"
#include "core/quantiles/ckms_quantile.h"
#include "core/quantiles/frugal.h"
#include "core/quantiles/gk_quantile.h"
#include "core/quantiles/sliding_quantile.h"
#include "core/quantiles/tdigest.h"

namespace streamlib {
namespace {

// True rank of `value` within `sorted`: count of elements <= value.
double RankOf(const std::vector<double>& sorted, double value) {
  return static_cast<double>(
      std::upper_bound(sorted.begin(), sorted.end(), value) - sorted.begin());
}

std::vector<double> UniformStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.NextDouble() * 1000.0;
  return v;
}

std::vector<double> GaussianStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.NextGaussian() * 10.0 + 50.0;
  return v;
}

// ------------------------------------------------------------------- GK

TEST(GkQuantileTest, RankErrorWithinEps) {
  const double kEps = 0.01;
  auto data = UniformStream(50000, 1);
  GkQuantile gk(kEps);
  for (double v : data) gk.Add(v);

  auto sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double answer = gk.Query(phi);
    const double rank = RankOf(sorted, answer);
    const double target = phi * static_cast<double>(data.size());
    EXPECT_LE(std::fabs(rank - target), 2.0 * kEps * data.size() + 1)
        << "phi=" << phi;
  }
}

TEST(GkQuantileTest, ExtremesAreExact) {
  auto data = GaussianStream(10000, 2);
  GkQuantile gk(0.01);
  for (double v : data) gk.Add(v);
  auto sorted = data;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(gk.Query(0.0), sorted.front());
  EXPECT_DOUBLE_EQ(gk.Query(1.0), sorted.back());
}

TEST(GkQuantileTest, SummaryIsSublinear) {
  GkQuantile gk(0.01);
  for (int i = 0; i < 200000; i++) gk.Add(static_cast<double>(i % 9973));
  // O((1/eps) log(eps n)) ~ a few hundred tuples, vs 200k inputs.
  EXPECT_LT(gk.SummarySize(), 4000u);
}

TEST(GkQuantileTest, SortedAndReversedInputs) {
  for (bool reversed : {false, true}) {
    GkQuantile gk(0.02);
    for (int i = 0; i < 20000; i++) {
      gk.Add(static_cast<double>(reversed ? 20000 - i : i));
    }
    EXPECT_NEAR(gk.Query(0.5), 10000.0, 2 * 0.02 * 20000 + 1);
  }
}

// Eps sweep: measured rank error must respect each configured bound.
class GkEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(GkEpsSweep, RankErrorBound) {
  const double eps = GetParam();
  auto data = UniformStream(30000, 42);
  GkQuantile gk(eps);
  for (double v : data) gk.Add(v);
  auto sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (double phi : {0.1, 0.5, 0.9}) {
    const double rank = RankOf(sorted, gk.Query(phi));
    EXPECT_LE(std::fabs(rank - phi * data.size()), 2 * eps * data.size() + 1)
        << "eps=" << eps << " phi=" << phi;
  }
}

INSTANTIATE_TEST_SUITE_P(Eps, GkEpsSweep,
                         ::testing::Values(0.1, 0.05, 0.01, 0.005, 0.001));

// ------------------------------------------------------------------ CKMS

TEST(CkmsQuantileTest, TargetedQuantilesAccurate) {
  CkmsQuantile ckms({{0.5, 0.01}, {0.9, 0.005}, {0.99, 0.001}});
  auto data = GaussianStream(100000, 3);
  for (double v : data) ckms.Add(v);
  auto sorted = data;
  std::sort(sorted.begin(), sorted.end());

  struct Check {
    double phi;
    double eps;
  };
  for (const Check& c : {Check{0.5, 0.01}, Check{0.9, 0.005},
                         Check{0.99, 0.001}}) {
    const double rank = RankOf(sorted, ckms.Query(c.phi));
    EXPECT_LE(std::fabs(rank - c.phi * data.size()),
              3.0 * c.eps * data.size() + 1)
        << "phi=" << c.phi;
  }
}

TEST(CkmsQuantileTest, SummaryIsSublinear) {
  // Space must stay well below the input size. (Note: targeted CKMS
  // summaries are known empirically to hold *more* tuples than uniform GK
  // on uniform streams — newborn tuples are at their invariant cap and only
  // merge once n grows — so the test asserts sublinearity, not dominance.)
  CkmsQuantile ckms({{0.99, 0.001}});
  auto data = UniformStream(100000, 4);
  for (double v : data) ckms.Add(v);
  EXPECT_LT(ckms.SummarySize(), data.size() / 10);
}

TEST(CkmsQuantileTest, HandlesDuplicateHeavyValues) {
  CkmsQuantile ckms({{0.5, 0.01}});
  for (int i = 0; i < 50000; i++) ckms.Add(42.0);
  EXPECT_DOUBLE_EQ(ckms.Query(0.5), 42.0);
}

// ---------------------------------------------------------------- Frugal

TEST(Frugal1UTest, ConvergesToMedianOfIntegerStream) {
  Frugal1U frugal(0.5, 5);
  Rng rng(6);
  // Uniform integers 0..999: median ~ 500.
  for (int i = 0; i < 500000; i++) {
    frugal.Add(static_cast<double>(rng.NextBounded(1000)));
  }
  EXPECT_NEAR(frugal.Estimate(), 500.0, 60.0);
}

TEST(Frugal2UTest, AdaptiveStepClosesLargeGapsQuickly) {
  // Start 10000 away from the stream's support with only 2000 updates: the
  // unit-step Frugal-1U cannot close that gap (needs >= 10000 steps), while
  // Frugal-2U's growing step must get close.
  Rng rng(7);
  Frugal1U f1(0.9, 8);
  Frugal2U f2(0.9, 9);
  f1.Add(0.0);  // Prime both with a misleading first value.
  f2.Add(0.0);
  for (int i = 0; i < 2000; i++) {
    const double v = 10000.0 + static_cast<double>(rng.NextBounded(1000));
    f1.Add(v);
    f2.Add(v);
  }
  const double target = 10900.0;
  EXPECT_GT(std::fabs(f1.Estimate() - target), 7000.0);   // 1U still far.
  EXPECT_LT(std::fabs(f2.Estimate() - target), 1000.0);   // 2U caught up.
}

TEST(Frugal2UTest, TracksQuantileOfGaussian) {
  Frugal2U frugal(0.75, 10);
  Rng rng(11);
  for (int i = 0; i < 500000; i++) {
    frugal.Add(rng.NextGaussian() * 100.0 + 1000.0);
  }
  // True p75 of N(1000, 100) = 1000 + 0.6745 * 100 ~ 1067.
  EXPECT_NEAR(frugal.Estimate(), 1067.0, 50.0);
}

// --------------------------------------------------------------- TDigest

TEST(TDigestTest, MedianOfUniform) {
  TDigest digest(100);
  auto data = UniformStream(100000, 12);
  for (double v : data) digest.Add(v);
  auto sorted = data;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NEAR(digest.Quantile(0.5), sorted[50000], 10.0);
}

TEST(TDigestTest, TailQuantilesAreTight) {
  TDigest digest(100);
  auto data = GaussianStream(200000, 13);
  for (double v : data) digest.Add(v);
  auto sorted = data;
  std::sort(sorted.begin(), sorted.end());
  // Rank error at p999 should be small (t-digest's selling point).
  const double q999 = digest.Quantile(0.999);
  const double rank = RankOf(sorted, q999);
  EXPECT_NEAR(rank / data.size(), 0.999, 0.0015);
}

TEST(TDigestTest, ExtremesExact) {
  TDigest digest(50);
  auto data = UniformStream(50000, 14);
  for (double v : data) digest.Add(v);
  auto minmax = std::minmax_element(data.begin(), data.end());
  EXPECT_DOUBLE_EQ(digest.Quantile(0.0), *minmax.first);
  EXPECT_DOUBLE_EQ(digest.Quantile(1.0), *minmax.second);
  EXPECT_DOUBLE_EQ(digest.Min(), *minmax.first);
  EXPECT_DOUBLE_EQ(digest.Max(), *minmax.second);
}

TEST(TDigestTest, CentroidCountBounded) {
  TDigest digest(100);
  for (int i = 0; i < 500000; i++) {
    digest.Add(static_cast<double>(i % 1000));
  }
  EXPECT_LT(digest.NumCentroids(), 250u);  // ~2 * compression.
}

TEST(TDigestTest, CdfIsMonotoneAndCalibrated) {
  TDigest digest(100);
  auto data = GaussianStream(100000, 15);
  for (double v : data) digest.Add(v);
  double prev = -1.0;
  for (double x = 0.0; x <= 100.0; x += 5.0) {
    const double c = digest.Cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  // CDF at the true mean (50) should be ~0.5.
  EXPECT_NEAR(digest.Cdf(50.0), 0.5, 0.02);
}

TEST(TDigestTest, MergePreservesQuantiles) {
  TDigest a(100);
  TDigest b(100);
  TDigest whole(100);
  auto data = UniformStream(100000, 16);
  for (size_t i = 0; i < data.size(); i++) {
    (i % 2 == 0 ? a : b).Add(data[i]);
    whole.Add(data[i]);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(a.Quantile(q), whole.Quantile(q), 15.0) << q;
  }
}

// ------------------------------------------------- SlidingWindowQuantile

TEST(SlidingWindowQuantileTest, TracksWindowedDistributionShift) {
  // Values jump from ~N(100, 5) to ~N(500, 5): the windowed median must
  // follow while a whole-stream digest stays in between.
  SlidingWindowQuantile swq(2000, 8, 100.0);
  TDigest whole(100.0);
  Rng rng(71);
  for (int i = 0; i < 10000; i++) {
    const double v = (i < 5000 ? 100.0 : 500.0) + 5.0 * rng.NextGaussian();
    swq.Add(v);
    whole.Add(v);
  }
  EXPECT_NEAR(swq.Quantile(0.5), 500.0, 10.0);
  EXPECT_NEAR(whole.Quantile(0.5), 300.0, 210.0);  // Mixture median.
}

TEST(SlidingWindowQuantileTest, MatchesExactWindowQuantiles) {
  SlidingWindowQuantile swq(4096, 8, 100.0);
  std::deque<double> window;
  Rng rng(73);
  for (int i = 0; i < 20000; i++) {
    const double v = rng.NextDouble() * 1000.0;
    swq.Add(v);
    window.push_back(v);
    if (window.size() > 4096) window.pop_front();
  }
  // Compare against the exact covered span (pane granularity differs from
  // the nominal window by at most one pane).
  std::vector<double> covered(window.end() - swq.CoveredCount(),
                              window.end());
  std::sort(covered.begin(), covered.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double expected =
        covered[static_cast<size_t>(q * (covered.size() - 1))];
    EXPECT_NEAR(swq.Quantile(q), expected, 25.0) << q;
  }
}

TEST(SlidingWindowQuantileTest, SpaceBounded) {
  SlidingWindowQuantile swq(100000, 10, 100.0);
  Rng rng(79);
  for (int i = 0; i < 300000; i++) swq.Add(rng.NextGaussian());
  // ~10 panes x ~2*compression centroids << window.
  EXPECT_LT(swq.TotalCentroids(), 3000u);
}

TEST(TDigestTest, WeightedInsertions) {
  TDigest digest(100);
  digest.Add(10.0, 900.0);
  digest.Add(20.0, 100.0);
  // p50 lies inside the weight-900 mass at value 10.
  EXPECT_NEAR(digest.Quantile(0.5), 10.0, 1.0);
  EXPECT_DOUBLE_EQ(digest.TotalWeight(), 1000.0);
}

}  // namespace
}  // namespace streamlib
