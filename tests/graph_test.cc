#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/graph/graph_algorithms.h"
#include "core/graph/graph_sketch.h"
#include "core/graph/triangle_counter.h"
#include "workload/graph_stream.h"

namespace streamlib {
namespace {

TEST(ExactTriangleCounterTest, CountsCliqueTriangles) {
  // K5 has C(5,3) = 10 triangles.
  ExactTriangleCounter counter;
  for (uint32_t u = 0; u < 5; u++) {
    for (uint32_t v = u + 1; v < 5; v++) counter.AddEdge(u, v);
  }
  EXPECT_EQ(counter.Triangles(), 10u);
}

TEST(ExactTriangleCounterTest, DuplicateEdgesIgnored) {
  ExactTriangleCounter counter;
  counter.AddEdge(0, 1);
  counter.AddEdge(1, 2);
  counter.AddEdge(0, 2);
  counter.AddEdge(0, 2);  // Duplicate.
  counter.AddEdge(2, 0);  // Duplicate, reversed.
  EXPECT_EQ(counter.Triangles(), 1u);
}

TEST(TriangleCounterTest, ExactWhileSampleHoldsEverything) {
  // Budget exceeds the stream: TRIEST degenerates to exact counting.
  workload::GraphStreamGenerator gen(200, 1);
  auto edges = gen.StreamWithPlantedTriangles(500, 100);
  TriangleCounter approx(100000, 2);
  ExactTriangleCounter exact;
  for (const auto& e : edges) {
    approx.AddEdge(e.u, e.v);
    exact.AddEdge(e.u, e.v);
  }
  EXPECT_DOUBLE_EQ(approx.Estimate(), static_cast<double>(exact.Triangles()));
}

TEST(TriangleCounterTest, EstimateWithinToleranceUnderSampling) {
  workload::GraphStreamGenerator gen(2000, 3);
  auto edges = gen.StreamWithPlantedTriangles(20000, 3000);
  ExactTriangleCounter exact;
  for (const auto& e : edges) exact.AddEdge(e.u, e.v);
  const double truth = static_cast<double>(exact.Triangles());

  // Average several independent runs (the estimator is unbiased).
  double sum = 0.0;
  const int kRuns = 5;
  for (int run = 0; run < kRuns; run++) {
    TriangleCounter approx(5000, 100 + run);
    for (const auto& e : edges) approx.AddEdge(e.u, e.v);
    sum += approx.Estimate();
  }
  EXPECT_NEAR(sum / kRuns, truth, truth * 0.25);
}

TEST(TriangleCounterTest, MemoryBounded) {
  workload::GraphStreamGenerator gen(5000, 5);
  TriangleCounter counter(1000, 6);
  for (const auto& e : gen.RandomStream(100000)) counter.AddEdge(e.u, e.v);
  EXPECT_LE(counter.sample_size(), 1000u);
}

TEST(GreedyMatchingTest, ProducesValidMatching) {
  workload::GraphStreamGenerator gen(1000, 7);
  GreedyMatching matching;
  for (const auto& e : gen.RandomStream(20000)) matching.AddEdge(e.u, e.v);
  // No vertex appears twice.
  std::set<uint32_t> seen;
  for (const auto& [u, v] : matching.matching()) {
    EXPECT_TRUE(seen.insert(u).second);
    EXPECT_TRUE(seen.insert(v).second);
  }
}

TEST(GreedyMatchingTest, PerfectMatchingOnDisjointEdges) {
  GreedyMatching matching;
  for (uint32_t i = 0; i < 100; i++) {
    EXPECT_TRUE(matching.AddEdge(2 * i, 2 * i + 1));
  }
  EXPECT_EQ(matching.Size(), 100u);
}

TEST(GreedyMatchingTest, TwoApproximationOnStar) {
  // Star K_{1,50}: maximum matching = 1; greedy takes exactly 1.
  GreedyMatching matching;
  for (uint32_t leaf = 1; leaf <= 50; leaf++) {
    matching.AddEdge(0, leaf);
  }
  EXPECT_EQ(matching.Size(), 1u);
}

TEST(GreedyMatchingTest, VertexCoverCoversAllEdges) {
  workload::GraphStreamGenerator gen(500, 8);
  auto edges = gen.RandomStream(5000);
  GreedyMatching matching;
  for (const auto& e : edges) matching.AddEdge(e.u, e.v);
  std::set<uint32_t> cover;
  for (uint32_t v : matching.VertexCover()) cover.insert(v);
  for (const auto& e : edges) {
    EXPECT_TRUE(cover.count(e.u) || cover.count(e.v));
  }
}

TEST(IncrementalComponentsTest, TracksComponentCount) {
  IncrementalComponents cc;
  cc.AddEdge(0, 1);
  cc.AddEdge(2, 3);
  EXPECT_EQ(cc.NumComponents(), 2u);
  EXPECT_FALSE(cc.Connected(0, 2));
  cc.AddEdge(1, 2);
  EXPECT_EQ(cc.NumComponents(), 1u);
  EXPECT_TRUE(cc.Connected(0, 3));
}

TEST(IncrementalComponentsTest, RedundantEdgesDoNotMerge) {
  IncrementalComponents cc;
  EXPECT_TRUE(cc.AddEdge(0, 1));
  EXPECT_FALSE(cc.AddEdge(0, 1));
  EXPECT_FALSE(cc.AddEdge(1, 0));
  EXPECT_EQ(cc.NumComponents(), 1u);
}

TEST(IncrementalComponentsTest, ChainConnectsEnds) {
  IncrementalComponents cc;
  for (uint32_t i = 0; i < 9999; i++) cc.AddEdge(i, i + 1);
  EXPECT_TRUE(cc.Connected(0, 9999));
  EXPECT_EQ(cc.NumComponents(), 1u);
}

TEST(DynamicPathOracleTest, BoundedDistanceOnPathGraph) {
  DynamicPathOracle oracle;
  for (uint32_t i = 0; i < 20; i++) oracle.AddEdge(i, i + 1);
  EXPECT_EQ(oracle.BoundedDistance(0, 5, 10), 5u);
  EXPECT_TRUE(oracle.HasPathWithin(0, 5, 5));
  EXPECT_FALSE(oracle.HasPathWithin(0, 5, 4));
  EXPECT_FALSE(oracle.HasPathWithin(0, 20, 19));
  EXPECT_TRUE(oracle.HasPathWithin(0, 20, 20));
}

TEST(DynamicPathOracleTest, DynamicInsertionShortensPaths) {
  DynamicPathOracle oracle;
  for (uint32_t i = 0; i < 10; i++) oracle.AddEdge(i, i + 1);
  EXPECT_EQ(oracle.BoundedDistance(0, 10, 20), 10u);
  oracle.AddEdge(0, 10);  // Shortcut appears dynamically.
  EXPECT_EQ(oracle.BoundedDistance(0, 10, 20), 1u);
}

TEST(DynamicPathOracleTest, DisconnectedVertices) {
  DynamicPathOracle oracle;
  oracle.AddEdge(0, 1);
  oracle.AddEdge(5, 6);
  EXPECT_FALSE(oracle.HasPathWithin(0, 6, 100));
}

// ------------------------------------------------------------- Spanner

TEST(GreedySpannerTest, StretchBoundHolds) {
  // Build exact distances alongside; every original edge's endpoints must
  // be within `stretch` hops in the spanner.
  const uint32_t kStretch = 3;
  GreedySpanner spanner(kStretch);
  workload::GraphStreamGenerator gen(300, 401);
  auto edges = gen.RandomStream(3000);
  for (const auto& e : edges) spanner.AddEdge(e.u, e.v);
  for (size_t i = 0; i < edges.size(); i += 37) {
    EXPECT_LE(spanner.SpannerDistance(edges[i].u, edges[i].v, kStretch),
              kStretch)
        << i;
  }
}

TEST(GreedySpannerTest, SparsifiesDenseStreams) {
  GreedySpanner spanner(3);
  workload::GraphStreamGenerator gen(200, 403);
  for (const auto& e : gen.RandomStream(20000)) spanner.AddEdge(e.u, e.v);
  // 20k stream edges over 200 vertices: the spanner keeps a small fraction.
  EXPECT_LT(spanner.SpannerEdges(), 4000u);
  EXPECT_EQ(spanner.StreamEdges(), 20000u);
}

TEST(GreedySpannerTest, StretchOneKeepsOnlyNewConnections) {
  // t=1: an edge is kept iff the endpoints are not already adjacent —
  // i.e. duplicate suppression.
  GreedySpanner spanner(1);
  EXPECT_TRUE(spanner.AddEdge(0, 1));
  EXPECT_FALSE(spanner.AddEdge(0, 1));
  EXPECT_TRUE(spanner.AddEdge(1, 2));
  EXPECT_TRUE(spanner.AddEdge(0, 2));  // Distance 2 > 1: kept.
}

TEST(GreedySpannerTest, LargerStretchKeepsFewerEdges) {
  size_t kept[2];
  const uint32_t stretches[2] = {2, 6};
  for (int which = 0; which < 2; which++) {
    GreedySpanner spanner(stretches[which]);
    workload::GraphStreamGenerator gen(150, 405);
    for (const auto& e : gen.RandomStream(8000)) spanner.AddEdge(e.u, e.v);
    kept[which] = spanner.SpannerEdges();
  }
  EXPECT_LT(kept[1], kept[0]);
}

// ----------------------------------------------------------- L0 sampling

TEST(L0SamplerTest, RecoversSingleCoordinate) {
  L0Sampler sampler(1 << 20, 7);
  sampler.Update(123456, 1);
  auto sample = sampler.Sample();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(*sample, 123456u);
}

TEST(L0SamplerTest, DeletionsCancelExactly) {
  L0Sampler sampler(1 << 16, 9);
  Rng rng(11);
  std::vector<uint64_t> coords;
  for (int i = 0; i < 500; i++) {
    const uint64_t c = rng.NextBounded(1 << 16);
    coords.push_back(c);
    sampler.Update(c, 1);
  }
  for (uint64_t c : coords) sampler.Update(c, -1);
  EXPECT_FALSE(sampler.Sample().has_value());  // Vector is exactly zero.
}

TEST(L0SamplerTest, SamplesAValidNonzeroCoordinate) {
  std::set<uint64_t> inserted;
  L0Sampler sampler(1 << 18, 13);
  Rng rng(17);
  while (inserted.size() < 1000) {
    const uint64_t c = rng.NextBounded(1 << 18);
    if (inserted.insert(c).second) sampler.Update(c, 1);
  }
  auto sample = sampler.Sample();
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(inserted.count(*sample)) << *sample;
}

TEST(L0SamplerTest, MergeIsLinear) {
  L0Sampler a(1 << 12, 19);
  L0Sampler b(1 << 12, 19);
  a.Update(100, 1);
  b.Update(100, -1);  // Cancels across the merge.
  b.Update(200, 1);
  ASSERT_TRUE(a.Merge(b).ok());
  auto sample = a.Sample();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(*sample, 200u);
}

TEST(L0SamplerTest, MergeSeedMismatchRejected) {
  L0Sampler a(1 << 12, 1);
  L0Sampler b(1 << 12, 2);
  EXPECT_FALSE(a.Merge(b).ok());
}

// ------------------------------------------------------ AGM connectivity

TEST(AgmConnectivityTest, PathGraphIsOneComponent) {
  AgmConnectivitySketch sketch(64, 1);
  for (uint32_t i = 0; i + 1 < 64; i++) sketch.AddEdge(i, i + 1);
  EXPECT_EQ(sketch.NumComponents(), 1u);
  EXPECT_TRUE(sketch.Connected(0, 63));
}

TEST(AgmConnectivityTest, BridgeInsertAndDelete) {
  AgmConnectivitySketch sketch(32, 2);
  for (uint32_t i = 0; i < 16; i++) {
    for (uint32_t j = i + 1; j < 16; j++) sketch.AddEdge(i, j);
  }
  for (uint32_t i = 16; i < 32; i++) {
    for (uint32_t j = i + 1; j < 32; j++) sketch.AddEdge(i, j);
  }
  EXPECT_EQ(sketch.NumComponents(), 2u);
  EXPECT_FALSE(sketch.Connected(0, 20));
  sketch.AddEdge(3, 20);
  EXPECT_EQ(sketch.NumComponents(), 1u);
  EXPECT_TRUE(sketch.Connected(0, 20));
  // The deletion no combinatorial one-pass structure supports:
  sketch.RemoveEdge(3, 20);
  EXPECT_EQ(sketch.NumComponents(), 2u);
  EXPECT_FALSE(sketch.Connected(0, 20));
}

TEST(AgmConnectivityTest, FullDeletionReturnsToIsolation) {
  AgmConnectivitySketch sketch(64, 3);
  Rng rng(4);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (int e = 0; e < 200; e++) {
    const uint32_t u = static_cast<uint32_t>(rng.NextBounded(64));
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(63));
    if (v >= u) v++;
    edges.emplace_back(u, v);
    sketch.AddEdge(u, v);
  }
  for (const auto& [u, v] : edges) sketch.RemoveEdge(u, v);
  EXPECT_EQ(sketch.NumComponents(), 64u);
}

TEST(AgmConnectivityTest, MatchesUnionFindOnInsertOnlyStreams) {
  // On insert-only streams the sketch must agree with exact union-find.
  for (uint64_t seed : {10u, 11u, 12u}) {
    AgmConnectivitySketch sketch(48, seed);
    IncrementalComponents exact;
    for (uint32_t v = 0; v < 48; v++) exact.Find(v);  // Register all.
    workload::GraphStreamGenerator gen(48, 100 + seed);
    for (int e = 0; e < 40; e++) {  // Sparse: several components remain.
      const auto edge = gen.NextRandomEdge();
      sketch.AddEdge(edge.u, edge.v);
      exact.AddEdge(edge.u, edge.v);
    }
    EXPECT_EQ(sketch.NumComponents(), exact.NumComponents()) << seed;
  }
}

}  // namespace
}  // namespace streamlib
