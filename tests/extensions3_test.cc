#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/sequence/sequence_miner.h"
#include "core/wavelet/haar_wavelet.h"
#include "workload/zipf.h"

namespace streamlib {
namespace {

// ----------------------------------------------------------- SequenceMiner

TEST(SequenceMinerTest, CountsSimpleTraversals) {
  SequenceMiner miner(3, 100, 10);
  for (int rep = 0; rep < 50; rep++) {
    miner.Visit(1, "home");
    miner.Visit(1, "search");
    miner.Visit(1, "product");
  }
  EXPECT_EQ(miner.Estimate("home>search"), 50u);
  EXPECT_EQ(miner.Estimate("search>product"), 50u);
  EXPECT_EQ(miner.Estimate("home>search>product"), 50u);
  // The wrap-around bigram also occurs (product -> home), once fewer.
  EXPECT_EQ(miner.Estimate("product>home"), 49u);
}

TEST(SequenceMinerTest, SessionsAreIndependent) {
  SequenceMiner miner(2, 100, 10);
  miner.Visit(1, "a");
  miner.Visit(2, "x");
  miner.Visit(1, "b");  // Session 1: a>b.
  miner.Visit(2, "y");  // Session 2: x>y.
  EXPECT_EQ(miner.Estimate("a>b"), 1u);
  EXPECT_EQ(miner.Estimate("x>y"), 1u);
  EXPECT_EQ(miner.Estimate("a>y"), 0u);  // No cross-session patterns.
  EXPECT_EQ(miner.Estimate("x>b"), 0u);
}

TEST(SequenceMinerTest, TopSequencesSurfaceTheCommonFunnel) {
  SequenceMiner miner(3, 500, 100);
  workload::ZipfGenerator page_picker(50, 1.0, 1);
  Rng rng(2);
  // 80 sessions browse randomly; every 5th session follows the funnel.
  for (uint64_t s = 0; s < 80; s++) {
    if (s % 5 == 0) {
      miner.Visit(s, "landing");
      miner.Visit(s, "signup");
      miner.Visit(s, "purchase");
    }
    for (int i = 0; i < 20; i++) {
      miner.Visit(s, "page" + std::to_string(page_picker.Next()));
    }
  }
  auto top = miner.TopSequences(30);
  bool funnel_found = false;
  for (const auto& item : top) {
    if (item.key == "landing>signup>purchase") funnel_found = true;
  }
  EXPECT_TRUE(funnel_found);
}

TEST(SequenceMinerTest, SessionLruBoundHolds) {
  SequenceMiner miner(2, 100, 5);
  for (uint64_t s = 0; s < 100; s++) {
    miner.Visit(s, "only");
  }
  EXPECT_LE(miner.active_sessions(), 5u);
}

// ------------------------------------------------------ Wavelet range sum

TEST(HaarRangeSumTest, FullSynopsisIsExact) {
  Rng rng(3);
  std::vector<double> signal(128);
  for (auto& v : signal) v = rng.NextGaussian() * 10.0;
  auto coeffs = HaarWavelet::Transform(signal);
  auto full = HaarWavelet::TopK(coeffs, coeffs.size());
  for (auto [a, b] : std::vector<std::pair<size_t, size_t>>{
           {0, 128}, {0, 1}, {5, 9}, {64, 128}, {17, 95}}) {
    double exact = 0;
    for (size_t i = a; i < b; i++) exact += signal[i];
    EXPECT_NEAR(HaarWavelet::RangeSum(full, 128, a, b), exact, 1e-8)
        << a << " " << b;
  }
}

TEST(HaarRangeSumTest, SparseSynopsisApproximatesSmoothSignals) {
  // Piecewise-constant signal: tiny synopsis answers range sums exactly.
  std::vector<double> signal(256);
  for (size_t i = 0; i < 256; i++) {
    signal[i] = i < 96 ? 10.0 : i < 192 ? -4.0 : 7.0;
  }
  auto coeffs = HaarWavelet::Transform(signal);
  auto sparse = HaarWavelet::TopK(coeffs, 12);
  for (auto [a, b] : std::vector<std::pair<size_t, size_t>>{
           {0, 96}, {96, 192}, {50, 150}, {0, 256}}) {
    double exact = 0;
    for (size_t i = a; i < b; i++) exact += signal[i];
    EXPECT_NEAR(HaarWavelet::RangeSum(sparse, 256, a, b), exact,
                std::fabs(exact) * 0.05 + 20.0)
        << a << " " << b;
  }
}

TEST(HaarRangeSumTest, EmptyRangeIsZero) {
  std::vector<double> signal(64, 5.0);
  auto synopsis = HaarWavelet::TopK(HaarWavelet::Transform(signal), 4);
  EXPECT_DOUBLE_EQ(HaarWavelet::RangeSum(synopsis, 64, 10, 10), 0.0);
}

}  // namespace
}  // namespace streamlib
