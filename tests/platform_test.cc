#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/state.h"
#include "core/cardinality/hyperloglog.h"
#include "core/frequency/count_min_sketch.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/queue.h"
#include "platform/replayable_log.h"
#include "platform/stream_operators.h"
#include "platform/topology.h"
#include "platform/tuple.h"

namespace streamlib::platform {
namespace {

// ------------------------------------------------------------------ Tuple

TEST(TupleTest, TypedAccessors) {
  Tuple t = Tuple::Of(std::string("word"), int64_t{7}, 3.5, true);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.Str(0), "word");
  EXPECT_EQ(t.Int(1), 7);
  EXPECT_DOUBLE_EQ(t.Double(2), 3.5);
  EXPECT_TRUE(t.Bool(3));
  EXPECT_EQ(t.ToString(), "(word, 7, 3.500000, true)");
}

TEST(TupleTest, ValueHashingIsStableAndTyped) {
  EXPECT_EQ(HashOfValue(Value{std::string("x")}),
            HashOfValue(Value{std::string("x")}));
  EXPECT_NE(HashOfValue(Value{int64_t{1}}), HashOfValue(Value{int64_t{2}}));
  // Same bit pattern, different type -> different hash.
  EXPECT_NE(HashOfValue(Value{int64_t{1}}), HashOfValue(Value{true}));
}

// ------------------------------------------------------------------ Queue

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q(10);
  for (int i = 0; i < 5; i++) ASSERT_TRUE(q.Push(i));
  for (int i = 0; i < 5; i++) EXPECT_EQ(*q.Pop(), i);
}

TEST(BlockingQueueTest, TryPushRespectsCapacity) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
}

TEST(BlockingQueueTest, CloseDrainsThenStops) {
  BlockingQueue<int> q(10);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, BlockedProducerWakesOnConsume) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);  // Blocks until the consumer pops.
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  BlockingQueue<int> q(64);
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> threads;
  const int kPerProducer = 10000;
  for (int p = 0; p < 4; p++) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; i++) q.Push(p * kPerProducer + i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; c++) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) sum += *v;
    });
  }
  for (auto& t : threads) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  const int64_t n = 4 * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// --------------------------------------------------------------- Topology

TEST(TopologyBuilderTest, RejectsDuplicateNames) {
  TopologyBuilder builder;
  builder.AddSpout("s", [] { return nullptr; });
  builder.AddSpout("s", [] { return nullptr; });
  EXPECT_FALSE(builder.Build().ok());
}

TEST(TopologyBuilderTest, RejectsUnknownSource) {
  TopologyBuilder builder;
  builder.AddSpout("s", [] { return nullptr; });
  builder.AddBolt("b", [] { return nullptr; }, 1,
                  {{"nonexistent", Grouping::Shuffle()}});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(TopologyBuilderTest, RejectsBoltWithoutInputs) {
  TopologyBuilder builder;
  builder.AddBolt("b", [] { return nullptr; }, 1, {});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(TopologyBuilderTest, RejectsCycles) {
  TopologyBuilder builder;
  builder.AddBolt("a", [] { return nullptr; }, 1,
                  {{"b", Grouping::Shuffle()}});
  builder.AddBolt("b", [] { return nullptr; }, 1,
                  {{"a", Grouping::Shuffle()}});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(TopologyBuilderTest, TopologicalOrder) {
  TopologyBuilder builder;
  builder.AddBolt("sink", [] { return nullptr; }, 1,
                  {{"mid", Grouping::Shuffle()}});
  builder.AddBolt("mid", [] { return nullptr; }, 1,
                  {{"src", Grouping::Shuffle()}});
  builder.AddSpout("src", [] { return nullptr; });
  auto result = builder.Build();
  ASSERT_TRUE(result.ok());
  const auto& comps = result.value().components();
  EXPECT_EQ(comps[0].name, "src");
  EXPECT_EQ(comps[1].name, "mid");
  EXPECT_EQ(comps[2].name, "sink");
}

// ----------------------------------------------------------------- Engine

// Builds a counting-words topology: number spout -> "word" mapper ->
// fields-grouped counter -> global sink collecting (word, count) results.
struct WordCountResult {
  std::map<std::string, int64_t> counts;
};

Topology WordCountTopology(uint64_t n_tuples, uint32_t mapper_parallelism,
                           uint32_t counter_parallelism, TupleSink* sink) {
  TopologyBuilder builder;
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  builder.AddSpout(
      "numbers",
      [counter, n_tuples]() -> std::unique_ptr<Spout> {
        return std::make_unique<GeneratorSpout>(
            [counter, n_tuples]() -> std::optional<Tuple> {
              const uint64_t i = counter->fetch_add(1);
              if (i >= n_tuples) return std::nullopt;
              return Tuple::Of(static_cast<int64_t>(i));
            });
      },
      1);
  builder.AddBolt(
      "words",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple& in, OutputCollector* out) {
              out->Emit(Tuple::Of("word" + std::to_string(in.Int(0) % 10)));
            });
      },
      mapper_parallelism, {{"numbers", Grouping::Shuffle()}});
  builder.AddBolt(
      "count", []() -> std::unique_ptr<Bolt> {
        return std::make_unique<CountingBolt>();
      },
      counter_parallelism, {{"words", Grouping::Fields(0)}});
  builder.AddBolt(
      "sink",
      [sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(sink);
      },
      1, {{"count", Grouping::Global()}});
  auto result = builder.Build();
  EXPECT_TRUE(result.ok());
  return result.value();
}

std::map<std::string, int64_t> RunWordCount(const EngineConfig& config,
                                            uint64_t n = 10000,
                                            uint32_t mappers = 2,
                                            uint32_t counters = 3) {
  TupleSink sink;
  TopologyEngine engine(WordCountTopology(n, mappers, counters, &sink),
                        config);
  engine.Run();
  std::map<std::string, int64_t> totals;
  for (const Tuple& t : sink.Snapshot()) {
    totals[t.Str(0)] += t.Int(1);
  }
  return totals;
}

TEST(TopologyEngineTest, WordCountDedicatedAtMostOnce) {
  EngineConfig config;
  config.mode = ExecutionMode::kDedicated;
  config.semantics = DeliverySemantics::kAtMostOnce;
  auto totals = RunWordCount(config);
  ASSERT_EQ(totals.size(), 10u);
  for (const auto& [word, count] : totals) {
    EXPECT_EQ(count, 1000) << word;  // 10000 tuples over 10 words.
  }
}

TEST(TopologyEngineTest, WordCountMultiplexed) {
  EngineConfig config;
  config.mode = ExecutionMode::kMultiplexed;
  config.multiplexed_threads = 2;
  auto totals = RunWordCount(config);
  ASSERT_EQ(totals.size(), 10u);
  for (const auto& [word, count] : totals) {
    EXPECT_EQ(count, 1000) << word;
  }
}

TEST(TopologyEngineTest, WordCountAtLeastOnceAcksEverything) {
  EngineConfig config;
  config.mode = ExecutionMode::kDedicated;
  config.semantics = DeliverySemantics::kAtLeastOnce;
  TupleSink sink;
  TopologyEngine engine(WordCountTopology(5000, 2, 2, &sink), config);
  engine.Run();
  EXPECT_EQ(engine.completed_roots(), 5000u);
  EXPECT_EQ(engine.failed_roots(), 0u);
}

TEST(TopologyEngineTest, FieldsGroupingPartitionsByKey) {
  // Each distinct key must land on exactly one counter task: with the
  // counter bolt keeping local maps, per-key counts must be exact (no key
  // split across tasks).
  EngineConfig config;
  for (uint32_t counters : {1u, 2u, 7u}) {
    auto totals = RunWordCount(config, 20000, 3, counters);
    ASSERT_EQ(totals.size(), 10u);
    for (const auto& [word, count] : totals) {
      EXPECT_EQ(count, 2000) << word << " counters=" << counters;
    }
  }
}

TEST(TopologyEngineTest, BroadcastDuplicatesToAllTasks) {
  TupleSink sink;
  TopologyBuilder builder;
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  builder.AddSpout("src", [counter]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= 100) return std::nullopt;
          return Tuple::Of(static_cast<int64_t>(i));
        });
  });
  builder.AddBolt(
      "bcast",
      [&sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(&sink);
      },
      4, {{"src", Grouping::Broadcast()}});
  TopologyEngine engine(builder.Build().value(), EngineConfig{});
  engine.Run();
  EXPECT_EQ(sink.Size(), 400u);  // 100 tuples x 4 tasks.
}

TEST(TopologyEngineTest, GlobalGroupingSingleTask) {
  // With global grouping into a parallel bolt, only task 0 sees data; a
  // per-task counting bolt emits one entry per key from one task only.
  EngineConfig config;
  TupleSink sink;
  TopologyBuilder builder;
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  builder.AddSpout("src", [counter]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= 1000) return std::nullopt;
          return Tuple::Of(std::string("k"));
        });
  });
  builder.AddBolt(
      "count", []() -> std::unique_ptr<Bolt> {
        return std::make_unique<CountingBolt>();
      },
      4, {{"src", Grouping::Global()}});
  builder.AddBolt(
      "sink",
      [&sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(&sink);
      },
      1, {{"count", Grouping::Global()}});
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();
  auto tuples = sink.Snapshot();
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].Int(1), 1000);
}

TEST(TopologyEngineTest, BackpressureStallsAreCounted) {
  // Tiny queues + slow consumer => producers must hit backpressure.
  EngineConfig config;
  config.queue_capacity = 4;
  TupleSink sink;
  TopologyBuilder builder;
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  builder.AddSpout("fast", [counter]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= 2000) return std::nullopt;
          return Tuple::Of(static_cast<int64_t>(i));
        });
  });
  builder.AddBolt(
      "slow",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [](const Tuple&, OutputCollector*) {
              std::this_thread::sleep_for(std::chrono::microseconds(20));
            });
      },
      1, {{"fast", Grouping::Shuffle()}});
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();
  EXPECT_GT(engine.metrics().ForComponent("fast").backpressure_stalls(), 0u);
  EXPECT_EQ(engine.metrics().ForComponent("slow").executed(), 2000u);
}

TEST(TopologyEngineTest, MetricsCountEmittedAndExecuted) {
  EngineConfig config;
  TupleSink sink;
  TopologyEngine engine(WordCountTopology(3000, 2, 2, &sink), config);
  engine.Run();
  auto& m = engine.metrics();
  EXPECT_EQ(m.ForComponent("numbers").emitted(), 3000u);
  EXPECT_EQ(m.ForComponent("words").executed(), 3000u);
  EXPECT_EQ(m.ForComponent("count").executed(), 3000u);
  EXPECT_GE(m.ForComponent("words").LatencyPercentileNanos(0.5), 0.0);
}

// Fault injection: a bolt that drops (never processes) a fraction of
// tuples. With at-least-once + LogReplaySpout, every offset must still be
// delivered at least once.
class DroppingBolt : public Bolt {
 public:
  DroppingBolt(double drop_probability, uint64_t seed, TupleSink* sink)
      : drop_probability_(drop_probability), rng_(seed), sink_(sink) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    if (rng_.NextBool(drop_probability_)) return;  // Swallow: no downstream.
    sink_->Append(input);
  }

 private:
  double drop_probability_;
  Rng rng_;
  TupleSink* sink_;
};

TEST(TopologyEngineTest, AtLeastOnceReplaysThroughLogSpout) {
  // DroppingBolt swallowing tuples does NOT fail the ack tree (it acks by
  // finishing Execute) — instead we test replay by killing tuples between
  // spout and a sink that only acks some: here we simulate loss by having
  // the dropping bolt *be* the leaf. A swallowed tuple still acks, so to
  // exercise OnFail we use a bolt that emits to a closed... Simplest
  // failure mode the engine supports: tuples that take longer than the ack
  // timeout. We use a tiny timeout plus a slow path for a fraction of
  // tuples, and verify the spout sees OnFail + redelivers.
  ReplayableLog log;
  for (int i = 0; i < 300; i++) {
    log.Append(Tuple::Of(static_cast<int64_t>(i)));
  }
  TupleSink sink;
  auto spout_holder = std::make_shared<LogReplaySpout*>(nullptr);
  // Slow exactly once per offset: the first delivery of offsets % 50 == 7
  // exceeds the ack timeout (forcing OnFail + replay); the redelivery is
  // fast and completes.
  auto attempts = std::make_shared<std::array<std::atomic<int>, 300>>();

  TopologyBuilder builder;
  builder.AddSpout("log", [&log, spout_holder]() -> std::unique_ptr<Spout> {
    auto spout = std::make_unique<LogReplaySpout>(&log, 0, UINT64_MAX);
    *spout_holder = spout.get();
    return spout;
  });
  builder.AddBolt(
      "work",
      [&sink, attempts]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [&sink, attempts](const Tuple& in, OutputCollector*) {
              const auto offset = static_cast<size_t>(in.Int(0));
              if (offset % 50 == 7 &&
                  (*attempts)[offset].fetch_add(1) == 0) {
                std::this_thread::sleep_for(std::chrono::milliseconds(120));
              }
              sink.Append(in);
            });
      },
      4, {{"log", Grouping::Shuffle()}});

  EngineConfig config;
  config.semantics = DeliverySemantics::kAtLeastOnce;
  config.ack_timeout_seconds = 0.05;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  // Every offset was delivered at least once.
  std::vector<int> delivered(300, 0);
  for (const Tuple& t : sink.Snapshot()) {
    delivered[static_cast<size_t>(t.Int(0))]++;
  }
  for (int i = 0; i < 300; i++) {
    EXPECT_GE(delivered[i], 1) << "offset " << i;
  }
  // The slow tuples timed out at least once -> failures + redeliveries.
  EXPECT_GT((*spout_holder)->failed(), 0u);
  EXPECT_GT(engine.failed_roots(), 0u);
}

// Execution-mode sweep: results identical across modes and thread counts.
class EngineModeSweep
    : public ::testing::TestWithParam<std::pair<ExecutionMode, uint32_t>> {};

TEST_P(EngineModeSweep, WordCountCorrectInAllModes) {
  EngineConfig config;
  config.mode = GetParam().first;
  config.multiplexed_threads = GetParam().second;
  auto totals = RunWordCount(config, 5000, 2, 2);
  int64_t sum = 0;
  for (const auto& [word, count] : totals) sum += count;
  EXPECT_EQ(sum, 5000);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, EngineModeSweep,
    ::testing::Values(std::pair{ExecutionMode::kDedicated, 0u},
                      std::pair{ExecutionMode::kMultiplexed, 1u},
                      std::pair{ExecutionMode::kMultiplexed, 2u},
                      std::pair{ExecutionMode::kMultiplexed, 4u}));

// ------------------------------------------------------- Fused batch path

// Spout of n int64 keys -> one SketchBolt<CountMinSketch> shard pair ->
// global combiner capturing the merged blob. Used to pin down the fused
// ExecuteBatch path: same topology, enable_bolt_batch toggled.
std::vector<uint8_t> RunSketchTopology(const EngineConfig& config, uint64_t n,
                                       bool with_batch_fn) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  auto blob = std::make_shared<std::vector<uint8_t>>();
  TopologyBuilder builder;
  builder.AddSpout("keys", [counter, n]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter, n]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= n) return std::nullopt;
          return Tuple::Of(static_cast<int64_t>(i % 257));
        });
  });
  builder.AddBolt(
      "acc",
      [with_batch_fn]() -> std::unique_ptr<Bolt> {
        auto update = [](CountMinSketch& sketch, const Tuple& t) {
          sketch.Add(static_cast<uint64_t>(t.Int(0)));
        };
        if (with_batch_fn) {
          return std::make_unique<SketchBolt<CountMinSketch>>(
              CountMinSketch(1024, 4), update,
              FieldKeyBatchUpdate<CountMinSketch>(0));
        }
        return std::make_unique<SketchBolt<CountMinSketch>>(
            CountMinSketch(1024, 4), update);
      },
      2, {{"keys", Grouping::Fields(0)}});
  builder.AddBolt(
      "merge",
      [blob]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchCombinerBolt<CountMinSketch>>(
            CountMinSketch(1024, 4),
            [blob](const CountMinSketch& merged, OutputCollector*) {
              *blob = state::ToBlob(merged);
            });
      },
      1, {{"acc", Grouping::Global()}});
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();
  return *blob;
}

TEST(TopologyEngineTest, FusedBatchPathMatchesPerTupleState) {
  const uint64_t n = 20000;
  // Reference: per-tuple Execute only (fused path disabled).
  EngineConfig scalar_config;
  scalar_config.enable_bolt_batch = false;
  const auto reference = RunSketchTopology(scalar_config, n, false);
  ASSERT_FALSE(reference.empty());
  // Fused ExecuteBatch with the batched kernel fn, and fused with the
  // default per-tuple fallback loop: both must land on the same bytes.
  EngineConfig fused_config;
  fused_config.enable_bolt_batch = true;
  EXPECT_EQ(RunSketchTopology(fused_config, n, true), reference);
  EXPECT_EQ(RunSketchTopology(fused_config, n, false), reference);
}

TEST(TopologyEngineTest, FusedBatchPathAcksAtLeastOnce) {
  const uint64_t n = 8000;
  EngineConfig config;
  config.semantics = DeliverySemantics::kAtLeastOnce;
  config.enable_bolt_batch = true;
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  TopologyBuilder builder;
  builder.AddSpout("keys", [counter, n]() -> std::unique_ptr<Spout> {
    return std::make_unique<GeneratorSpout>(
        [counter, n]() -> std::optional<Tuple> {
          const uint64_t i = counter->fetch_add(1);
          if (i >= n) return std::nullopt;
          return Tuple::Of(static_cast<int64_t>(i));
        });
  });
  builder.AddBolt(
      "acc",
      []() -> std::unique_ptr<Bolt> {
        return std::make_unique<SketchBolt<HyperLogLog>>(
            HyperLogLog(10, /*sparse=*/false),
            [](HyperLogLog& sketch, const Tuple& t) {
              sketch.Add(static_cast<uint64_t>(t.Int(0)));
            },
            FieldKeyBatchUpdate<HyperLogLog>(0));
      },
      2, {{"keys", Grouping::Shuffle()}});
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();
  // Every root must complete through the fused path's batched ack.
  EXPECT_EQ(engine.completed_roots(), n);
  EXPECT_EQ(engine.failed_roots(), 0u);
}

// ----------------------------------------------------------- ReplayableLog

TEST(ReplayableLogTest, AppendAndRead) {
  ReplayableLog log;
  EXPECT_EQ(log.Append(Tuple::Of(int64_t{1})), 0u);
  EXPECT_EQ(log.Append(Tuple::Of(int64_t{2})), 1u);
  EXPECT_EQ(log.Read(0)->Int(0), 1);
  EXPECT_EQ(log.Read(1)->Int(0), 2);
  EXPECT_FALSE(log.Read(2).has_value());
}

}  // namespace
}  // namespace streamlib::platform
