#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/correlation/dft_sketch.h"
#include "core/correlation/pattern_matcher.h"
#include "core/correlation/streaming_correlation.h"

namespace streamlib {
namespace {

TEST(WindowedCorrelationTest, PerfectlyCorrelatedStreams) {
  WindowedCorrelation wc(100);
  for (int i = 0; i < 1000; i++) {
    wc.Add(static_cast<double>(i % 37), static_cast<double>(i % 37) * 2.0 + 5.0);
  }
  EXPECT_NEAR(wc.Correlation(), 1.0, 1e-9);
}

TEST(WindowedCorrelationTest, AntiCorrelatedStreams) {
  WindowedCorrelation wc(100);
  for (int i = 0; i < 1000; i++) {
    const double x = static_cast<double>(i % 23);
    wc.Add(x, -3.0 * x);
  }
  EXPECT_NEAR(wc.Correlation(), -1.0, 1e-9);
}

TEST(WindowedCorrelationTest, IndependentStreamsNearZero) {
  WindowedCorrelation wc(5000);
  Rng rng(1);
  for (int i = 0; i < 10000; i++) {
    wc.Add(rng.NextGaussian(), rng.NextGaussian());
  }
  EXPECT_NEAR(wc.Correlation(), 0.0, 0.05);
}

TEST(WindowedCorrelationTest, WindowForgetsOldRegime) {
  WindowedCorrelation wc(200);
  Rng rng(2);
  // Phase 1: correlated. Phase 2: anti-correlated for >> window length.
  for (int i = 0; i < 1000; i++) {
    const double x = rng.NextGaussian();
    wc.Add(x, x + 0.1 * rng.NextGaussian());
  }
  EXPECT_GT(wc.Correlation(), 0.9);
  for (int i = 0; i < 1000; i++) {
    const double x = rng.NextGaussian();
    wc.Add(x, -x + 0.1 * rng.NextGaussian());
  }
  EXPECT_LT(wc.Correlation(), -0.9);
}

TEST(WindowedCorrelationTest, MatchesBatchPearson) {
  WindowedCorrelation wc(256);
  Rng rng(3);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 1000; i++) {
    const double x = rng.NextGaussian();
    const double y = 0.6 * x + 0.8 * rng.NextGaussian();
    wc.Add(x, y);
    xs.push_back(x);
    ys.push_back(y);
  }
  // Batch Pearson over the last 256 points.
  const size_t start = xs.size() - 256;
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double syy = 0;
  double sxy = 0;
  for (size_t i = start; i < xs.size(); i++) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    syy += ys[i] * ys[i];
    sxy += xs[i] * ys[i];
  }
  const double n = 256.0;
  const double batch =
      (sxy - sx * sy / n) /
      std::sqrt((sxx - sx * sx / n) * (syy - sy * sy / n));
  EXPECT_NEAR(wc.Correlation(), batch, 1e-9);
}

TEST(CrossCorrelatorTest, FindsTrueLag) {
  // y leads x by 7 steps: x(t) = base(t), y(t) = base(t + 7) means x
  // correlates best with y delayed by 7.
  const size_t kLag = 7;
  CrossCorrelator cc(512, 20);
  Rng rng(4);
  std::vector<double> base;
  for (int i = 0; i < 5000 + 50; i++) base.push_back(rng.NextGaussian());
  for (size_t t = kLag; t < 5000; t++) {
    const double x = base[t - kLag];  // x is the delayed copy.
    const double y = base[t];
    cc.Add(x, y);
  }
  EXPECT_EQ(cc.BestLag(), kLag);
  EXPECT_GT(cc.CorrelationAtLag(kLag), 0.95);
  EXPECT_LT(cc.CorrelationAtLag(0), 0.3);
}

TEST(CorrelationMatrixTest, DetectsCorrelatedPairAmongNoise) {
  CorrelationMatrix cm(10, 512);
  Rng rng(5);
  for (int t = 0; t < 3000; t++) {
    std::vector<double> v(10);
    for (auto& x : v) x = rng.NextGaussian();
    v[7] = v[2] * 0.9 + 0.3 * rng.NextGaussian();  // Plant a pair (2, 7).
    cm.Add(v);
  }
  auto pairs = cm.CorrelatedPairs(0.7);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 2u);
  EXPECT_EQ(pairs[0].second, 7u);
  EXPECT_GT(cm.Correlation(2, 7), 0.8);
}

TEST(PatternMatcherTest, FindsPlantedPattern) {
  // Template: one period of a sine. Plant it twice in a noise stream.
  std::vector<double> pattern;
  for (int i = 0; i < 32; i++) {
    pattern.push_back(std::sin(2.0 * 3.14159265 * i / 32.0));
  }
  PatternMatcher matcher(pattern, 0.35);
  Rng rng(6);
  auto feed_noise = [&](int n) {
    for (int i = 0; i < n; i++) matcher.AddAndMatch(rng.NextGaussian() * 0.3);
  };
  auto feed_pattern = [&](double scale, double offset) {
    for (double p : pattern) {
      matcher.AddAndMatch(offset + scale * p + rng.NextGaussian() * 0.02);
    }
  };
  feed_noise(500);
  feed_pattern(5.0, 100.0);  // Scaled and offset: z-norm must still match.
  feed_noise(500);
  feed_pattern(0.5, -20.0);
  feed_noise(200);
  ASSERT_GE(matcher.matches().size(), 2u);
  // First match should end right after the first planted pattern.
  EXPECT_NEAR(static_cast<double>(matcher.matches()[0].end_position), 532.0,
              3.0);
}

// ------------------------------------------------------------ DFT sketch

// Smooth signal generator: low-frequency sine mixture.
double Smooth(int t) {
  return std::sin(t * 0.05) + 0.6 * std::sin(t * 0.11 + 1.0) +
         0.3 * std::sin(t * 0.023);
}

TEST(DftCorrelationSketchTest, TracksExactCorrelationOnSmoothSeries) {
  const size_t kW = 256;
  DftCorrelationSketch a(kW, 12);
  DftCorrelationSketch b(kW, 12);
  WindowedCorrelation exact(kW);
  Rng rng(31);
  double max_err = 0;
  for (int t = 0; t < 5000; t++) {
    const double base = Smooth(t);
    const double x = base + 0.2 * rng.NextGaussian();
    const double y = 0.8 * base + 0.3 * rng.NextGaussian();
    a.Add(x);
    b.Add(y);
    exact.Add(x, y);
    if (t > static_cast<int>(kW) && t % 41 == 0) {
      max_err = std::max(
          max_err, std::fabs(DftCorrelationSketch::ApproxCorrelation(a, b) -
                             exact.Correlation()));
    }
  }
  EXPECT_LT(max_err, 0.05);
}

TEST(DftCorrelationSketchTest, AccuracyImprovesWithCoefficients) {
  const size_t kW = 256;
  double errs[2] = {0, 0};
  const size_t ms[2] = {4, 32};
  for (int which = 0; which < 2; which++) {
    DftCorrelationSketch a(kW, ms[which]);
    DftCorrelationSketch b(kW, ms[which]);
    WindowedCorrelation exact(kW);
    Rng rng(33);
    for (int t = 0; t < 4000; t++) {
      const double x = Smooth(t) + 0.2 * rng.NextGaussian();
      const double y = 0.7 * Smooth(t) + 0.3 * rng.NextGaussian();
      a.Add(x);
      b.Add(y);
      exact.Add(x, y);
      if (t > static_cast<int>(kW) && t % 53 == 0) {
        errs[which] = std::max(
            errs[which],
            std::fabs(DftCorrelationSketch::ApproxCorrelation(a, b) -
                      exact.Correlation()));
      }
    }
  }
  EXPECT_LT(errs[1], errs[0]);
}

TEST(DftCorrelationSketchTest, UncorrelatedSmoothSeriesNearZero) {
  const size_t kW = 512;
  DftCorrelationSketch a(kW, 16);
  DftCorrelationSketch b(kW, 16);
  for (int t = 0; t < 4000; t++) {
    a.Add(std::sin(t * 0.05));
    b.Add(std::sin(t * 0.19 + 0.7));  // Different frequency: orthogonal.
  }
  EXPECT_NEAR(DftCorrelationSketch::ApproxCorrelation(a, b), 0.0, 0.05);
}

TEST(DftCorrelationSketchTest, SynopsisFarSmallerThanWindow) {
  DftCorrelationSketch sketch(4096, 16);
  for (int t = 0; t < 5000; t++) sketch.Add(Smooth(t));
  // Pair comparison touches 34 doubles instead of 4096.
  EXPECT_EQ(sketch.ComparisonDoubles(), 34u);
}

TEST(PatternMatcherTest, NoMatchesInPureNoise) {
  std::vector<double> pattern;
  for (int i = 0; i < 32; i++) {
    pattern.push_back(std::sin(2.0 * 3.14159265 * i / 32.0));
  }
  PatternMatcher matcher(pattern, 0.2);
  Rng rng(7);
  for (int i = 0; i < 20000; i++) matcher.AddAndMatch(rng.NextGaussian());
  EXPECT_LT(matcher.matches().size(), 5u);
}

}  // namespace
}  // namespace streamlib
