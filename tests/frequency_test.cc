#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/frequency/count_min_sketch.h"
#include "core/frequency/count_sketch.h"
#include "core/frequency/hierarchical_heavy_hitters.h"
#include "core/frequency/lossy_counting.h"
#include "core/frequency/misra_gries.h"
#include "core/frequency/sliding_frequent.h"
#include "core/frequency/space_saving.h"
#include "core/frequency/topk_tracker.h"
#include "workload/zipf.h"

namespace streamlib {
namespace {

// A deterministic skewed stream with known exact counts.
struct SkewedStream {
  std::vector<uint64_t> items;
  std::map<uint64_t, uint64_t> exact;
};

SkewedStream MakeZipfStream(uint64_t n, uint64_t domain, double skew,
                            uint64_t seed) {
  workload::ZipfGenerator zipf(domain, skew, seed);
  SkewedStream s;
  s.items.reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    const uint64_t item = zipf.Next();
    s.items.push_back(item);
    s.exact[item]++;
  }
  return s;
}

// ------------------------------------------------------------- MisraGries

TEST(MisraGriesTest, NoFalseNegativesAboveThreshold) {
  auto stream = MakeZipfStream(200000, 10000, 1.2, 1);
  const size_t kCounters = 199;  // Detects freq > n/200.
  MisraGries<uint64_t> mg(kCounters);
  for (uint64_t item : stream.items) mg.Add(item);

  const uint64_t threshold = stream.items.size() / (kCounters + 1);
  for (const auto& [item, count] : stream.exact) {
    if (count > threshold) {
      // Every true heavy hitter must be tracked with estimate >= count - n/k.
      EXPECT_GE(mg.Estimate(item) + mg.MaxError(), count) << item;
      EXPECT_GT(mg.Estimate(item), 0u) << item;
    }
  }
}

TEST(MisraGriesTest, EstimatesNeverOvercount) {
  auto stream = MakeZipfStream(100000, 1000, 1.5, 2);
  MisraGries<uint64_t> mg(99);
  for (uint64_t item : stream.items) mg.Add(item);
  for (const auto& [item, count] : stream.exact) {
    EXPECT_LE(mg.Estimate(item), count) << item;
  }
}

TEST(MisraGriesTest, SpaceBounded) {
  MisraGries<uint64_t> mg(50);
  for (uint64_t i = 0; i < 100000; i++) mg.Add(i % 997);
  EXPECT_LE(mg.size(), 50u);
}

TEST(MisraGriesTest, StringKeys) {
  MisraGries<std::string> mg(10);
  for (int i = 0; i < 1000; i++) mg.Add("popular");
  for (int i = 0; i < 100; i++) mg.Add("tag" + std::to_string(i));
  EXPECT_GT(mg.Estimate("popular"), 800u);
}

// ------------------------------------------------------------ SpaceSaving

TEST(SpaceSavingTest, OverestimatesBoundedByError) {
  auto stream = MakeZipfStream(200000, 10000, 1.2, 3);
  SpaceSaving<uint64_t> ss(200);
  for (uint64_t item : stream.items) ss.Add(item);

  for (const auto& item : ss.HeavyHitters(1)) {
    const uint64_t exact =
        stream.exact.count(item.key) ? stream.exact.at(item.key) : 0;
    EXPECT_GE(item.estimate, exact);                      // Overestimate.
    EXPECT_LE(item.estimate - item.error_bound, exact);   // Bounded.
  }
}

TEST(SpaceSavingTest, FindsAllTrueHeavyHitters) {
  auto stream = MakeZipfStream(500000, 100000, 1.1, 4);
  const double kTheta = 0.005;
  SpaceSaving<uint64_t> ss(1000);  // capacity >> 1/theta.
  for (uint64_t item : stream.items) ss.Add(item);

  const uint64_t threshold =
      static_cast<uint64_t>(kTheta * stream.items.size());
  std::set<uint64_t> reported;
  for (const auto& item : ss.HeavyHitters(threshold)) {
    reported.insert(item.key);
  }
  for (const auto& [item, count] : stream.exact) {
    if (count >= threshold) {
      EXPECT_TRUE(reported.count(item)) << "missed heavy hitter " << item;
    }
  }
}

TEST(SpaceSavingTest, TopKOrderMatchesTrueOrderForClearWinners) {
  SpaceSaving<std::string> ss(50);
  // Distinct magnitudes so the order is unambiguous.
  for (int rank = 0; rank < 10; rank++) {
    for (int i = 0; i < 1000 >> rank; i++) {
      ss.Add("item" + std::to_string(rank));
    }
  }
  auto top = ss.TopK(5);
  ASSERT_EQ(top.size(), 5u);
  for (int rank = 0; rank < 5; rank++) {
    EXPECT_EQ(top[rank].key, "item" + std::to_string(rank));
  }
}

TEST(SpaceSavingTest, WeightedUpdates) {
  SpaceSaving<uint64_t> ss(10);
  ss.Add(1, 100);
  ss.Add(2, 50);
  ss.Add(1, 25);
  EXPECT_EQ(ss.Estimate(1), 125u);
  EXPECT_EQ(ss.Estimate(2), 50u);
}

TEST(SpaceSavingTest, MinCountGrowsUnderEviction) {
  SpaceSaving<uint64_t> ss(4);
  for (uint64_t i = 0; i < 1000; i++) ss.Add(i);  // All distinct.
  EXPECT_EQ(ss.size(), 4u);
  EXPECT_GE(ss.MinCount(), 1000u / 4u / 2u);  // Min rises with evictions.
}

// ---------------------------------------------------------- LossyCounting

TEST(LossyCountingTest, NoFalseNegativesAtAdjustedThreshold) {
  auto stream = MakeZipfStream(300000, 50000, 1.1, 5);
  const double kEps = 0.001;
  const double kTheta = 0.01;
  LossyCounting<uint64_t> lc(kEps);
  for (uint64_t item : stream.items) lc.Add(item);

  const double n = static_cast<double>(stream.items.size());
  std::set<uint64_t> reported;
  for (const auto& item :
       lc.HeavyHitters(static_cast<uint64_t>((kTheta - kEps) * n))) {
    reported.insert(item.key);
  }
  for (const auto& [item, count] : stream.exact) {
    if (static_cast<double>(count) >= kTheta * n) {
      EXPECT_TRUE(reported.count(item)) << item;
    }
  }
}

TEST(LossyCountingTest, UndercountBoundedByEpsN) {
  auto stream = MakeZipfStream(100000, 1000, 1.3, 6);
  const double kEps = 0.005;
  LossyCounting<uint64_t> lc(kEps);
  for (uint64_t item : stream.items) lc.Add(item);
  for (const auto& [item, count] : stream.exact) {
    const uint64_t est = lc.Estimate(item);
    EXPECT_LE(est, count);
    if (est > 0) {
      EXPECT_LE(count - est, static_cast<uint64_t>(
                                 kEps * stream.items.size()) +
                                 1)
          << item;
    }
  }
}

TEST(LossyCountingTest, PrunesInfrequentEntries) {
  LossyCounting<uint64_t> lc(0.01);
  // 1e5 distinct singletons: nearly all should be pruned.
  for (uint64_t i = 0; i < 100000; i++) lc.Add(i);
  EXPECT_LT(lc.size(), 2000u);
}

// ----------------------------------------------------------- CountMin

TEST(CountMinSketchTest, NeverUndercounts) {
  auto stream = MakeZipfStream(100000, 10000, 1.1, 7);
  CountMinSketch cms(2048, 5);
  for (uint64_t item : stream.items) cms.Add(item);
  for (const auto& [item, count] : stream.exact) {
    EXPECT_GE(cms.Estimate(item), count) << item;
  }
}

TEST(CountMinSketchTest, OvercountWithinBound) {
  auto stream = MakeZipfStream(200000, 50000, 1.0, 8);
  CountMinSketch cms = CountMinSketch::WithErrorBound(0.001, 0.01);
  for (uint64_t item : stream.items) cms.Add(item);
  uint64_t violations = 0;
  for (const auto& [item, count] : stream.exact) {
    if (cms.Estimate(item) >
        count + static_cast<uint64_t>(cms.ErrorBound())) {
      violations++;
    }
  }
  // delta = 0.01: expect ~< 1% of point queries to exceed the bound.
  EXPECT_LT(violations, stream.exact.size() / 50);
}

TEST(CountMinSketchTest, ConservativeUpdateNeverWorse) {
  auto stream = MakeZipfStream(200000, 20000, 1.1, 9);
  CountMinSketch plain(512, 4, /*conservative=*/false);
  CountMinSketch conservative(512, 4, /*conservative=*/true);
  for (uint64_t item : stream.items) {
    plain.Add(item);
    conservative.Add(item);
  }
  uint64_t plain_err = 0;
  uint64_t cons_err = 0;
  for (const auto& [item, count] : stream.exact) {
    plain_err += plain.Estimate(item) - count;
    cons_err += conservative.Estimate(item) - count;
    EXPECT_GE(conservative.Estimate(item), count) << item;  // Still an upper bound.
    EXPECT_LE(conservative.Estimate(item), plain.Estimate(item)) << item;
  }
  EXPECT_LT(cons_err, plain_err);
}

TEST(CountMinSketchTest, MergeEqualsCombinedStream) {
  CountMinSketch a(1024, 4);
  CountMinSketch b(1024, 4);
  CountMinSketch whole(1024, 4);
  for (uint64_t i = 0; i < 50000; i++) {
    const uint64_t item = i % 1000;
    (i % 2 == 0 ? a : b).Add(item);
    whole.Add(item);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  for (uint64_t item = 0; item < 1000; item++) {
    EXPECT_EQ(a.Estimate(item), whole.Estimate(item));
  }
}

TEST(CountMinSketchTest, MergeGeometryMismatchRejected) {
  CountMinSketch a(1024, 4);
  CountMinSketch b(512, 4);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(CountMinSketchTest, InnerProductEstimatesSelfJoinSize) {
  // Self-join size = sum f_i^2. Uniform 100 items x 1000 each = 1e8.
  CountMinSketch cms(4096, 5);
  for (uint64_t i = 0; i < 100000; i++) cms.Add(i % 100);
  auto result = cms.InnerProduct(cms);
  ASSERT_TRUE(result.ok());
  const double expected = 100.0 * 1000.0 * 1000.0;
  EXPECT_NEAR(static_cast<double>(result.value()), expected, expected * 0.05);
}

// ----------------------------------------------------------- CountSketch

TEST(CountSketchTest, UnbiasedPointEstimates) {
  auto stream = MakeZipfStream(200000, 10000, 1.2, 10);
  CountSketch cs(4096, 5);
  for (uint64_t item : stream.items) cs.Add(item);
  // Heavy items should be recovered closely.
  int checked = 0;
  for (const auto& [item, count] : stream.exact) {
    if (count > 5000) {
      EXPECT_NEAR(static_cast<double>(cs.Estimate(item)),
                  static_cast<double>(count), 0.10 * count)
          << item;
      checked++;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(CountSketchTest, F2EstimateMatchesExact) {
  CountSketch cs(8192, 7);
  double exact_f2 = 0;
  for (uint64_t item = 0; item < 200; item++) {
    const uint64_t f = 100 + item * 10;
    exact_f2 += static_cast<double>(f) * f;
    cs.Add(item, static_cast<int64_t>(f));
  }
  EXPECT_NEAR(cs.EstimateF2(), exact_f2, exact_f2 * 0.10);
}

TEST(CountSketchTest, SupportsDeletionsViaNegativeCounts) {
  CountSketch cs(1024, 5);
  cs.Add(uint64_t{7}, 100);
  cs.Add(uint64_t{7}, -40);
  EXPECT_NEAR(static_cast<double>(cs.Estimate(uint64_t{7})), 60.0, 10.0);
}

// ----------------------------------------------------------- TopKTracker

TEST(TopKTrackerTest, RecoversTrueTopK) {
  auto stream = MakeZipfStream(300000, 100000, 1.3, 11);
  TopKTracker<uint64_t> tracker(20, 4096, 5);
  for (uint64_t item : stream.items) tracker.Add(item);

  // Zipf item ids are popularity-ordered: true top-10 is {0..9}.
  auto top = tracker.TopK();
  ASSERT_GE(top.size(), 10u);
  std::set<uint64_t> reported;
  for (size_t i = 0; i < 10; i++) reported.insert(top[i].key);
  int hits = 0;
  for (uint64_t i = 0; i < 10; i++) {
    if (reported.count(i)) hits++;
  }
  EXPECT_GE(hits, 8);  // Allow rank noise at the boundary.
}

TEST(TopKTrackerTest, EstimatesAvailableForAnyKey) {
  TopKTracker<std::string> tracker(5, 1024, 4);
  for (int i = 0; i < 100; i++) tracker.Add("rare" + std::to_string(i));
  for (int i = 0; i < 1000; i++) tracker.Add("hot");
  EXPECT_GE(tracker.Estimate("hot"), 1000u);
  EXPECT_GE(tracker.Estimate("rare0"), 1u);
}

// ------------------------------------------- HierarchicalHeavyHitters

TEST(HierarchicalHeavyHittersTest, FindsHotPrefixNotItsAncestors) {
  HierarchicalHeavyHitters hhh(256);
  // 10.0.1.* is hot in aggregate (each /32 light); 10.0.2.5 is itself hot.
  for (uint32_t host = 0; host < 200; host++) {
    const uint32_t addr = (10u << 24) | (0u << 16) | (1u << 8) | host;
    for (int i = 0; i < 50; i++) hhh.Add(addr);
  }
  const uint32_t hot_host = (10u << 24) | (0u << 16) | (2u << 8) | 5u;
  for (int i = 0; i < 9000; i++) hhh.Add(hot_host);
  // Background noise.
  for (uint32_t i = 0; i < 1000; i++) hhh.Add(0xC0000000u + i * 7919u);

  auto results = hhh.Query(5000);
  bool found_24 = false;
  bool found_32 = false;
  bool reported_8_prefix_of_hot = false;
  for (const auto& r : results) {
    if (r.prefix_bits == 24 && r.prefix == ((10u << 24) | (1u << 8))) {
      found_24 = true;
    }
    if (r.prefix_bits == 32 && r.prefix == hot_host) found_32 = true;
    if (r.prefix_bits == 8 && r.prefix == (10u << 24)) {
      reported_8_prefix_of_hot = true;
    }
  }
  EXPECT_TRUE(found_24);
  EXPECT_TRUE(found_32);
  // The /8 ancestor's conditioned count (~0 after discounting) must not fire.
  EXPECT_FALSE(reported_8_prefix_of_hot);
}

TEST(HierarchicalHeavyHittersTest, PrefixEstimates) {
  HierarchicalHeavyHitters hhh(64);
  for (int i = 0; i < 1000; i++) hhh.Add((192u << 24) | (168u << 16) | i);
  EXPECT_GE(hhh.EstimatePrefix(192u << 24, 8), 1000u);
  EXPECT_GE(hhh.EstimatePrefix((192u << 24) | (168u << 16), 16), 1000u);
}

// -------------------------------------------------- SlidingWindowFrequent

TEST(SlidingWindowFrequentTest, OldHeavyHitterFadesOut) {
  SlidingWindowFrequent<uint64_t> swf(10000, 10, 100);
  // Phase 1: item 1 dominates.
  for (int i = 0; i < 10000; i++) swf.Add(1);
  EXPECT_GT(swf.Estimate(1), 5000u);
  // Phase 2: item 2 dominates for a full window.
  for (int i = 0; i < 12000; i++) swf.Add(2);
  EXPECT_EQ(swf.Estimate(1), 0u);
  EXPECT_GT(swf.Estimate(2), 5000u);
}

TEST(SlidingWindowFrequentTest, WindowEstimateMagnitude) {
  SlidingWindowFrequent<uint64_t> swf(1000, 10, 50);
  for (int round = 0; round < 50; round++) {
    for (int i = 0; i < 100; i++) swf.Add(i % 10);  // Item j: 10/100 share.
  }
  // Each of the 10 items holds ~10% of the last ~1000 elements = ~100.
  for (uint64_t j = 0; j < 10; j++) {
    EXPECT_NEAR(static_cast<double>(swf.Estimate(j)), 100.0, 40.0) << j;
  }
}

TEST(SlidingWindowFrequentTest, HeavyHittersSortedDescending) {
  SlidingWindowFrequent<std::string> swf(5000, 5, 50);
  for (int i = 0; i < 3000; i++) swf.Add("a");
  for (int i = 0; i < 1500; i++) swf.Add("b");
  auto hh = swf.HeavyHitters(100);
  ASSERT_GE(hh.size(), 2u);
  EXPECT_EQ(hh[0].key, "a");
  EXPECT_EQ(hh[1].key, "b");
  EXPECT_GE(hh[0].estimate, hh[1].estimate);
}

}  // namespace
}  // namespace streamlib
