#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/cardinality/pcsa.h"
#include "core/frequency/count_min_sketch.h"
#include "core/frequency/sticky_sampling.h"
#include "core/quantiles/qdigest.h"
#include "platform/checkpoint.h"
#include "platform/stream_operators.h"
#include "workload/zipf.h"

namespace streamlib {
namespace {

// ------------------------------------------------------------------- PCSA

TEST(PcsaTest, EstimateWithinExpectedError) {
  PcsaCounter pcsa(256);
  const uint64_t kN = 500000;
  for (uint64_t i = 0; i < kN; i++) pcsa.Add(i);
  // stderr ~ 0.78/sqrt(256) ~ 4.9%; allow 5 sigma.
  EXPECT_NEAR(pcsa.Estimate(), static_cast<double>(kN), kN * 0.25);
}

TEST(PcsaTest, DuplicatesIgnored) {
  PcsaCounter pcsa(128);
  for (int rep = 0; rep < 100; rep++) {
    for (uint64_t i = 0; i < 1000; i++) pcsa.Add(i);
  }
  EXPECT_NEAR(pcsa.Estimate(), 1000.0, 450.0);
}

TEST(PcsaTest, MergeMatchesUnionStream) {
  PcsaCounter a(128);
  PcsaCounter b(128);
  PcsaCounter u(128);
  for (uint64_t i = 0; i < 30000; i++) {
    a.Add(i);
    u.Add(i);
  }
  for (uint64_t i = 15000; i < 45000; i++) {
    b.Add(i);
    u.Add(i);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

TEST(PcsaTest, MergeSizeMismatchRejected) {
  PcsaCounter a(64);
  PcsaCounter b(128);
  EXPECT_FALSE(a.Merge(b).ok());
}

// ---------------------------------------------------------------- QDigest

TEST(QDigestTest, QuantilesWithinRankBound) {
  const uint32_t kBits = 16;
  const uint32_t kCompression = 200;
  QDigest digest(kBits, kCompression);
  Rng rng(1);
  std::vector<uint32_t> data;
  const int kN = 100000;
  for (int i = 0; i < kN; i++) {
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(1 << kBits));
    digest.Add(v);
    data.push_back(v);
  }
  std::sort(data.begin(), data.end());
  // Rank error bound: (bits / compression) * n.
  const double bound =
      static_cast<double>(kBits) / kCompression * kN + 1;
  for (double phi : {0.1, 0.5, 0.9, 0.99}) {
    const uint32_t answer = digest.Quantile(phi);
    const double rank = static_cast<double>(
        std::upper_bound(data.begin(), data.end(), answer) - data.begin());
    EXPECT_LE(std::fabs(rank - phi * kN), 2 * bound) << "phi=" << phi;
  }
}

TEST(QDigestTest, SpaceIsCompressed) {
  QDigest digest(20, 100);
  Rng rng(2);
  for (int i = 0; i < 200000; i++) {
    digest.Add(static_cast<uint32_t>(rng.NextBounded(1 << 20)));
  }
  // O(compression * bits) nodes, far below 200k distinct inputs.
  EXPECT_LT(digest.NumNodes(), 6000u);
}

TEST(QDigestTest, MergePreservesQuantiles) {
  QDigest a(12, 150);
  QDigest b(12, 150);
  QDigest whole(12, 150);
  Rng rng(3);
  for (int i = 0; i < 50000; i++) {
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(1 << 12));
    (i % 2 == 0 ? a : b).Add(v);
    whole.Add(v);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.count(), whole.count());
  for (double phi : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(static_cast<double>(a.Quantile(phi)),
                static_cast<double>(whole.Quantile(phi)), 200.0)
        << phi;
  }
}

TEST(QDigestTest, WeightedInsertions) {
  QDigest digest(8, 50);
  digest.Add(10, 900);
  digest.Add(200, 100);
  EXPECT_LE(digest.Quantile(0.5), 20u);
  EXPECT_GE(digest.Quantile(0.95), 190u);
}

TEST(QDigestTest, MergeParameterMismatchRejected) {
  QDigest a(12, 100);
  QDigest b(16, 100);
  QDigest c(12, 50);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

// --------------------------------------------------------- StickySampling

TEST(StickySamplingTest, NoFalseNegativesWithHighProbability) {
  const double kEps = 0.001;
  const double kTheta = 0.01;
  workload::ZipfGenerator zipf(100000, 1.1, 4);
  StickySampling<uint64_t> sticky(kEps, kTheta, 0.01, 5);
  std::map<uint64_t, uint64_t> exact;
  const uint64_t kN = 500000;
  for (uint64_t i = 0; i < kN; i++) {
    const uint64_t item = zipf.Next();
    sticky.Add(item);
    exact[item]++;
  }
  std::set<uint64_t> reported;
  for (const auto& item : sticky.HeavyHitters(
           static_cast<uint64_t>((kTheta - kEps) * kN))) {
    reported.insert(item.key);
  }
  for (const auto& [item, count] : exact) {
    if (static_cast<double>(count) >= kTheta * kN) {
      EXPECT_TRUE(reported.count(item)) << item;
    }
  }
}

TEST(StickySamplingTest, SpaceIndependentOfStreamLength) {
  StickySampling<uint64_t> sticky(0.01, 0.05, 0.01, 6);
  workload::ZipfGenerator zipf(1000000, 1.0, 7);
  size_t size_at_100k = 0;
  for (uint64_t i = 0; i < 1000000; i++) {
    sticky.Add(zipf.Next());
    if (i == 100000) size_at_100k = sticky.size();
  }
  // Expected entries ~ 2/eps * log(1/(theta*delta)) regardless of n: the
  // final size must not have grown materially past the early size.
  EXPECT_LT(sticky.size(), size_at_100k * 3 + 100);
}

TEST(StickySamplingTest, SamplingRateDoubles) {
  StickySampling<uint64_t> sticky(0.01, 0.05, 0.1, 8);
  for (uint64_t i = 0; i < 100000; i++) sticky.Add(i % 50);
  EXPECT_GT(sticky.sampling_rate(), 1u);
}

// ----------------------------------------------------- CMS serialization

TEST(CmsSerializationTest, RoundTripPreservesEstimates) {
  CountMinSketch cms(512, 4, /*conservative=*/true);
  workload::ZipfGenerator zipf(10000, 1.2, 9);
  for (int i = 0; i < 100000; i++) cms.Add(zipf.Next());
  auto bytes = cms.Serialize();
  auto restored = CountMinSketch::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().total_count(), cms.total_count());
  EXPECT_EQ(restored.value().conservative(), cms.conservative());
  for (uint64_t item = 0; item < 100; item++) {
    EXPECT_EQ(restored.value().Estimate(item), cms.Estimate(item)) << item;
  }
}

TEST(CmsSerializationTest, RejectsCorruptPayload) {
  CountMinSketch cms(64, 3);
  cms.Add(uint64_t{1});
  auto bytes = cms.Serialize();
  bytes.resize(bytes.size() / 2);  // Truncate.
  EXPECT_FALSE(CountMinSketch::Deserialize(bytes).ok());
  std::vector<uint8_t> garbage = {0, 0, 0, 0, 99, 0, 0, 0};
  EXPECT_FALSE(CountMinSketch::Deserialize(garbage).ok());
}

// ------------------------------------------------------------- Checkpoint

TEST(KvCheckpointStoreTest, PutGetVersioning) {
  platform::KvCheckpointStore store;
  EXPECT_FALSE(store.Get("task-0").has_value());
  EXPECT_EQ(store.Put("task-0", {1, 2, 3}), 1u);
  EXPECT_EQ(store.Put("task-0", {4, 5}), 2u);
  auto state = store.Get("task-0");
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(*state, (std::vector<uint8_t>{4, 5}));
  EXPECT_EQ(store.VersionOf("task-0"), 2u);
  EXPECT_EQ(store.VersionOf("other"), 0u);
}

TEST(KvCheckpointStoreTest, SketchStateSurvivesCrash) {
  // The MillWheel pattern: checkpoint sketch bytes, "crash", restore.
  platform::KvCheckpointStore store;
  CountMinSketch cms(256, 4);
  for (uint64_t i = 0; i < 10000; i++) cms.Add(i % 100);
  store.Put("counts", cms.Serialize());

  auto restored = CountMinSketch::Deserialize(*store.Get("counts"));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().Estimate(uint64_t{7}), cms.Estimate(uint64_t{7}));
}

TEST(DedupLedgerTest, DetectsRedelivery) {
  platform::DedupLedger ledger;
  EXPECT_TRUE(ledger.CheckAndRecord(1, 0));
  EXPECT_TRUE(ledger.CheckAndRecord(1, 1));
  EXPECT_FALSE(ledger.CheckAndRecord(1, 0));  // Duplicate.
  EXPECT_FALSE(ledger.CheckAndRecord(1, 1));
  EXPECT_TRUE(ledger.CheckAndRecord(2, 0));   // Different producer.
}

TEST(DedupLedgerTest, WatermarkBoundsMemory) {
  platform::DedupLedger ledger;
  // In-order delivery: the watermark advances, retaining nothing.
  for (uint64_t seq = 0; seq < 100000; seq++) {
    ASSERT_TRUE(ledger.CheckAndRecord(7, seq));
  }
  EXPECT_EQ(ledger.RetainedIds(), 0u);
  // A gap holds only the out-of-order suffix.
  EXPECT_TRUE(ledger.CheckAndRecord(7, 100005));
  EXPECT_EQ(ledger.RetainedIds(), 1u);
  EXPECT_TRUE(ledger.CheckAndRecord(7, 100000));
  EXPECT_FALSE(ledger.CheckAndRecord(7, 99999));  // Below watermark.
}

TEST(DedupLedgerTest, SerializationRoundTrip) {
  platform::DedupLedger ledger;
  ledger.CheckAndRecord(1, 0);
  ledger.CheckAndRecord(1, 5);
  ledger.CheckAndRecord(2, 3);
  auto bytes = ledger.Serialize();
  auto restored = platform::DedupLedger::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  // Restored ledger must remember both processed ids and watermarks.
  EXPECT_FALSE(restored.value().CheckAndRecord(1, 0));
  EXPECT_FALSE(restored.value().CheckAndRecord(1, 5));
  EXPECT_FALSE(restored.value().CheckAndRecord(2, 3));
  EXPECT_TRUE(restored.value().CheckAndRecord(1, 1));
}

// -------------------------------------------------------- Stream operators

class CollectingCollector : public platform::OutputCollector {
 public:
  void Emit(platform::Tuple tuple) override {
    tuples.push_back(std::move(tuple));
  }
  std::vector<platform::Tuple> tuples;
};

TEST(TumblingAggregateBoltTest, EmitsPerWindowSums) {
  platform::TumblingAggregateBolt bolt(4);
  CollectingCollector out;
  bolt.Execute(platform::Tuple::Of("a", 1.0), &out);
  bolt.Execute(platform::Tuple::Of("a", 2.0), &out);
  bolt.Execute(platform::Tuple::Of("b", 5.0), &out);
  EXPECT_TRUE(out.tuples.empty());  // Window not full yet.
  bolt.Execute(platform::Tuple::Of("a", 3.0), &out);
  ASSERT_EQ(out.tuples.size(), 2u);  // Window of 4 flushed: keys a and b.
  std::map<std::string, double> sums;
  for (const auto& t : out.tuples) sums[t.Str(0)] = t.Double(1);
  EXPECT_DOUBLE_EQ(sums["a"], 6.0);
  EXPECT_DOUBLE_EQ(sums["b"], 5.0);
  // Next window starts clean.
  bolt.Execute(platform::Tuple::Of("a", 10.0), &out);
  platform::OutputCollector* oc = &out;
  bolt.Finish(oc);
  ASSERT_EQ(out.tuples.size(), 3u);
  EXPECT_DOUBLE_EQ(out.tuples.back().Double(1), 10.0);
}

TEST(WindowJoinBoltTest, JoinsWithinWindow) {
  platform::WindowJoinBolt bolt(100);
  CollectingCollector out;
  bolt.Execute(platform::Tuple::Of("L", "q1", std::string("ad-7")), &out);
  bolt.Execute(platform::Tuple::Of("L", "q2", std::string("ad-9")), &out);
  EXPECT_TRUE(out.tuples.empty());
  bolt.Execute(platform::Tuple::Of("R", "q1", std::string("click")), &out);
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.tuples[0].Str(0), "q1");
  EXPECT_EQ(out.tuples[0].Str(1), "ad-7");
  EXPECT_EQ(out.tuples[0].Str(2), "click");
}

TEST(WindowJoinBoltTest, OrderIndependentWithinWindow) {
  platform::WindowJoinBolt bolt(100);
  CollectingCollector out;
  // Click (right side) arrives before its query: must still join.
  bolt.Execute(platform::Tuple::Of("R", "q5", std::string("click")), &out);
  bolt.Execute(platform::Tuple::Of("L", "q5", std::string("ad-1")), &out);
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.tuples[0].Str(1), "ad-1");
}

TEST(WindowJoinBoltTest, EvictionBeyondWindow) {
  platform::WindowJoinBolt bolt(2);  // Tiny per-side window.
  CollectingCollector out;
  bolt.Execute(platform::Tuple::Of("L", "old", std::string("x")), &out);
  bolt.Execute(platform::Tuple::Of("L", "mid", std::string("y")), &out);
  bolt.Execute(platform::Tuple::Of("L", "new", std::string("z")), &out);
  // "old" evicted; a matching right tuple no longer joins.
  bolt.Execute(platform::Tuple::Of("R", "old", std::string("c")), &out);
  EXPECT_TRUE(out.tuples.empty());
  bolt.Execute(platform::Tuple::Of("R", "new", std::string("c")), &out);
  EXPECT_EQ(out.tuples.size(), 1u);
}

TEST(WindowJoinBoltTest, MultipleMatchesAllEmitted) {
  platform::WindowJoinBolt bolt(100);
  CollectingCollector out;
  bolt.Execute(platform::Tuple::Of("L", "k", std::string("a1")), &out);
  bolt.Execute(platform::Tuple::Of("L", "k", std::string("a2")), &out);
  bolt.Execute(platform::Tuple::Of("R", "k", std::string("c")), &out);
  EXPECT_EQ(out.tuples.size(), 2u);
  EXPECT_EQ(bolt.emitted_joins(), 2u);
}

TEST(FilterBoltTest, PassesOnlyMatching) {
  platform::FilterBolt bolt(
      [](const platform::Tuple& t) { return t.Int(0) % 2 == 0; });
  CollectingCollector out;
  for (int64_t i = 0; i < 10; i++) {
    bolt.Execute(platform::Tuple::Of(i), &out);
  }
  EXPECT_EQ(out.tuples.size(), 5u);
}

TEST(EnrichBoltTest, AppendsLookupValue) {
  platform::EnrichBolt bolt(
      {{"nyc", platform::Value{std::string("america/new_york")}}},
      /*key_index=*/0, platform::Value{std::string("unknown")});
  CollectingCollector out;
  bolt.Execute(platform::Tuple::Of(std::string("nyc"), int64_t{1}), &out);
  bolt.Execute(platform::Tuple::Of(std::string("xyz"), int64_t{2}), &out);
  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_EQ(out.tuples[0].Str(2), "america/new_york");
  EXPECT_EQ(out.tuples[1].Str(2), "unknown");
}

}  // namespace
}  // namespace streamlib
