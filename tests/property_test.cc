// Cross-cutting property tests: invariants every mergeable/serializable/
// seeded structure in the library must satisfy, regardless of workload.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/serde.h"
#include "common/state.h"
#include "core/cardinality/hyperloglog.h"
#include "core/cardinality/kmv_sketch.h"
#include "core/cardinality/linear_counter.h"
#include "core/cardinality/loglog.h"
#include "core/cardinality/pcsa.h"
#include "core/cardinality/sliding_hyperloglog.h"
#include "core/clustering/micro_clusters.h"
#include "core/filtering/deletable_bloom_filter.h"
#include "core/frequency/count_min_sketch.h"
#include "core/frequency/count_sketch.h"
#include "core/frequency/dyadic_count_min.h"
#include "core/frequency/misra_gries.h"
#include "core/frequency/space_saving.h"
#include "core/moments/ams_sketch.h"
#include "core/quantiles/ckms_quantile.h"
#include "core/quantiles/gk_quantile.h"
#include "core/quantiles/qdigest.h"
#include "core/quantiles/tdigest.h"
#include "core/windowing/eh_sum.h"
#include "core/windowing/exponential_histogram.h"
#include "test_seed.h"
#include "workload/zipf.h"

namespace streamlib {
namespace {

// ---------------------------------------------------------------- Merging
//
// Property: for mergeable summaries, merging must be order-insensitive —
// ((A + B) + C) and (A + (B + C)) must answer identically, and both must
// match the summary of the concatenated stream.

template <typename Sketch, typename AddFn>
void FillRange(Sketch* s, uint64_t lo, uint64_t hi, AddFn add) {
  for (uint64_t i = lo; i < hi; i++) add(s, i);
}

TEST(MergePropertyTest, HyperLogLogMergeIsAssociativeAndStreamEquivalent) {
  auto add = [](HyperLogLog* h, uint64_t i) { h->Add(i); };
  HyperLogLog a(12);
  HyperLogLog b(12);
  HyperLogLog c(12);
  HyperLogLog whole(12);
  FillRange(&a, 0, 40000, add);
  FillRange(&b, 30000, 70000, add);
  FillRange(&c, 60000, 100000, add);
  FillRange(&whole, 0, 100000, add);

  HyperLogLog left = a;
  ASSERT_TRUE(left.Merge(b).ok());
  ASSERT_TRUE(left.Merge(c).ok());
  HyperLogLog bc = b;
  ASSERT_TRUE(bc.Merge(c).ok());
  HyperLogLog right = a;
  ASSERT_TRUE(right.Merge(bc).ok());

  EXPECT_DOUBLE_EQ(left.Estimate(), right.Estimate());
  EXPECT_DOUBLE_EQ(left.Estimate(), whole.Estimate());
}

TEST(MergePropertyTest, KmvMergeIsAssociativeAndStreamEquivalent) {
  auto add = [](KmvSketch* s, uint64_t i) { s->Add(i); };
  KmvSketch a(512);
  KmvSketch b(512);
  KmvSketch c(512);
  KmvSketch whole(512);
  FillRange(&a, 0, 20000, add);
  FillRange(&b, 10000, 40000, add);
  FillRange(&c, 35000, 60000, add);
  FillRange(&whole, 0, 60000, add);

  KmvSketch left = a;
  ASSERT_TRUE(left.Merge(b).ok());
  ASSERT_TRUE(left.Merge(c).ok());
  KmvSketch bc = b;
  ASSERT_TRUE(bc.Merge(c).ok());
  KmvSketch right = a;
  ASSERT_TRUE(right.Merge(bc).ok());

  EXPECT_DOUBLE_EQ(left.Estimate(), right.Estimate());
  EXPECT_DOUBLE_EQ(left.Estimate(), whole.Estimate());
}

TEST(MergePropertyTest, CountMinMergeMatchesCombinedStream) {
  workload::ZipfGenerator zipf(5000, 1.1, 1);
  std::vector<uint64_t> stream;
  for (int i = 0; i < 60000; i++) stream.push_back(zipf.Next());

  CountMinSketch parts[3] = {CountMinSketch(1024, 4),
                             CountMinSketch(1024, 4),
                             CountMinSketch(1024, 4)};
  CountMinSketch whole(1024, 4);
  for (size_t i = 0; i < stream.size(); i++) {
    parts[i % 3].Add(stream[i]);
    whole.Add(stream[i]);
  }
  CountMinSketch merged = parts[0];
  ASSERT_TRUE(merged.Merge(parts[1]).ok());
  ASSERT_TRUE(merged.Merge(parts[2]).ok());
  for (uint64_t key = 0; key < 200; key++) {
    EXPECT_EQ(merged.Estimate(key), whole.Estimate(key)) << key;
  }
  EXPECT_EQ(merged.total_count(), whole.total_count());
}

TEST(MergePropertyTest, AmsMergeIsLinearUnderSplit) {
  auto add = [](AmsSketch* s, uint64_t i) { s->Add(i % 300); };
  AmsSketch a(5, 16);
  AmsSketch b(5, 16);
  AmsSketch whole(5, 16);
  FillRange(&a, 0, 30000, add);
  FillRange(&b, 30000, 60000, add);
  FillRange(&whole, 0, 60000, add);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.EstimateF2(), whole.EstimateF2());
}

TEST(MergePropertyTest, PcsaMergeIsIdempotent) {
  PcsaCounter a(128);
  for (uint64_t i = 0; i < 10000; i++) a.Add(i);
  PcsaCounter b = a;
  ASSERT_TRUE(b.Merge(a).ok());  // Self-merge must not change the estimate.
  EXPECT_DOUBLE_EQ(b.Estimate(), a.Estimate());
}

TEST(MergePropertyTest, LinearCounterUnionIsIdempotent) {
  LinearCounter a(1 << 14);
  for (uint64_t i = 0; i < 3000; i++) a.Add(i);
  LinearCounter b = a;
  ASSERT_TRUE(b.Union(a).ok());
  EXPECT_DOUBLE_EQ(b.Estimate(), a.Estimate());
}

TEST(MergePropertyTest, QDigestMergeOrderInsensitiveWithinError) {
  Rng rng(TestSeed() ^ 2);
  QDigest parts[3] = {QDigest(12, 100), QDigest(12, 100), QDigest(12, 100)};
  for (int i = 0; i < 30000; i++) {
    parts[i % 3].Add(static_cast<uint32_t>(rng.NextBounded(1 << 12)));
  }
  QDigest ab = parts[0];
  ASSERT_TRUE(ab.Merge(parts[1]).ok());
  ASSERT_TRUE(ab.Merge(parts[2]).ok());
  QDigest cb = parts[2];
  ASSERT_TRUE(cb.Merge(parts[1]).ok());
  ASSERT_TRUE(cb.Merge(parts[0]).ok());
  EXPECT_EQ(ab.count(), cb.count());
  // Compression is order-sensitive internally; answers agree within the
  // rank error bound (12/100 * n each side).
  for (double phi : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(static_cast<double>(ab.Quantile(phi)),
                static_cast<double>(cb.Quantile(phi)), 4096.0 * 0.25)
        << phi;
  }
}

// ----------------------------------------------------- Serialization fuzz
//
// Property: Deserialize must reject, never crash on, arbitrarily corrupted
// payloads — truncations, bit flips, random garbage.

TEST(SerializationFuzzTest, HllSurvivesCorruption) {
  HyperLogLog hll(10);
  for (uint64_t i = 0; i < 50000; i++) hll.Add(i);
  const std::vector<uint8_t> good = hll.Serialize();
  Rng rng(TestSeed() ^ 3);

  // Truncations at every prefix length (sampled).
  for (size_t len = 0; len < good.size(); len += 37) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    auto result = HyperLogLog::Deserialize(cut);  // Must not crash.
    if (result.ok()) {
      // Only acceptable if the prefix happens to be self-consistent —
      // with a fixed-size payload that means full length only.
      EXPECT_EQ(len, good.size());
    }
  }
  // Random bit flips: decode may succeed (registers are free-form bytes),
  // but must never crash and precision must stay in range.
  for (int trial = 0; trial < 200; trial++) {
    std::vector<uint8_t> mutated = good;
    const size_t at = rng.NextBounded(mutated.size());
    mutated[at] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    auto result = HyperLogLog::Deserialize(mutated);
    if (result.ok()) {
      EXPECT_GE(result.value().precision(), 4);
      EXPECT_LE(result.value().precision(), 18);
    }
  }
  // Pure garbage.
  for (int trial = 0; trial < 100; trial++) {
    std::vector<uint8_t> garbage(rng.NextBounded(64));
    for (auto& byte : garbage) {
      byte = static_cast<uint8_t>(rng.NextBounded(256));
    }
    HyperLogLog::Deserialize(garbage);  // Must not crash.
  }
}

TEST(SerializationFuzzTest, CmsSurvivesCorruption) {
  CountMinSketch cms(256, 4);
  workload::ZipfGenerator zipf(1000, 1.2, 5);
  for (int i = 0; i < 20000; i++) cms.Add(zipf.Next());
  const std::vector<uint8_t> good = cms.Serialize();
  Rng rng(TestSeed() ^ 6);

  for (size_t len = 0; len < good.size(); len += 53) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    CountMinSketch::Deserialize(cut);  // Must not crash.
  }
  for (int trial = 0; trial < 200; trial++) {
    std::vector<uint8_t> mutated = good;
    const size_t at = rng.NextBounded(mutated.size());
    mutated[at] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    auto result = CountMinSketch::Deserialize(mutated);
    if (result.ok()) {
      EXPECT_GE(result.value().width(), 1u);
      EXPECT_GE(result.value().depth(), 1u);
    }
  }
}

// ------------------------------------------------------------ Determinism
//
// Property: identical seeds => bit-identical behaviour, for every
// randomized structure (the reproducibility convention of the library).

TEST(DeterminismTest, SeededStructuresReproduceExactly) {
  for (int run = 0; run < 2; run++) {
    static double first_hll = 0;
    static uint64_t first_cms = 0;
    workload::ZipfGenerator zipf(10000, 1.2, 42);
    HyperLogLog hll(11);
    CountMinSketch cms(512, 4, true);
    for (int i = 0; i < 50000; i++) {
      const uint64_t item = zipf.Next();
      hll.Add(item);
      cms.Add(item);
    }
    if (run == 0) {
      first_hll = hll.Estimate();
      first_cms = cms.Estimate(uint64_t{0});
    } else {
      EXPECT_DOUBLE_EQ(hll.Estimate(), first_hll);
      EXPECT_EQ(cms.Estimate(uint64_t{0}), first_cms);
    }
  }
}

// --------------------------------------------------------- DyadicCountMin

TEST(DyadicCountMinTest, RangeCountsMatchExactWithinBound) {
  DyadicCountMin dcm(16, 4096, 5);
  Rng rng(TestSeed() ^ 7);
  std::vector<uint32_t> data;
  const int kN = 200000;
  for (int i = 0; i < kN; i++) {
    const uint32_t v = static_cast<uint32_t>(std::clamp(
        32768.0 + 8000.0 * rng.NextGaussian(), 0.0, 65535.0));
    dcm.Add(v);
    data.push_back(v);
  }
  auto exact_range = [&](uint32_t lo, uint32_t hi) {
    uint64_t count = 0;
    for (uint32_t v : data) {
      if (v >= lo && v <= hi) count++;
    }
    return count;
  };
  // Error bound ~ 2 * 16 levels * (e/4096) * n ~ 2% of n.
  const double bound = 2.0 * 16.0 * (2.718 / 4096.0) * kN;
  for (auto [lo, hi] : std::vector<std::pair<uint32_t, uint32_t>>{
           {0, 65535}, {30000, 35000}, {0, 32768}, {40000, 41000},
           {12345, 54321}}) {
    const uint64_t exact = exact_range(lo, hi);
    const uint64_t est = dcm.EstimateRange(lo, hi);
    EXPECT_GE(est, exact);                        // CM never undercounts.
    EXPECT_LE(static_cast<double>(est - exact), bound)
        << "[" << lo << ", " << hi << "]";
  }
}

TEST(DyadicCountMinTest, QuantilesFromRangeCounts) {
  DyadicCountMin dcm(16, 4096, 5);
  Rng rng(TestSeed() ^ 8);
  std::vector<uint32_t> data;
  for (int i = 0; i < 100000; i++) {
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(1 << 16));
    dcm.Add(v);
    data.push_back(v);
  }
  std::sort(data.begin(), data.end());
  for (double phi : {0.1, 0.5, 0.9}) {
    const uint32_t answer = dcm.Quantile(phi);
    const double rank = static_cast<double>(
        std::upper_bound(data.begin(), data.end(), answer) - data.begin());
    EXPECT_NEAR(rank / data.size(), phi, 0.03) << phi;
  }
}

TEST(DyadicCountMinTest, SingleValueRangeMatchesPoint) {
  DyadicCountMin dcm(12, 1024, 4);
  for (int i = 0; i < 1000; i++) dcm.Add(777);
  EXPECT_EQ(dcm.EstimateRange(777, 777), dcm.EstimatePoint(777));
  EXPECT_GE(dcm.EstimatePoint(777), 1000u);
}

// --------------------------------------------------- DeletableBloomFilter

TEST(DeletableBloomFilterTest, BasicMembership) {
  DeletableBloomFilter filter(1 << 16, 4, 1024);
  for (uint64_t i = 0; i < 2000; i++) filter.Add(i);
  for (uint64_t i = 0; i < 2000; i++) EXPECT_TRUE(filter.Contains(i));
}

TEST(DeletableBloomFilterTest, MostKeysDeletableAtModerateLoad) {
  // The paper's headline: at moderate load with enough regions, the large
  // majority of keys can be deleted.
  DeletableBloomFilter filter(1 << 16, 4, 4096);
  const uint64_t kKeys = 3000;
  for (uint64_t i = 0; i < kKeys; i++) filter.Add(i);
  uint64_t deleted = 0;
  uint64_t gone = 0;
  for (uint64_t i = 0; i < kKeys; i++) {
    if (filter.Remove(i)) {
      deleted++;
      if (!filter.Contains(i)) gone++;
    }
  }
  EXPECT_GT(static_cast<double>(deleted) / kKeys, 0.9);
  EXPECT_GT(static_cast<double>(gone) / deleted, 0.5);
}

TEST(DeletableBloomFilterTest, DeletionNeverCausesFalseNegativesForOthers) {
  DeletableBloomFilter filter(1 << 15, 4, 2048);
  for (uint64_t i = 0; i < 2000; i++) filter.Add(i);
  // Delete the first half; the second half must all remain present.
  for (uint64_t i = 0; i < 1000; i++) filter.Remove(i);
  for (uint64_t i = 1000; i < 2000; i++) {
    EXPECT_TRUE(filter.Contains(i)) << i;
  }
}

TEST(DeletableBloomFilterTest, CollisionFractionGrowsWithLoad) {
  DeletableBloomFilter filter(1 << 14, 4, 512);
  double prev = 0.0;
  for (int phase = 0; phase < 4; phase++) {
    for (uint64_t i = phase * 1000ull; i < (phase + 1) * 1000ull; i++) {
      filter.Add(i);
    }
    const double fraction = filter.CollidedRegionFraction();
    EXPECT_GE(fraction, prev);
    prev = fraction;
  }
  EXPECT_GT(prev, 0.1);
}

// ---------------------------------------------------------------------------
// SketchBlob contract: every catalog sketch must (a) roundtrip through the
// versioned envelope with identical answers, and (b) give the same (or
// boundedly-worse, per each algorithm's merge guarantee) answers when a
// stream is sharded across instances and the shard snapshots are merged
// back through state::MergeBlob — the invariant the platform shard-combiner
// and the Lambda serving layer both rely on.
// ---------------------------------------------------------------------------

constexpr size_t kShards = 3;

// Roundtrips through the envelope; a decode failure fails the test here and
// aborts via Result::value() rather than returning a bogus sketch.
template <typename T>
T BlobRoundTrip(const T& sketch) {
  Result<T> back = state::FromBlob<T>(state::ToBlob(sketch));
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  return std::move(back).value();
}

std::vector<uint64_t> UniformKeys(size_t n, uint64_t domain, uint64_t salt) {
  Rng rng(TestSeed() ^ salt);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.NextBounded(domain);
  return keys;
}

std::vector<uint64_t> ZipfKeys(size_t n, uint64_t domain, uint64_t salt) {
  workload::ZipfGenerator zipf(domain, 1.2, TestSeed() ^ salt);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = zipf.Next();
  return keys;
}

std::vector<std::vector<uint64_t>> BothWorkloads(size_t n, uint64_t domain) {
  return {UniformKeys(n, domain, 0x5ead1), ZipfKeys(n, domain, 0x5ead2)};
}

// Splits `keys` round-robin across kShards instances and also feeds a
// single reference instance; returns {merged-from-blobs, single}.
template <typename T, typename Make, typename AddFn>
std::pair<T, T> ShardMerge(const std::vector<uint64_t>& keys, Make make,
                           AddFn add) {
  T single = make();
  std::vector<T> shards;
  for (size_t s = 0; s < kShards; s++) shards.push_back(make());
  for (size_t i = 0; i < keys.size(); i++) {
    add(shards[i % kShards], keys[i], i);
    add(single, keys[i], i);
  }
  T merged = make();
  for (const T& shard : shards) {
    Status st = state::MergeBlob(merged, state::ToBlob(shard));
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return {std::move(merged), std::move(single)};
}

// Checks that `v` is a valid phi-quantile of `sorted` up to `tol` rank
// error. Tied values occupy a rank *interval* [rank of first occurrence,
// rank of last], so the assertion is against the interval, not a point —
// under Zipf the modal value alone can span 20% of the CDF.
void ExpectRankNear(const std::vector<double>& sorted, double v, double phi,
                    double tol) {
  const double lo =
      static_cast<double>(std::lower_bound(sorted.begin(), sorted.end(), v) -
                          sorted.begin()) /
      sorted.size();
  const double hi =
      static_cast<double>(std::upper_bound(sorted.begin(), sorted.end(), v) -
                          sorted.begin()) /
      sorted.size();
  EXPECT_GE(phi, lo - tol) << "value " << v << " at phi " << phi;
  EXPECT_LE(phi, hi + tol) << "value " << v << " at phi " << phi;
}

template <typename T, typename Make>
void ExpectExactCardinalityShardMerge(const std::vector<uint64_t>& keys,
                                      Make make) {
  auto add = [](T& s, uint64_t k, size_t) { s.Add(k); };
  auto [merged, single] = ShardMerge<T>(keys, make, add);
  // Register/bitmap union is order- and partition-insensitive: exact.
  EXPECT_DOUBLE_EQ(merged.Estimate(), single.Estimate());
  EXPECT_DOUBLE_EQ(BlobRoundTrip(single).Estimate(), single.Estimate());
}

TEST(SketchBlobPropertyTest, CardinalityShardMergeMatchesSingleExactly) {
  for (const auto& keys : BothWorkloads(20000, 5000)) {
    ExpectExactCardinalityShardMerge<HyperLogLog>(
        keys, [] { return HyperLogLog(12); });
    ExpectExactCardinalityShardMerge<KmvSketch>(keys,
                                                [] { return KmvSketch(256); });
    ExpectExactCardinalityShardMerge<PcsaCounter>(
        keys, [] { return PcsaCounter(64); });
    ExpectExactCardinalityShardMerge<LinearCounter>(
        keys, [] { return LinearCounter(1 << 16); });
    ExpectExactCardinalityShardMerge<LogLogCounter>(
        keys, [] { return LogLogCounter(12); });
  }
}

TEST(SketchBlobPropertyTest, SlidingHllShardMergeOnSharedTimeline) {
  const uint64_t kMaxWindow = 4096;
  for (const auto& keys : BothWorkloads(8000, 2000)) {
    // Timestamps are global stream positions (the shared-timeline contract
    // documented on SlidingHyperLogLog::Merge).
    auto make = [&] { return SlidingHyperLogLog(12, kMaxWindow); };
    auto add = [](SlidingHyperLogLog& s, uint64_t k, size_t i) {
      s.Add(k, i + 1);
    };
    auto [merged, single] = ShardMerge<SlidingHyperLogLog>(keys, make, add);
    const uint64_t now = keys.size();
    for (uint64_t window : {kMaxWindow, kMaxWindow / 2, kMaxWindow / 8}) {
      EXPECT_DOUBLE_EQ(merged.Estimate(now, window),
                       single.Estimate(now, window))
          << "window " << window;
    }
    SlidingHyperLogLog rt = BlobRoundTrip(single);
    EXPECT_DOUBLE_EQ(rt.Estimate(now, kMaxWindow),
                     single.Estimate(now, kMaxWindow));
  }
}

TEST(SketchBlobPropertyTest, LinearFrequencySketchesShardMergeExactly) {
  for (const auto& keys : BothWorkloads(20000, 2000)) {
    {
      // Plain (non-conservative) Count-Min is linear: cells simply add.
      auto make = [] { return CountMinSketch(512, 4); };
      auto add = [](CountMinSketch& s, uint64_t k, size_t) { s.Add(k); };
      auto [merged, single] = ShardMerge<CountMinSketch>(keys, make, add);
      EXPECT_EQ(merged.total_count(), single.total_count());
      CountMinSketch rt = BlobRoundTrip(single);
      for (uint64_t k = 0; k < 200; k++) {
        EXPECT_EQ(merged.Estimate(k), single.Estimate(k)) << k;
        EXPECT_EQ(rt.Estimate(k), single.Estimate(k)) << k;
      }
    }
    {
      auto make = [] { return CountSketch(512, 5); };
      auto add = [](CountSketch& s, uint64_t k, size_t) { s.Add(k); };
      auto [merged, single] = ShardMerge<CountSketch>(keys, make, add);
      EXPECT_DOUBLE_EQ(merged.EstimateF2(), single.EstimateF2());
      CountSketch rt = BlobRoundTrip(single);
      for (uint64_t k = 0; k < 200; k++) {
        EXPECT_EQ(merged.Estimate(k), single.Estimate(k)) << k;
        EXPECT_EQ(rt.Estimate(k), single.Estimate(k)) << k;
      }
    }
    {
      auto make = [] { return AmsSketch(5, 64); };
      auto add = [](AmsSketch& s, uint64_t k, size_t) { s.Add(k); };
      auto [merged, single] = ShardMerge<AmsSketch>(keys, make, add);
      EXPECT_DOUBLE_EQ(merged.EstimateF2(), single.EstimateF2());
      EXPECT_DOUBLE_EQ(BlobRoundTrip(single).EstimateF2(),
                       single.EstimateF2());
    }
  }
}

TEST(SketchBlobPropertyTest, DyadicCountMinShardMergeExactRanges) {
  for (const auto& keys : BothWorkloads(20000, 1 << 12)) {
    auto make = [] { return DyadicCountMin(12, 512, 4); };
    auto add = [](DyadicCountMin& s, uint64_t k, size_t) {
      s.Add(static_cast<uint32_t>(k));
    };
    auto [merged, single] = ShardMerge<DyadicCountMin>(keys, make, add);
    DyadicCountMin rt = BlobRoundTrip(single);
    const std::pair<uint32_t, uint32_t> ranges[] = {
        {0, 0}, {0, 100}, {17, 1000}, {0, (1u << 12) - 1}, {2000, 4000}};
    for (const auto& [lo, hi] : ranges) {
      EXPECT_EQ(merged.EstimateRange(lo, hi), single.EstimateRange(lo, hi));
      EXPECT_EQ(rt.EstimateRange(lo, hi), single.EstimateRange(lo, hi));
    }
  }
}

TEST(SketchBlobPropertyTest, SpaceSavingShardMergeKeepsGuarantees) {
  const size_t kN = 30000;
  const size_t kCapacity = 128;
  std::vector<uint64_t> keys = ZipfKeys(kN, 500, 0x70b1);
  std::vector<uint64_t> true_count(500, 0);
  for (uint64_t k : keys) true_count[k]++;

  auto make = [] { return SpaceSaving<uint64_t>(kCapacity); };
  auto add = [](SpaceSaving<uint64_t>& s, uint64_t k, size_t) { s.Add(k); };
  auto [merged, single] = ShardMerge<SpaceSaving<uint64_t>>(keys, make, add);
  EXPECT_EQ(merged.count(), kN);
  EXPECT_EQ(single.count(), kN);
  // The mergeable-summaries guarantee survives the shard merge: estimates
  // stay overestimates and the per-key error bound stays honest.
  for (uint64_t k = 0; k < 5; k++) {
    EXPECT_GE(merged.Estimate(k), true_count[k]) << k;
    EXPECT_LE(merged.Estimate(k) - merged.ErrorOf(k), true_count[k]) << k;
  }
  // The dominant key under Zipf(1.2) must survive sharding as top-1.
  ASSERT_FALSE(merged.TopK(1).empty());
  EXPECT_EQ(merged.TopK(1)[0].key, single.TopK(1)[0].key);

  SpaceSaving<uint64_t> rt = BlobRoundTrip(single);
  EXPECT_EQ(rt.count(), single.count());
  const auto top_rt = rt.TopK(10);
  const auto top_single = single.TopK(10);
  ASSERT_EQ(top_rt.size(), top_single.size());
  for (size_t i = 0; i < top_rt.size(); i++) {
    EXPECT_EQ(top_rt[i].key, top_single[i].key);
    EXPECT_EQ(top_rt[i].estimate, top_single[i].estimate);
  }
}

TEST(SketchBlobPropertyTest, SpaceSavingStringRoundTrip) {
  SpaceSaving<std::string> sketch(64);
  for (uint64_t k : ZipfKeys(5000, 300, 0x57f1)) {
    sketch.Add("key-" + std::to_string(k));
  }
  SpaceSaving<std::string> rt = BlobRoundTrip(sketch);
  EXPECT_EQ(rt.count(), sketch.count());
  const auto a = rt.TopK(10);
  const auto b = sketch.TopK(10);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].estimate, b[i].estimate);
  }
}

TEST(SketchBlobPropertyTest, MisraGriesShardMergeKeepsGuarantees) {
  const size_t kN = 30000;
  std::vector<uint64_t> keys = ZipfKeys(kN, 500, 0x316a);
  std::vector<uint64_t> true_count(500, 0);
  for (uint64_t k : keys) true_count[k]++;

  auto make = [] { return MisraGries<uint64_t>(128); };
  auto add = [](MisraGries<uint64_t>& s, uint64_t k, size_t) { s.Add(k); };
  auto [merged, single] = ShardMerge<MisraGries<uint64_t>>(keys, make, add);
  EXPECT_EQ(merged.count(), kN);
  for (uint64_t k = 0; k < 5; k++) {
    EXPECT_LE(merged.Estimate(k), true_count[k]) << k;
    EXPECT_GE(merged.Estimate(k) + merged.MaxError(), true_count[k]) << k;
  }

  MisraGries<std::string> str_sketch(64);
  for (uint64_t k : keys) str_sketch.Add(std::to_string(k));
  MisraGries<std::string> rt = BlobRoundTrip(str_sketch);
  EXPECT_EQ(rt.count(), str_sketch.count());
  for (uint64_t k = 0; k < 10; k++) {
    EXPECT_EQ(rt.Estimate(std::to_string(k)),
              str_sketch.Estimate(std::to_string(k)));
  }
}

TEST(SketchBlobPropertyTest, QuantileSummariesShardMergeWithinRankBounds) {
  for (const auto& keys : BothWorkloads(20000, 10000)) {
    std::vector<double> sorted(keys.size());
    for (size_t i = 0; i < keys.size(); i++) {
      sorted[i] = static_cast<double>(keys[i]);
    }
    std::sort(sorted.begin(), sorted.end());
    const double kPhis[] = {0.1, 0.5, 0.9, 0.99};

    {
      auto make = [] { return TDigest(100.0); };
      auto add = [](TDigest& s, uint64_t k, size_t) {
        s.Add(static_cast<double>(k));
      };
      auto [merged, single] = ShardMerge<TDigest>(keys, make, add);
      EXPECT_DOUBLE_EQ(static_cast<double>(merged.count()),
                       static_cast<double>(single.count()));
      for (double phi : kPhis) {
        ExpectRankNear(sorted, merged.Quantile(phi), phi, 0.05);
      }
      TDigest rt = BlobRoundTrip(single);
      for (double phi : kPhis) {
        EXPECT_DOUBLE_EQ(rt.Quantile(phi), single.Quantile(phi)) << phi;
      }
    }
    {
      const double kEps = 0.02;
      auto make = [&] { return GkQuantile(kEps); };
      auto add = [](GkQuantile& s, uint64_t k, size_t) {
        s.Add(static_cast<double>(k));
      };
      auto [merged, single] = ShardMerge<GkQuantile>(keys, make, add);
      // GK merge sums the sides' eps*n budgets: kShards-way merge widens
      // the rank guarantee to kShards * eps.
      const double tol = kShards * kEps + 0.01;
      for (double phi : kPhis) {
        ExpectRankNear(sorted, merged.Query(phi), phi, tol);
      }
      GkQuantile rt = BlobRoundTrip(single);
      for (double phi : kPhis) {
        EXPECT_DOUBLE_EQ(rt.Query(phi), single.Query(phi)) << phi;
      }
    }
    {
      const std::vector<QuantileTarget> targets = {
          {0.5, 0.02}, {0.9, 0.01}, {0.99, 0.005}};
      auto make = [&] { return CkmsQuantile(targets); };
      auto add = [](CkmsQuantile& s, uint64_t k, size_t) {
        s.Add(static_cast<double>(k));
      };
      auto [merged, single] = ShardMerge<CkmsQuantile>(keys, make, add);
      for (const QuantileTarget& t : targets) {
        const double tol = kShards * 2.0 * t.error + 0.01;
        ExpectRankNear(sorted, merged.Query(t.quantile), t.quantile, tol);
      }
      CkmsQuantile rt = BlobRoundTrip(single);
      for (const QuantileTarget& t : targets) {
        EXPECT_DOUBLE_EQ(rt.Query(t.quantile), single.Query(t.quantile));
      }
    }
    {
      auto make = [] { return QDigest(14, 512); };
      auto add = [](QDigest& s, uint64_t k, size_t) {
        s.Add(static_cast<uint32_t>(k));
      };
      auto [merged, single] = ShardMerge<QDigest>(keys, make, add);
      // Rank error is (universe_bits/compression)*n per summary and merge
      // errors compound, so keep the tolerance loose.
      for (double phi : kPhis) {
        ExpectRankNear(sorted, merged.Quantile(phi), phi, 0.15);
      }
      QDigest rt = BlobRoundTrip(single);
      for (double phi : kPhis) {
        EXPECT_EQ(rt.Quantile(phi), single.Quantile(phi)) << phi;
      }
    }
  }
}

TEST(SketchBlobPropertyTest, ExponentialHistogramSharedTimelineShardMerge) {
  const uint64_t kWindow = 2048;
  const uint32_t kK = 16;
  const size_t kN = 8192;
  for (const auto& keys : BothWorkloads(kN, 64)) {
    ExponentialHistogram single(kWindow, kK);
    std::vector<ExponentialHistogram> shards(kShards,
                                             ExponentialHistogram(kWindow, kK));
    uint64_t true_in_window = 0;
    for (size_t i = 0; i < keys.size(); i++) {
      const bool bit = (keys[i] % 2) == 0;
      single.Add(bit);
      // Shared timeline: every shard sees every position, but each 1 is
      // owned by exactly one shard (the key-sharded topology pattern).
      for (size_t s = 0; s < kShards; s++) {
        shards[s].Add(s == i % kShards ? bit : false);
      }
      if (bit && i + kWindow >= keys.size()) true_in_window++;
    }
    ExponentialHistogram merged(kWindow, kK);
    for (const auto& shard : shards) {
      Status st = state::MergeBlob(merged, state::ToBlob(shard));
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    // The DGIM bracketing invariant must survive the merge...
    EXPECT_LE(merged.LowerBound(), true_in_window);
    EXPECT_GE(merged.UpperBound(), true_in_window);
    // ...and the estimate stays within a (slightly widened) 1/k band.
    const double tol = 2.0 / kK * static_cast<double>(true_in_window) + 4.0;
    EXPECT_NEAR(static_cast<double>(merged.Estimate()),
                static_cast<double>(true_in_window), tol);
    EXPECT_NEAR(static_cast<double>(single.Estimate()),
                static_cast<double>(true_in_window), tol);

    ExponentialHistogram rt = BlobRoundTrip(single);
    EXPECT_EQ(rt.Estimate(), single.Estimate());
    EXPECT_EQ(rt.UpperBound(), single.UpperBound());
    EXPECT_EQ(rt.LowerBound(), single.LowerBound());
  }
}

TEST(SketchBlobPropertyTest, EhSumSharedTimelineShardMerge) {
  const uint64_t kWindow = 2048;
  const uint32_t kK = 16;
  const uint32_t kValueBits = 4;
  const size_t kN = 8192;
  for (const auto& keys : BothWorkloads(kN, 1 << kValueBits)) {
    EhSum single(kWindow, kK, kValueBits);
    std::vector<EhSum> shards(kShards, EhSum(kWindow, kK, kValueBits));
    uint64_t true_sum = 0;
    for (size_t i = 0; i < keys.size(); i++) {
      const uint32_t value = static_cast<uint32_t>(keys[i]);
      single.Add(value);
      for (size_t s = 0; s < kShards; s++) {
        shards[s].Add(s == i % kShards ? value : 0);
      }
      if (i + kWindow >= keys.size()) true_sum += value;
    }
    EhSum merged(kWindow, kK, kValueBits);
    for (const auto& shard : shards) {
      Status st = state::MergeBlob(merged, state::ToBlob(shard));
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    // Per-bit-slice DGIM error bounds add across the value_bits slices.
    const double tol =
        3.0 / kK * static_cast<double>(true_sum) + (1 << kValueBits);
    EXPECT_NEAR(static_cast<double>(merged.Estimate()),
                static_cast<double>(true_sum), tol);
    EXPECT_NEAR(static_cast<double>(single.Estimate()),
                static_cast<double>(true_sum), tol);

    EhSum rt = BlobRoundTrip(single);
    EXPECT_EQ(rt.Estimate(), single.Estimate());
    EXPECT_EQ(rt.NumBuckets(), single.NumBuckets());
  }
}

TEST(SketchBlobPropertyTest, MicroClusterShardMergeMatchesSingle) {
  Rng rng(TestSeed() ^ 0xc1u);
  const size_t kDim = 3;
  const size_t kPoints = 3000;
  MicroCluster single;
  single.ids = {0, 1, 2};
  std::vector<MicroCluster> shards(kShards);
  for (size_t s = 0; s < kShards; s++) {
    shards[s].ids = {static_cast<uint32_t>(s)};
  }
  for (size_t i = 0; i < kPoints; i++) {
    Point p(kDim);
    for (double& x : p) x = rng.NextGaussian();
    single.Absorb(p, static_cast<double>(i));
    shards[i % kShards].Absorb(p, static_cast<double>(i));
  }
  MicroCluster merged;
  for (const auto& shard : shards) {
    Status st = state::MergeBlob(merged, state::ToBlob(shard));
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  EXPECT_EQ(merged.n, single.n);
  EXPECT_EQ(merged.ids, single.ids);
  const Point ca = merged.Centroid();
  const Point cb = single.Centroid();
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t j = 0; j < ca.size(); j++) {
    EXPECT_NEAR(ca[j], cb[j], 1e-9) << j;
  }
  EXPECT_NEAR(merged.Radius(), single.Radius(), 1e-9);
  EXPECT_NEAR(merged.MeanTimestamp(), single.MeanTimestamp(), 1e-9);

  MicroCluster rt = BlobRoundTrip(single);
  EXPECT_EQ(rt.n, single.n);
  EXPECT_EQ(rt.ids, single.ids);
  EXPECT_EQ(rt.linear_sum, single.linear_sum);
  EXPECT_EQ(rt.squared_sum, single.squared_sum);
  EXPECT_EQ(rt.timestamp_sum, single.timestamp_sum);
  EXPECT_EQ(rt.timestamp_sq, single.timestamp_sq);
}

// ---------------------------------------------------------------------------
// Envelope hardening: malformed SketchBlobs must map to typed errors, never
// UB — mirroring the torn-checkpoint edge cases of the chaos suite.
// ---------------------------------------------------------------------------

// Builds a syntactically valid envelope around an arbitrary payload.
std::vector<uint8_t> WrapPayload(state::TypeId type, uint16_t version,
                                 const std::vector<uint8_t>& payload) {
  ByteWriter w;
  w.PutU32(state::kBlobMagic);
  w.PutU16(static_cast<uint16_t>(type));
  w.PutU16(version);
  w.PutBytes(payload.data(), payload.size());
  return w.TakeBytes();
}

TEST(BlobEnvelopeTest, PeekReportsTypeAndVersion) {
  HyperLogLog h(10);
  h.Add(uint64_t{42});
  Result<state::BlobHeader> header = state::PeekBlobHeader(state::ToBlob(h));
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().type_id, state::TypeId::kHyperLogLog);
  EXPECT_EQ(header.value().version, HyperLogLog::kStateVersion);
}

TEST(BlobEnvelopeTest, RejectsBadMagicTypeVersionAndTrailingBytes) {
  HyperLogLog h(10);
  for (uint64_t k = 0; k < 100; k++) h.Add(k);
  const std::vector<uint8_t> blob = state::ToBlob(h);

  std::vector<uint8_t> bad_magic = blob;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(state::FromBlob<HyperLogLog>(bad_magic).status().code(),
            StatusCode::kCorruption);

  // A blob of one type handed to another sketch's FromBlob is a caller
  // error, not corruption.
  EXPECT_EQ(state::FromBlob<CountMinSketch>(blob).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(state::FromBlob<KmvSketch>(blob).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<uint8_t> wrong_version = blob;
  wrong_version[6] ^= 0x01;  // version is the u16 at offset 6
  EXPECT_EQ(state::FromBlob<HyperLogLog>(wrong_version).status().code(),
            StatusCode::kCorruption);

  std::vector<uint8_t> trailing = blob;
  trailing.push_back(0);
  EXPECT_EQ(state::FromBlob<HyperLogLog>(trailing).status().code(),
            StatusCode::kCorruption);

  EXPECT_EQ(state::FromBlob<HyperLogLog>({}).status().code(),
            StatusCode::kCorruption);
}

template <typename T>
void ExpectAllTruncationsRejected(const T& sketch) {
  const std::vector<uint8_t> blob = state::ToBlob(sketch);
  for (size_t len = 0; len < blob.size(); len++) {
    const std::vector<uint8_t> prefix(blob.begin(), blob.begin() + len);
    Result<T> r = state::FromBlob<T>(prefix);
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << "/" << blob.size()
                         << " accepted";
  }
}

TEST(BlobEnvelopeTest, EveryTruncationOfEveryContractTypeIsRejected) {
  // Small geometries keep the all-prefixes sweep cheap.
  const std::vector<uint64_t> keys = ZipfKeys(500, 100, 0x7a1);
  {
    HyperLogLog s(4);
    for (uint64_t k : keys) s.Add(k);
    ExpectAllTruncationsRejected(s);
  }
  {
    SlidingHyperLogLog s(4, 256);
    for (size_t i = 0; i < keys.size(); i++) s.Add(keys[i], i + 1);
    ExpectAllTruncationsRejected(s);
  }
  {
    KmvSketch s(16);
    for (uint64_t k : keys) s.Add(k);
    ExpectAllTruncationsRejected(s);
  }
  {
    PcsaCounter s(8);
    for (uint64_t k : keys) s.Add(k);
    ExpectAllTruncationsRejected(s);
  }
  {
    LinearCounter s(256);
    for (uint64_t k : keys) s.Add(k);
    ExpectAllTruncationsRejected(s);
  }
  {
    LogLogCounter s(4);
    for (uint64_t k : keys) s.Add(k);
    ExpectAllTruncationsRejected(s);
  }
  {
    CountMinSketch s(32, 3);
    for (uint64_t k : keys) s.Add(k);
    ExpectAllTruncationsRejected(s);
  }
  {
    CountSketch s(32, 3);
    for (uint64_t k : keys) s.Add(k);
    ExpectAllTruncationsRejected(s);
  }
  {
    DyadicCountMin s(8, 32, 2);
    for (uint64_t k : keys) s.Add(static_cast<uint32_t>(k % 256));
    ExpectAllTruncationsRejected(s);
  }
  {
    SpaceSaving<uint64_t> s(16);
    for (uint64_t k : keys) s.Add(k);
    ExpectAllTruncationsRejected(s);
  }
  {
    SpaceSaving<std::string> s(16);
    for (uint64_t k : keys) s.Add(std::to_string(k));
    ExpectAllTruncationsRejected(s);
  }
  {
    MisraGries<uint64_t> s(16);
    for (uint64_t k : keys) s.Add(k);
    ExpectAllTruncationsRejected(s);
  }
  {
    MisraGries<std::string> s(16);
    for (uint64_t k : keys) s.Add(std::to_string(k));
    ExpectAllTruncationsRejected(s);
  }
  {
    TDigest s(20.0);
    for (uint64_t k : keys) s.Add(static_cast<double>(k));
    ExpectAllTruncationsRejected(s);
  }
  {
    GkQuantile s(0.1);
    for (uint64_t k : keys) s.Add(static_cast<double>(k));
    ExpectAllTruncationsRejected(s);
  }
  {
    CkmsQuantile s({{0.5, 0.05}, {0.9, 0.02}});
    for (uint64_t k : keys) s.Add(static_cast<double>(k));
    ExpectAllTruncationsRejected(s);
  }
  {
    QDigest s(8, 16);
    for (uint64_t k : keys) s.Add(static_cast<uint32_t>(k % 256));
    ExpectAllTruncationsRejected(s);
  }
  {
    AmsSketch s(3, 16);
    for (uint64_t k : keys) s.Add(k);
    ExpectAllTruncationsRejected(s);
  }
  {
    ExponentialHistogram s(128, 4);
    for (uint64_t k : keys) s.Add(k % 2 == 0);
    ExpectAllTruncationsRejected(s);
  }
  {
    EhSum s(128, 4, 4);
    for (uint64_t k : keys) s.Add(static_cast<uint32_t>(k % 16));
    ExpectAllTruncationsRejected(s);
  }
  {
    MicroCluster s;
    s.ids = {1, 5, 9};
    for (size_t i = 0; i < 50; i++) {
      s.Absorb({static_cast<double>(i), 1.0}, static_cast<double>(i));
    }
    ExpectAllTruncationsRejected(s);
  }
}

TEST(BlobEnvelopeTest, MergeBlobRejectsParameterMismatch) {
  {
    HyperLogLog a(10), b(12);
    a.Add(uint64_t{1});
    b.Add(uint64_t{2});
    EXPECT_EQ(state::MergeBlob(a, state::ToBlob(b)).code(),
              StatusCode::kInvalidArgument);
  }
  {
    CountMinSketch a(256, 4), b(512, 4);
    EXPECT_EQ(state::MergeBlob(a, state::ToBlob(b)).code(),
              StatusCode::kInvalidArgument);
  }
  {
    GkQuantile a(0.01), b(0.02);
    a.Add(1.0);
    b.Add(2.0);
    EXPECT_EQ(state::MergeBlob(a, state::ToBlob(b)).code(),
              StatusCode::kInvalidArgument);
  }
  {
    ExponentialHistogram a(1024, 8), b(2048, 8);
    EXPECT_EQ(state::MergeBlob(a, state::ToBlob(b)).code(),
              StatusCode::kInvalidArgument);
  }
  {
    QDigest a(12, 64), b(10, 64);
    EXPECT_EQ(state::MergeBlob(a, state::ToBlob(b)).code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(BlobEnvelopeTest, MalformedPayloadsAreCorruptionNotUb) {
  {
    // QDigest payload with a duplicate node id.
    ByteWriter w;
    w.PutU32(8);   // universe_bits
    w.PutU32(16);  // compression
    w.PutVarint(4);
    w.PutVarint(2);
    w.PutVarint(17);
    w.PutVarint(2);
    w.PutVarint(17);
    w.PutVarint(2);
    const auto blob =
        WrapPayload(state::TypeId::kQDigest, QDigest::kStateVersion,
                    w.TakeBytes());
    EXPECT_EQ(state::FromBlob<QDigest>(blob).status().code(),
              StatusCode::kCorruption);
  }
  {
    // Exponential histogram with a non-power-of-two bucket size.
    ByteWriter w;
    w.PutVarint(128);  // window
    w.PutU32(4);       // k
    w.PutVarint(50);   // position
    w.PutVarint(1);    // bucket count
    w.PutVarint(49);   // newest_position
    w.PutVarint(3);    // size: not a power of two
    const auto blob = WrapPayload(state::TypeId::kExponentialHistogram,
                                  ExponentialHistogram::kStateVersion,
                                  w.TakeBytes());
    EXPECT_EQ(state::FromBlob<ExponentialHistogram>(blob).status().code(),
              StatusCode::kCorruption);
  }
  {
    // Micro-cluster with an unsorted id list.
    MicroCluster c;
    c.Absorb({1.0, 2.0}, 0.0);
    ByteWriter w;
    c.SerializeTo(w);
    // Strip the trailing zero id-count varint and splice in two ids out of
    // order.
    std::vector<uint8_t> payload = w.TakeBytes();
    payload.pop_back();
    ByteWriter spliced;
    spliced.PutBytes(payload.data(), payload.size());
    spliced.PutVarint(2);
    spliced.PutU32(9);
    spliced.PutU32(4);  // out of order
    const auto blob =
        WrapPayload(state::TypeId::kMicroCluster, MicroCluster::kStateVersion,
                    spliced.TakeBytes());
    EXPECT_EQ(state::FromBlob<MicroCluster>(blob).status().code(),
              StatusCode::kCorruption);
  }
  {
    // AMS header claiming a giant counter array must hit the geometry
    // guard, not attempt the allocation.
    ByteWriter w;
    w.PutU32(0xffffffffu);  // groups
    w.PutU32(0xffffffffu);  // group_size
    const auto blob = WrapPayload(state::TypeId::kAmsSketch,
                                  AmsSketch::kStateVersion, w.TakeBytes());
    EXPECT_EQ(state::FromBlob<AmsSketch>(blob).status().code(),
              StatusCode::kCorruption);
  }
}

TEST(BlobEnvelopeTest, RandomGarbageNeverCrashesFromBlob) {
  Rng rng(TestSeed() ^ 0xfa22);
  for (int trial = 0; trial < 300; trial++) {
    std::vector<uint8_t> garbage(rng.NextBounded(256));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextBounded(256));
    // Random bytes essentially never spell the magic, so these must fail —
    // and must do so through Status, not UB (ASan/UBSan backs this up).
    EXPECT_FALSE(state::FromBlob<HyperLogLog>(garbage).ok());
    EXPECT_FALSE(state::FromBlob<SpaceSaving<std::string>>(garbage).ok());
    EXPECT_FALSE(state::FromBlob<QDigest>(garbage).ok());
    EXPECT_FALSE(state::FromBlob<EhSum>(garbage).ok());
  }

  // Single-byte corruptions of a valid blob: any outcome but a crash or a
  // silent trailing-byte acceptance is fine.
  SpaceSaving<std::string> sketch(16);
  for (uint64_t k : ZipfKeys(2000, 100, 0xb17)) {
    sketch.Add(std::to_string(k));
  }
  const std::vector<uint8_t> blob = state::ToBlob(sketch);
  for (int trial = 0; trial < 200; trial++) {
    std::vector<uint8_t> mutated = blob;
    mutated[rng.NextBounded(mutated.size())] ^=
        static_cast<uint8_t>(1 + rng.NextBounded(255));
    (void)state::FromBlob<SpaceSaving<std::string>>(mutated);
  }
}

}  // namespace
}  // namespace streamlib
