// Cross-cutting property tests: invariants every mergeable/serializable/
// seeded structure in the library must satisfy, regardless of workload.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/cardinality/hyperloglog.h"
#include "core/cardinality/kmv_sketch.h"
#include "core/cardinality/linear_counter.h"
#include "core/cardinality/pcsa.h"
#include "core/filtering/deletable_bloom_filter.h"
#include "core/frequency/count_min_sketch.h"
#include "core/frequency/dyadic_count_min.h"
#include "core/moments/ams_sketch.h"
#include "core/quantiles/qdigest.h"
#include "test_seed.h"
#include "workload/zipf.h"

namespace streamlib {
namespace {

// ---------------------------------------------------------------- Merging
//
// Property: for mergeable summaries, merging must be order-insensitive —
// ((A + B) + C) and (A + (B + C)) must answer identically, and both must
// match the summary of the concatenated stream.

template <typename Sketch, typename AddFn>
void FillRange(Sketch* s, uint64_t lo, uint64_t hi, AddFn add) {
  for (uint64_t i = lo; i < hi; i++) add(s, i);
}

TEST(MergePropertyTest, HyperLogLogMergeIsAssociativeAndStreamEquivalent) {
  auto add = [](HyperLogLog* h, uint64_t i) { h->Add(i); };
  HyperLogLog a(12);
  HyperLogLog b(12);
  HyperLogLog c(12);
  HyperLogLog whole(12);
  FillRange(&a, 0, 40000, add);
  FillRange(&b, 30000, 70000, add);
  FillRange(&c, 60000, 100000, add);
  FillRange(&whole, 0, 100000, add);

  HyperLogLog left = a;
  ASSERT_TRUE(left.Merge(b).ok());
  ASSERT_TRUE(left.Merge(c).ok());
  HyperLogLog bc = b;
  ASSERT_TRUE(bc.Merge(c).ok());
  HyperLogLog right = a;
  ASSERT_TRUE(right.Merge(bc).ok());

  EXPECT_DOUBLE_EQ(left.Estimate(), right.Estimate());
  EXPECT_DOUBLE_EQ(left.Estimate(), whole.Estimate());
}

TEST(MergePropertyTest, KmvMergeIsAssociativeAndStreamEquivalent) {
  auto add = [](KmvSketch* s, uint64_t i) { s->Add(i); };
  KmvSketch a(512);
  KmvSketch b(512);
  KmvSketch c(512);
  KmvSketch whole(512);
  FillRange(&a, 0, 20000, add);
  FillRange(&b, 10000, 40000, add);
  FillRange(&c, 35000, 60000, add);
  FillRange(&whole, 0, 60000, add);

  KmvSketch left = a;
  ASSERT_TRUE(left.Merge(b).ok());
  ASSERT_TRUE(left.Merge(c).ok());
  KmvSketch bc = b;
  ASSERT_TRUE(bc.Merge(c).ok());
  KmvSketch right = a;
  ASSERT_TRUE(right.Merge(bc).ok());

  EXPECT_DOUBLE_EQ(left.Estimate(), right.Estimate());
  EXPECT_DOUBLE_EQ(left.Estimate(), whole.Estimate());
}

TEST(MergePropertyTest, CountMinMergeMatchesCombinedStream) {
  workload::ZipfGenerator zipf(5000, 1.1, 1);
  std::vector<uint64_t> stream;
  for (int i = 0; i < 60000; i++) stream.push_back(zipf.Next());

  CountMinSketch parts[3] = {CountMinSketch(1024, 4),
                             CountMinSketch(1024, 4),
                             CountMinSketch(1024, 4)};
  CountMinSketch whole(1024, 4);
  for (size_t i = 0; i < stream.size(); i++) {
    parts[i % 3].Add(stream[i]);
    whole.Add(stream[i]);
  }
  CountMinSketch merged = parts[0];
  ASSERT_TRUE(merged.Merge(parts[1]).ok());
  ASSERT_TRUE(merged.Merge(parts[2]).ok());
  for (uint64_t key = 0; key < 200; key++) {
    EXPECT_EQ(merged.Estimate(key), whole.Estimate(key)) << key;
  }
  EXPECT_EQ(merged.total_count(), whole.total_count());
}

TEST(MergePropertyTest, AmsMergeIsLinearUnderSplit) {
  auto add = [](AmsSketch* s, uint64_t i) { s->Add(i % 300); };
  AmsSketch a(5, 16);
  AmsSketch b(5, 16);
  AmsSketch whole(5, 16);
  FillRange(&a, 0, 30000, add);
  FillRange(&b, 30000, 60000, add);
  FillRange(&whole, 0, 60000, add);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.EstimateF2(), whole.EstimateF2());
}

TEST(MergePropertyTest, PcsaMergeIsIdempotent) {
  PcsaCounter a(128);
  for (uint64_t i = 0; i < 10000; i++) a.Add(i);
  PcsaCounter b = a;
  ASSERT_TRUE(b.Merge(a).ok());  // Self-merge must not change the estimate.
  EXPECT_DOUBLE_EQ(b.Estimate(), a.Estimate());
}

TEST(MergePropertyTest, LinearCounterUnionIsIdempotent) {
  LinearCounter a(1 << 14);
  for (uint64_t i = 0; i < 3000; i++) a.Add(i);
  LinearCounter b = a;
  ASSERT_TRUE(b.Union(a).ok());
  EXPECT_DOUBLE_EQ(b.Estimate(), a.Estimate());
}

TEST(MergePropertyTest, QDigestMergeOrderInsensitiveWithinError) {
  Rng rng(TestSeed() ^ 2);
  QDigest parts[3] = {QDigest(12, 100), QDigest(12, 100), QDigest(12, 100)};
  for (int i = 0; i < 30000; i++) {
    parts[i % 3].Add(static_cast<uint32_t>(rng.NextBounded(1 << 12)));
  }
  QDigest ab = parts[0];
  ASSERT_TRUE(ab.Merge(parts[1]).ok());
  ASSERT_TRUE(ab.Merge(parts[2]).ok());
  QDigest cb = parts[2];
  ASSERT_TRUE(cb.Merge(parts[1]).ok());
  ASSERT_TRUE(cb.Merge(parts[0]).ok());
  EXPECT_EQ(ab.count(), cb.count());
  // Compression is order-sensitive internally; answers agree within the
  // rank error bound (12/100 * n each side).
  for (double phi : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(static_cast<double>(ab.Quantile(phi)),
                static_cast<double>(cb.Quantile(phi)), 4096.0 * 0.25)
        << phi;
  }
}

// ----------------------------------------------------- Serialization fuzz
//
// Property: Deserialize must reject, never crash on, arbitrarily corrupted
// payloads — truncations, bit flips, random garbage.

TEST(SerializationFuzzTest, HllSurvivesCorruption) {
  HyperLogLog hll(10);
  for (uint64_t i = 0; i < 50000; i++) hll.Add(i);
  const std::vector<uint8_t> good = hll.Serialize();
  Rng rng(TestSeed() ^ 3);

  // Truncations at every prefix length (sampled).
  for (size_t len = 0; len < good.size(); len += 37) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    auto result = HyperLogLog::Deserialize(cut);  // Must not crash.
    if (result.ok()) {
      // Only acceptable if the prefix happens to be self-consistent —
      // with a fixed-size payload that means full length only.
      EXPECT_EQ(len, good.size());
    }
  }
  // Random bit flips: decode may succeed (registers are free-form bytes),
  // but must never crash and precision must stay in range.
  for (int trial = 0; trial < 200; trial++) {
    std::vector<uint8_t> mutated = good;
    const size_t at = rng.NextBounded(mutated.size());
    mutated[at] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    auto result = HyperLogLog::Deserialize(mutated);
    if (result.ok()) {
      EXPECT_GE(result.value().precision(), 4);
      EXPECT_LE(result.value().precision(), 18);
    }
  }
  // Pure garbage.
  for (int trial = 0; trial < 100; trial++) {
    std::vector<uint8_t> garbage(rng.NextBounded(64));
    for (auto& byte : garbage) {
      byte = static_cast<uint8_t>(rng.NextBounded(256));
    }
    HyperLogLog::Deserialize(garbage);  // Must not crash.
  }
}

TEST(SerializationFuzzTest, CmsSurvivesCorruption) {
  CountMinSketch cms(256, 4);
  workload::ZipfGenerator zipf(1000, 1.2, 5);
  for (int i = 0; i < 20000; i++) cms.Add(zipf.Next());
  const std::vector<uint8_t> good = cms.Serialize();
  Rng rng(TestSeed() ^ 6);

  for (size_t len = 0; len < good.size(); len += 53) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    CountMinSketch::Deserialize(cut);  // Must not crash.
  }
  for (int trial = 0; trial < 200; trial++) {
    std::vector<uint8_t> mutated = good;
    const size_t at = rng.NextBounded(mutated.size());
    mutated[at] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    auto result = CountMinSketch::Deserialize(mutated);
    if (result.ok()) {
      EXPECT_GE(result.value().width(), 1u);
      EXPECT_GE(result.value().depth(), 1u);
    }
  }
}

// ------------------------------------------------------------ Determinism
//
// Property: identical seeds => bit-identical behaviour, for every
// randomized structure (the reproducibility convention of the library).

TEST(DeterminismTest, SeededStructuresReproduceExactly) {
  for (int run = 0; run < 2; run++) {
    static double first_hll = 0;
    static uint64_t first_cms = 0;
    workload::ZipfGenerator zipf(10000, 1.2, 42);
    HyperLogLog hll(11);
    CountMinSketch cms(512, 4, true);
    for (int i = 0; i < 50000; i++) {
      const uint64_t item = zipf.Next();
      hll.Add(item);
      cms.Add(item);
    }
    if (run == 0) {
      first_hll = hll.Estimate();
      first_cms = cms.Estimate(uint64_t{0});
    } else {
      EXPECT_DOUBLE_EQ(hll.Estimate(), first_hll);
      EXPECT_EQ(cms.Estimate(uint64_t{0}), first_cms);
    }
  }
}

// --------------------------------------------------------- DyadicCountMin

TEST(DyadicCountMinTest, RangeCountsMatchExactWithinBound) {
  DyadicCountMin dcm(16, 4096, 5);
  Rng rng(TestSeed() ^ 7);
  std::vector<uint32_t> data;
  const int kN = 200000;
  for (int i = 0; i < kN; i++) {
    const uint32_t v = static_cast<uint32_t>(std::clamp(
        32768.0 + 8000.0 * rng.NextGaussian(), 0.0, 65535.0));
    dcm.Add(v);
    data.push_back(v);
  }
  auto exact_range = [&](uint32_t lo, uint32_t hi) {
    uint64_t count = 0;
    for (uint32_t v : data) {
      if (v >= lo && v <= hi) count++;
    }
    return count;
  };
  // Error bound ~ 2 * 16 levels * (e/4096) * n ~ 2% of n.
  const double bound = 2.0 * 16.0 * (2.718 / 4096.0) * kN;
  for (auto [lo, hi] : std::vector<std::pair<uint32_t, uint32_t>>{
           {0, 65535}, {30000, 35000}, {0, 32768}, {40000, 41000},
           {12345, 54321}}) {
    const uint64_t exact = exact_range(lo, hi);
    const uint64_t est = dcm.EstimateRange(lo, hi);
    EXPECT_GE(est, exact);                        // CM never undercounts.
    EXPECT_LE(static_cast<double>(est - exact), bound)
        << "[" << lo << ", " << hi << "]";
  }
}

TEST(DyadicCountMinTest, QuantilesFromRangeCounts) {
  DyadicCountMin dcm(16, 4096, 5);
  Rng rng(TestSeed() ^ 8);
  std::vector<uint32_t> data;
  for (int i = 0; i < 100000; i++) {
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(1 << 16));
    dcm.Add(v);
    data.push_back(v);
  }
  std::sort(data.begin(), data.end());
  for (double phi : {0.1, 0.5, 0.9}) {
    const uint32_t answer = dcm.Quantile(phi);
    const double rank = static_cast<double>(
        std::upper_bound(data.begin(), data.end(), answer) - data.begin());
    EXPECT_NEAR(rank / data.size(), phi, 0.03) << phi;
  }
}

TEST(DyadicCountMinTest, SingleValueRangeMatchesPoint) {
  DyadicCountMin dcm(12, 1024, 4);
  for (int i = 0; i < 1000; i++) dcm.Add(777);
  EXPECT_EQ(dcm.EstimateRange(777, 777), dcm.EstimatePoint(777));
  EXPECT_GE(dcm.EstimatePoint(777), 1000u);
}

// --------------------------------------------------- DeletableBloomFilter

TEST(DeletableBloomFilterTest, BasicMembership) {
  DeletableBloomFilter filter(1 << 16, 4, 1024);
  for (uint64_t i = 0; i < 2000; i++) filter.Add(i);
  for (uint64_t i = 0; i < 2000; i++) EXPECT_TRUE(filter.Contains(i));
}

TEST(DeletableBloomFilterTest, MostKeysDeletableAtModerateLoad) {
  // The paper's headline: at moderate load with enough regions, the large
  // majority of keys can be deleted.
  DeletableBloomFilter filter(1 << 16, 4, 4096);
  const uint64_t kKeys = 3000;
  for (uint64_t i = 0; i < kKeys; i++) filter.Add(i);
  uint64_t deleted = 0;
  uint64_t gone = 0;
  for (uint64_t i = 0; i < kKeys; i++) {
    if (filter.Remove(i)) {
      deleted++;
      if (!filter.Contains(i)) gone++;
    }
  }
  EXPECT_GT(static_cast<double>(deleted) / kKeys, 0.9);
  EXPECT_GT(static_cast<double>(gone) / deleted, 0.5);
}

TEST(DeletableBloomFilterTest, DeletionNeverCausesFalseNegativesForOthers) {
  DeletableBloomFilter filter(1 << 15, 4, 2048);
  for (uint64_t i = 0; i < 2000; i++) filter.Add(i);
  // Delete the first half; the second half must all remain present.
  for (uint64_t i = 0; i < 1000; i++) filter.Remove(i);
  for (uint64_t i = 1000; i < 2000; i++) {
    EXPECT_TRUE(filter.Contains(i)) << i;
  }
}

TEST(DeletableBloomFilterTest, CollisionFractionGrowsWithLoad) {
  DeletableBloomFilter filter(1 << 14, 4, 512);
  double prev = 0.0;
  for (int phase = 0; phase < 4; phase++) {
    for (uint64_t i = phase * 1000ull; i < (phase + 1) * 1000ull; i++) {
      filter.Add(i);
    }
    const double fraction = filter.CollidedRegionFraction();
    EXPECT_GE(fraction, prev);
    prev = fraction;
  }
  EXPECT_GT(prev, 0.1);
}

}  // namespace
}  // namespace streamlib
