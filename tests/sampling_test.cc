#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/sampling/bernoulli_sampler.h"
#include "core/sampling/biased_reservoir.h"
#include "core/sampling/chain_sampler.h"
#include "core/sampling/reservoir_sampler.h"
#include "core/sampling/weighted_reservoir.h"

namespace streamlib {
namespace {

TEST(ReservoirSamplerTest, FillsToCapacityExactly) {
  ReservoirSampler<int> sampler(10, 1);
  for (int i = 0; i < 5; i++) sampler.Add(i);
  EXPECT_EQ(sampler.sample().size(), 5u);
  for (int i = 5; i < 100; i++) sampler.Add(i);
  EXPECT_EQ(sampler.sample().size(), 10u);
  EXPECT_EQ(sampler.count(), 100u);
}

TEST(ReservoirSamplerTest, SampleElementsComeFromStream) {
  ReservoirSampler<int> sampler(16, 2);
  for (int i = 0; i < 1000; i++) sampler.Add(i);
  for (int v : sampler.sample()) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
  }
}

// Uniformity: each element of a stream of length n should appear in the
// sample with probability k/n. Run many trials and chi-square the inclusion
// counts over stream positions.
TEST(ReservoirSamplerTest, InclusionIsUniformAcrossPositions) {
  const int kN = 100;
  const int kK = 10;
  const int kTrials = 20000;
  std::vector<int> inclusion(kN, 0);
  for (int t = 0; t < kTrials; t++) {
    ReservoirSampler<int> sampler(kK, 1000 + t);
    for (int i = 0; i < kN; i++) sampler.Add(i);
    for (int v : sampler.sample()) inclusion[v]++;
  }
  const double expected = static_cast<double>(kTrials) * kK / kN;
  double chi2 = 0;
  for (int i = 0; i < kN; i++) {
    const double d = inclusion[i] - expected;
    chi2 += d * d / expected;
  }
  // 99 dof; p=0.001 critical value ~ 148.2. Allow generous headroom.
  EXPECT_LT(chi2, 160.0);
}

TEST(SkipReservoirSamplerTest, MatchesAlgorithmRDistribution) {
  const int kN = 100;
  const int kK = 10;
  const int kTrials = 20000;
  std::vector<int> inclusion(kN, 0);
  for (int t = 0; t < kTrials; t++) {
    SkipReservoirSampler<int> sampler(kK, 7000 + t);
    for (int i = 0; i < kN; i++) sampler.Add(i);
    for (int v : sampler.sample()) inclusion[v]++;
  }
  const double expected = static_cast<double>(kTrials) * kK / kN;
  double chi2 = 0;
  for (int i = 0; i < kN; i++) {
    const double d = inclusion[i] - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 160.0);
}

TEST(SkipReservoirSamplerTest, SampleSizeBounded) {
  SkipReservoirSampler<uint64_t> sampler(32, 3);
  for (uint64_t i = 0; i < 100000; i++) sampler.Add(i);
  EXPECT_EQ(sampler.sample().size(), 32u);
}

TEST(WeightedReservoirSamplerTest, HeavyWeightDominates) {
  // One item with weight 1000 among 999 items of weight 1: it should appear
  // in a size-1 sample roughly 1000/1999 of the time.
  const int kTrials = 4000;
  int heavy_sampled = 0;
  for (int t = 0; t < kTrials; t++) {
    WeightedReservoirSampler<int> sampler(1, 500 + t);
    for (int i = 0; i < 999; i++) sampler.Add(i, 1.0);
    sampler.Add(-1, 1000.0);
    if (sampler.Sample()[0] == -1) heavy_sampled++;
  }
  const double frac = static_cast<double>(heavy_sampled) / kTrials;
  EXPECT_NEAR(frac, 1000.0 / 1999.0, 0.04);
}

TEST(WeightedReservoirSamplerTest, SampleWithoutReplacement) {
  WeightedReservoirSampler<int> sampler(50, 11);
  for (int i = 0; i < 1000; i++) sampler.Add(i, 1.0 + (i % 7));
  std::vector<int> s = sampler.Sample();
  EXPECT_EQ(s.size(), 50u);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());  // Distinct.
}

TEST(BiasedReservoirSamplerTest, RecentElementsOverrepresented) {
  // Exponential bias: the newest 10% of a long stream should occupy much
  // more than 10% of the sample.
  BiasedReservoirSampler<uint64_t> sampler(100, 9);
  const uint64_t kN = 100000;
  for (uint64_t i = 0; i < kN; i++) sampler.Add(i);
  size_t recent = 0;
  for (uint64_t v : sampler.sample()) {
    if (v >= kN * 9 / 10) recent++;
  }
  const double frac =
      static_cast<double>(recent) / static_cast<double>(sampler.sample().size());
  // With bias 1/100 over a 100k stream, nearly all survivors are recent.
  EXPECT_GT(frac, 0.5);
}

TEST(BiasedReservoirSamplerTest, NeverExceedsCapacity) {
  BiasedReservoirSampler<int> sampler(25, 4);
  for (int i = 0; i < 10000; i++) {
    sampler.Add(i);
    EXPECT_LE(sampler.sample().size(), 25u);
  }
}

TEST(ChainSamplerTest, SampleAlwaysInsideWindow) {
  ChainSampler<uint64_t> sampler(64, 21);
  for (uint64_t i = 0; i < 5000; i++) {
    sampler.Add(i);
    ASSERT_TRUE(sampler.HasSample());
    EXPECT_LE(sampler.Sample(), i);
    EXPECT_GT(sampler.Sample() + 64, i);  // Within the last 64 elements.
  }
}

TEST(ChainSamplerTest, UniformOverWindow) {
  // After a long run, the sampled offset from the window head should be
  // uniform over [0, 64).
  const uint64_t kW = 64;
  const int kTrials = 8000;
  std::vector<int> counts(kW, 0);
  for (int t = 0; t < kTrials; t++) {
    ChainSampler<uint64_t> sampler(kW, 40 + t);
    const uint64_t n = 1000;
    for (uint64_t i = 0; i < n; i++) sampler.Add(i);
    counts[sampler.Sample() - (n - kW)]++;
  }
  const double expected = static_cast<double>(kTrials) / kW;
  double chi2 = 0;
  for (uint64_t i = 0; i < kW; i++) {
    const double d = counts[i] - expected;
    chi2 += d * d / expected;
  }
  // 63 dof; p=0.001 critical ~ 103.4.
  EXPECT_LT(chi2, 115.0);
}

TEST(ChainSamplerTest, ChainStaysShort) {
  ChainSampler<uint64_t> sampler(1024, 77);
  for (uint64_t i = 0; i < 200000; i++) sampler.Add(i);
  // Expected chain length is O(1); catastrophic growth means an expiry bug.
  EXPECT_LT(sampler.chain_length(), 64u);
}

TEST(WindowSamplerTest, ProducesKSamplesInWindow) {
  WindowSampler<uint64_t> sampler(20, 128, 5);
  for (uint64_t i = 0; i < 10000; i++) sampler.Add(i);
  std::vector<uint64_t> s = sampler.Sample();
  EXPECT_EQ(s.size(), 20u);
  for (uint64_t v : s) EXPECT_GE(v, 10000u - 128u);
}

TEST(BernoulliSamplerTest, SampleSizeNearExpectation) {
  BernoulliSampler<int> sampler(0.1, 31);
  for (int i = 0; i < 100000; i++) sampler.Add(i);
  EXPECT_NEAR(static_cast<double>(sampler.sample().size()), 10000.0, 400.0);
  EXPECT_NEAR(sampler.EstimatedStreamLength(), 100000.0, 4000.0);
}

// Property sweep: every sampler respects its capacity for various k.
class ReservoirCapacitySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ReservoirCapacitySweep, CapacityRespected) {
  const size_t k = GetParam();
  ReservoirSampler<int> r(k, 1);
  SkipReservoirSampler<int> s(k, 2);
  BiasedReservoirSampler<int> b(k, 3);
  for (int i = 0; i < 5000; i++) {
    r.Add(i);
    s.Add(i);
    b.Add(i);
  }
  EXPECT_EQ(r.sample().size(), std::min<size_t>(k, 5000));
  EXPECT_EQ(s.sample().size(), std::min<size_t>(k, 5000));
  EXPECT_LE(b.sample().size(), k);
}

INSTANTIATE_TEST_SUITE_P(Capacities, ReservoirCapacitySweep,
                         ::testing::Values(1, 2, 7, 64, 1000, 4096));

}  // namespace
}  // namespace streamlib
