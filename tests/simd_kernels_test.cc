// Batched-kernel equivalence suite (ctest label: simd).
//
// The contract under test: for every batched kernel, UpdateBatch over N
// keys leaves the sketch in *bit-identical* state to N scalar Update calls
// in the same order — whatever backend (AVX2 or scalar) simd.h selected.
// This same source is compiled twice: once against the main build's
// backend (simd_kernels_test) and once with STREAMLIB_FORCE_SCALAR against
// the streamlib_kernels_scalar twin (simd_fallback_test), so the portable
// path is held to the identical contract on every build.
//
// Workloads: uniform, Zipf (skewed), and adversarial duplicates (the same
// key packed densely inside one batch — the case that breaks kernels which
// reorder read-modify-write lanes carelessly). Batch sizes cover the lane
// edge cases: 0, 1, lanes-1, lanes, lanes+1, and a multi-chunk size.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/state.h"
#include "core/cardinality/hyperloglog.h"
#include "core/cardinality/sliding_hyperloglog.h"
#include "core/filtering/blocked_bloom_filter.h"
#include "core/filtering/bloom_filter.h"
#include "core/frequency/count_min_sketch.h"
#include "core/frequency/count_sketch.h"
#include "core/frequency/dyadic_count_min.h"
#include "workload/zipf.h"

namespace streamlib {
namespace {

using state::ToBlob;

// The batch sizes every kernel is exercised with: empty, single, around
// the SIMD lane count, and large enough to span several internal chunks.
std::vector<size_t> BatchSizes() {
  const size_t lanes = simd::kLanes;
  return {0, 1, lanes - 1, lanes, lanes + 1, 333, 1024};
}

std::vector<uint64_t> UniformKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.Next();
  return keys;
}

std::vector<uint64_t> ZipfKeys(size_t n, uint64_t seed) {
  workload::ZipfGenerator zipf(100000, 1.1, seed);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = zipf.Next();
  return keys;
}

// Adversarial duplicates: long runs of one key plus an alternating pair —
// maximal in-batch read-after-write hazards.
std::vector<uint64_t> DuplicateKeys(size_t n, uint64_t seed) {
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; i++) {
    if (i < n / 2) {
      keys[i] = seed;
    } else {
      keys[i] = (i % 2 == 0) ? seed : seed + 1;
    }
  }
  return keys;
}

using KeyGen = std::vector<uint64_t> (*)(size_t, uint64_t);

const KeyGen kKeyGens[] = {&UniformKeys, &ZipfKeys, &DuplicateKeys};

TEST(SimdWrapper, BackendIsDeclared) {
#if defined(STREAMLIB_FORCE_SCALAR)
  EXPECT_STREQ(simd::BackendName(), "scalar");
#else
  EXPECT_TRUE(std::string(simd::BackendName()) == "avx2" ||
              std::string(simd::BackendName()) == "scalar");
#endif
}

TEST(HashBatch, MatchesScalarHashInt64) {
  for (uint64_t seed : {uint64_t{0}, uint64_t{7}, uint64_t{0xdeadbeef}}) {
    for (size_t n : BatchSizes()) {
      const std::vector<uint64_t> keys = UniformKeys(n, 42 + n);
      std::vector<uint64_t> batch(n);
      HashBatch64(keys.data(), n, seed, batch.data());
      for (size_t i = 0; i < n; i++) {
        EXPECT_EQ(batch[i], HashInt64(keys[i], seed)) << "i=" << i;
      }
    }
  }
}

TEST(HashBatch, KmStepMatchesScalar) {
  const uint64_t salt = 0x7a0c5e3dbb2f8d1bULL;
  for (size_t n : BatchSizes()) {
    const std::vector<uint64_t> hashes = UniformKeys(n, 99 + n);
    std::vector<uint64_t> batch(n);
    KmStepHashBatch(hashes.data(), n, salt, batch.data());
    for (size_t i = 0; i < n; i++) {
      EXPECT_EQ(batch[i], KmStepHash(hashes[i], salt));
      EXPECT_EQ(batch[i] & 1, 1u) << "h2 must be odd";
    }
  }
}

TEST(CountMinBatch, BitIdenticalAcrossWorkloadsAndSizes) {
  static_assert(state::BatchUpdatable<CountMinSketch>);
  for (bool conservative : {false, true}) {
    for (KeyGen gen : kKeyGens) {
      for (size_t n : BatchSizes()) {
        const std::vector<uint64_t> keys = gen(n, 1234);
        CountMinSketch scalar(777, 4, conservative);  // rounds to 1024
        CountMinSketch batched(777, 4, conservative);
        EXPECT_EQ(scalar.width(), 1024u);
        for (uint64_t k : keys) scalar.Add(k);
        batched.AddBatch(std::span<const uint64_t>(keys));
        EXPECT_EQ(ToBlob(scalar), ToBlob(batched))
            << "conservative=" << conservative << " n=" << n;
        if (n > 0) {
          EXPECT_EQ(scalar.Estimate(keys[0]), batched.Estimate(keys[0]));
        }
      }
    }
  }
}

TEST(CountMinBatch, WeightedAndPrehashed) {
  const std::vector<uint64_t> keys = ZipfKeys(500, 5);
  std::vector<uint64_t> hashes(keys.size());
  HashBatch64(keys.data(), keys.size(), CountMinSketch::kHashSeed,
              hashes.data());
  CountMinSketch scalar(512, 5);
  CountMinSketch batched(512, 5);
  for (uint64_t k : keys) scalar.Add(k, 3);
  batched.AddHashBatch(hashes, 3);
  EXPECT_EQ(ToBlob(scalar), ToBlob(batched));
  EXPECT_EQ(scalar.total_count(), batched.total_count());
}

TEST(CountMinBatch, StringKeysRouteThroughScalarHashing) {
  std::vector<std::string> keys;
  for (int i = 0; i < 100; i++) keys.push_back("key-" + std::to_string(i % 7));
  CountMinSketch scalar(256, 4);
  CountMinSketch batched(256, 4);
  for (const auto& k : keys) scalar.Add(k);
  batched.AddBatch(std::span<const std::string>(keys));
  EXPECT_EQ(ToBlob(scalar), ToBlob(batched));
}

TEST(CountSketchBatch, BitIdenticalAcrossWorkloadsAndSizes) {
  static_assert(state::BatchUpdatable<CountSketch>);
  for (KeyGen gen : kKeyGens) {
    for (size_t n : BatchSizes()) {
      const std::vector<uint64_t> keys = gen(n, 777);
      CountSketch scalar(300, 5);  // rounds to 512
      CountSketch batched(300, 5);
      EXPECT_EQ(scalar.width(), 512u);
      for (uint64_t k : keys) scalar.Add(k);
      batched.AddBatch(std::span<const uint64_t>(keys));
      EXPECT_EQ(ToBlob(scalar), ToBlob(batched)) << "n=" << n;
    }
  }
}

TEST(DyadicCountMinBatch, BitIdenticalIncludingQuantiles) {
  for (KeyGen gen : kKeyGens) {
    for (size_t n : BatchSizes()) {
      const std::vector<uint64_t> raw = gen(n, 31337);
      std::vector<uint32_t> values(raw.size());
      for (size_t i = 0; i < raw.size(); i++) {
        values[i] = static_cast<uint32_t>(raw[i] & 0xfff);
      }
      DyadicCountMin scalar(12, 256, 4);
      DyadicCountMin batched(12, 256, 4);
      for (uint32_t v : values) scalar.Add(v);
      batched.AddBatch(std::span<const uint32_t>(values));
      EXPECT_EQ(ToBlob(scalar), ToBlob(batched)) << "n=" << n;
      if (n > 0) {
        EXPECT_EQ(scalar.Quantile(0.5), batched.Quantile(0.5));
      }
    }
  }
}

TEST(HyperLogLogBatch, BitIdenticalIncludingMidBatchDensify) {
  static_assert(state::BatchUpdatable<HyperLogLog>);
  for (KeyGen gen : kKeyGens) {
    for (size_t n : BatchSizes()) {
      // precision 8 with sparse start: SparseLimit is 24 hashes, so the
      // larger batches cross the sparse->dense upgrade mid-batch.
      HyperLogLog scalar(8, /*sparse=*/true);
      HyperLogLog batched(8, /*sparse=*/true);
      const std::vector<uint64_t> keys = gen(n, 2024);
      for (uint64_t k : keys) scalar.Add(k);
      batched.AddBatch(std::span<const uint64_t>(keys));
      EXPECT_EQ(scalar.IsSparse(), batched.IsSparse()) << "n=" << n;
      EXPECT_EQ(ToBlob(scalar), ToBlob(batched)) << "n=" << n;
      EXPECT_DOUBLE_EQ(scalar.Estimate(), batched.Estimate()) << "n=" << n;
    }
  }
}

TEST(HyperLogLogBatch, DenseStartBitIdentical) {
  for (size_t n : BatchSizes()) {
    HyperLogLog scalar(12, /*sparse=*/false);
    HyperLogLog batched(12, /*sparse=*/false);
    const std::vector<uint64_t> keys = UniformKeys(n, 9000 + n);
    for (uint64_t k : keys) scalar.Add(k);
    batched.AddBatch(std::span<const uint64_t>(keys));
    EXPECT_EQ(ToBlob(scalar), ToBlob(batched)) << "n=" << n;
  }
}

TEST(SlidingHyperLogLogBatch, BitIdenticalPerTimestamp) {
  for (KeyGen gen : kKeyGens) {
    SlidingHyperLogLog scalar(10, 1000);
    SlidingHyperLogLog batched(10, 1000);
    uint64_t now = 0;
    for (size_t n : BatchSizes()) {
      now += 10;
      const std::vector<uint64_t> keys = gen(n, now);
      for (uint64_t k : keys) scalar.Add(k, now);
      batched.AddBatch(std::span<const uint64_t>(keys), now);
      EXPECT_EQ(ToBlob(scalar), ToBlob(batched)) << "now=" << now;
    }
    EXPECT_DOUBLE_EQ(scalar.Estimate(now, 500), batched.Estimate(now, 500));
  }
}

TEST(BloomFilterBatch, IdenticalBitsAndProbes) {
  static_assert(state::BatchUpdatable<BloomFilter>);
  for (KeyGen gen : kKeyGens) {
    for (size_t n : BatchSizes()) {
      BloomFilter scalar(1 << 16, 5);
      BloomFilter batched(1 << 16, 5);
      const std::vector<uint64_t> keys = gen(n, 555);
      for (uint64_t k : keys) scalar.Add(k);
      batched.AddBatch(std::span<const uint64_t>(keys));
      // No serde on filters: compare fill (a function of the exact bit
      // array) plus every membership answer over inserted and fresh keys.
      EXPECT_DOUBLE_EQ(scalar.FillRatio(), batched.FillRatio()) << "n=" << n;
      const std::vector<uint64_t> probes = UniformKeys(2000, 1);
      std::vector<uint64_t> probe_hashes(probes.size());
      HashBatch64(probes.data(), probes.size(), BloomFilter::kHashSeed,
                  probe_hashes.data());
      std::vector<uint8_t> results(probes.size());
      batched.ContainsHashBatch(probe_hashes, results.data());
      for (size_t i = 0; i < probes.size(); i++) {
        EXPECT_EQ(scalar.Contains(probes[i]), results[i] != 0);
      }
      for (uint64_t k : keys) {
        EXPECT_TRUE(batched.Contains(k));  // No false negatives, ever.
      }
    }
  }
}

TEST(BlockedBloomFilterBatch, IdenticalProbes) {
  static_assert(state::BatchUpdatable<BlockedBloomFilter>);
  for (size_t n : BatchSizes()) {
    BlockedBloomFilter scalar(1 << 16, 6);
    BlockedBloomFilter batched(1 << 16, 6);
    const std::vector<uint64_t> keys = ZipfKeys(n, 808);
    for (uint64_t k : keys) scalar.Add(k);
    batched.AddBatch(std::span<const uint64_t>(keys));
    const std::vector<uint64_t> probes = UniformKeys(2000, 2);
    std::vector<uint64_t> probe_hashes(probes.size());
    HashBatch64(probes.data(), probes.size(), BlockedBloomFilter::kHashSeed,
                probe_hashes.data());
    std::vector<uint8_t> results(probes.size());
    batched.ContainsHashBatch(probe_hashes, results.data());
    for (size_t i = 0; i < probes.size(); i++) {
      EXPECT_EQ(scalar.Contains(probes[i]), results[i] != 0) << "i=" << i;
    }
    for (uint64_t k : keys) EXPECT_TRUE(batched.Contains(k));
  }
}

TEST(Pow2Widths, ConstructorRoundsUpAndSerdeRejectsNonPow2) {
  CountMinSketch cms(1000, 4);
  EXPECT_EQ(cms.width(), 1024u);
  CountSketch cs(100, 3);
  EXPECT_EQ(cs.width(), 128u);

  // A v2 blob whose width field is not a power of two must be rejected
  // (it cannot have been produced by this version).
  std::vector<uint8_t> blob = ToBlob(cms);
  // Envelope: magic(4) + type(2) + version(2); payload starts with width u32.
  blob[8] = 0x03;  // width 1024 -> corrupt low byte: 1027.
  auto decoded = state::FromBlob<CountMinSketch>(blob);
  EXPECT_FALSE(decoded.ok());
}

TEST(Pow2Widths, VersionBumpRejectsV1Blobs) {
  CountMinSketch cms(64, 2);
  std::vector<uint8_t> blob = ToBlob(cms);
  blob[6] = 1;  // Envelope version u16 little-endian at offset 6: fake v1.
  blob[7] = 0;
  auto decoded = state::FromBlob<CountMinSketch>(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace streamlib
