#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/clustering/kmeans_util.h"
#include "core/clustering/micro_clusters.h"
#include "core/clustering/online_kmeans.h"
#include "core/clustering/stream_kmedian.h"

namespace streamlib {
namespace {

// Gaussian mixture generator with known centers.
std::vector<Point> MixtureStream(const std::vector<Point>& centers,
                                 double sigma, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; i++) {
    const Point& c = centers[rng.NextBounded(centers.size())];
    Point p(c.size());
    for (size_t j = 0; j < c.size(); j++) {
      p[j] = c[j] + sigma * rng.NextGaussian();
    }
    out.push_back(std::move(p));
  }
  return out;
}

// Distance from each true center to the nearest found center.
double MaxCenterError(const std::vector<Point>& truth,
                      const std::vector<WeightedPoint>& found) {
  double worst = 0.0;
  for (const Point& t : truth) {
    double best = 1e300;
    for (const auto& f : found) {
      best = std::min(best, std::sqrt(SquaredDistance(t, f.point)));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

const std::vector<Point> kCenters = {
    {0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}, {10.0, 10.0}};

TEST(WeightedKMeansTest, RecoversWellSeparatedCenters) {
  auto data = MixtureStream(kCenters, 0.5, 4000, 1);
  std::vector<WeightedPoint> weighted;
  for (auto& p : data) weighted.push_back(WeightedPoint{p, 1.0});
  Rng rng(2);
  auto centers = WeightedKMeans(weighted, 4, 20, &rng);
  EXPECT_LT(MaxCenterError(kCenters, centers), 0.5);
}

TEST(WeightedKMeansTest, RespectsWeights) {
  // Two locations; one carries 100x the weight. k=1 center must sit near it.
  std::vector<WeightedPoint> points = {
      {{0.0, 0.0}, 100.0},
      {{10.0, 10.0}, 1.0},
  };
  Rng rng(3);
  auto centers = WeightedKMeans(points, 1, 10, &rng);
  ASSERT_EQ(centers.size(), 1u);
  EXPECT_LT(centers[0].point[0], 0.5);
}

TEST(OnlineKMeansTest, CentersConvergeToMixture) {
  OnlineKMeans km(4, 2, 4);
  auto data = MixtureStream(kCenters, 0.5, 20000, 5);
  for (const auto& p : data) km.Add(p);
  std::vector<WeightedPoint> found;
  for (size_t c = 0; c < km.centers().size(); c++) {
    found.push_back(WeightedPoint{
        km.centers()[c], static_cast<double>(km.counts()[c])});
  }
  // MacQueen's online k-means seeds from the first k points and can fold
  // two mixture components when the seeds collide — a known limitation the
  // clustering bench quantifies against CluStream/STREAM. Assert the
  // weaker property: most centers land on true components.
  int recovered = 0;
  for (const Point& t : kCenters) {
    for (const auto& f : found) {
      if (std::sqrt(SquaredDistance(t, f.point)) < 1.5) {
        recovered++;
        break;
      }
    }
  }
  EXPECT_GE(recovered, 3);
}

TEST(OnlineKMeansTest, ClassifyIsNearestCenter) {
  OnlineKMeans km(2, 1, 6);
  for (int i = 0; i < 500; i++) {
    km.Add({0.0});
    km.Add({100.0});
  }
  EXPECT_EQ(km.Classify({1.0}), km.Classify({-1.0}));
  EXPECT_NE(km.Classify({1.0}), km.Classify({99.0}));
}

TEST(CluStreamTest, MicroClustersStayWithinBudget) {
  CluStream cs(50, 2, 2.0, 7);
  auto data = MixtureStream(kCenters, 0.5, 10000, 8);
  for (size_t i = 0; i < data.size(); i++) {
    cs.Add(data[i], static_cast<double>(i));
  }
  EXPECT_LE(cs.micro_clusters().size(), 50u);
  EXPECT_EQ(cs.count(), 10000u);
}

TEST(CluStreamTest, MacroClustersRecoverMixture) {
  CluStream cs(60, 2, 2.0, 9);
  auto data = MixtureStream(kCenters, 0.4, 20000, 10);
  for (size_t i = 0; i < data.size(); i++) {
    cs.Add(data[i], static_cast<double>(i));
  }
  auto macro = cs.MacroClusters(4);
  EXPECT_LT(MaxCenterError(kCenters, macro), 1.0);
}

TEST(CluStreamTest, CfVectorAdditivity) {
  MicroCluster a;
  MicroCluster b;
  MicroCluster whole;
  Rng rng(11);
  for (int i = 0; i < 100; i++) {
    Point p = {rng.NextGaussian(), rng.NextGaussian()};
    (i % 2 == 0 ? a : b).Absorb(p, i);
    whole.Absorb(p, i);
  }
  a.Merge(b);
  EXPECT_EQ(a.n, whole.n);
  EXPECT_NEAR(a.Centroid()[0], whole.Centroid()[0], 1e-9);
  EXPECT_NEAR(a.Radius(), whole.Radius(), 1e-9);
  EXPECT_NEAR(a.MeanTimestamp(), whole.MeanTimestamp(), 1e-9);
}

TEST(CluStreamTest, HorizonQueryIgnoresAncientClusters) {
  // Phase 1 (t in [0, 20k)): clusters around kCenters.
  // Phase 2 (t in [20k, 40k)): clusters shifted by +40.
  // A horizon covering only phase 2 must place all k centers near the
  // shifted mixture; the full-history query averages both phases.
  std::vector<Point> shifted;
  for (const Point& c : kCenters) shifted.push_back({c[0] + 40, c[1] + 40});
  CluStream cs(80, 2, 2.0, 31);
  auto phase1 = MixtureStream(kCenters, 0.5, 20000, 32);
  auto phase2 = MixtureStream(shifted, 0.5, 20000, 33);
  double t = 0;
  for (const auto& p : phase1) cs.Add(p, t++);
  for (const auto& p : phase2) cs.Add(p, t++);

  auto recent = cs.MacroClustersOverHorizon(4, 15000.0);
  EXPECT_LT(MaxCenterError(shifted, recent), 3.0);
  // Every recent center is far from the phase-1 region.
  for (const auto& c : recent) {
    EXPECT_GT(c.point[0] + c.point[1], 40.0);
  }
  // Pyramidal storage holds O(log T) snapshots, not one per tick.
  EXPECT_LT(cs.SnapshotCount(), 64u);
}

TEST(CluStreamTest, HorizonBeyondHistoryFallsBackToFullState) {
  CluStream cs(40, 2, 2.0, 35);
  auto data = MixtureStream(kCenters, 0.5, 5000, 36);
  double t = 0;
  for (const auto& p : data) cs.Add(p, t++);
  auto all = cs.MacroClustersOverHorizon(4, 1e9);
  EXPECT_LT(MaxCenterError(kCenters, all), 1.5);
}

TEST(MicroClusterTest, SubtractInvertsMerge) {
  MicroCluster a;
  MicroCluster b;
  Rng rng(37);
  for (int i = 0; i < 50; i++) {
    a.Absorb({rng.NextGaussian(), rng.NextGaussian()}, i);
  }
  for (int i = 0; i < 30; i++) {
    b.Absorb({5 + rng.NextGaussian(), rng.NextGaussian()}, 50 + i);
  }
  MicroCluster merged = a;
  merged.Merge(b);
  merged.Subtract(a);
  EXPECT_EQ(merged.n, b.n);
  EXPECT_NEAR(merged.Centroid()[0], b.Centroid()[0], 1e-9);
  EXPECT_NEAR(merged.Radius(), b.Radius(), 1e-9);
}

TEST(StreamKMedianTest, MemoryStaysBounded) {
  StreamKMedian skm(4, 200, 12);
  auto data = MixtureStream(kCenters, 0.5, 50000, 13);
  for (const auto& p : data) skm.Add(p);
  // Retained points must be far below the stream size (coreset hierarchy).
  EXPECT_LT(skm.RetainedPoints(), 1000u);
}

TEST(StreamKMedianTest, SseCloseToBatchKMeans) {
  auto data = MixtureStream(kCenters, 0.8, 20000, 14);
  std::vector<WeightedPoint> weighted;
  for (auto& p : data) weighted.push_back(WeightedPoint{p, 1.0});

  StreamKMedian skm(4, 400, 15);
  for (const auto& p : data) skm.Add(p);
  auto stream_centers = skm.Centers();

  Rng rng(16);
  auto batch_centers = WeightedKMeans(weighted, 4, 25, &rng);

  const double stream_sse = WeightedSse(weighted, stream_centers);
  const double batch_sse = WeightedSse(weighted, batch_centers);
  // STREAM guarantees constant-factor; on easy mixtures it is near-optimal.
  EXPECT_LT(stream_sse, batch_sse * 2.0);
}

TEST(StreamKMedianTest, RecoversCenters) {
  StreamKMedian skm(4, 300, 17);
  auto data = MixtureStream(kCenters, 0.4, 30000, 18);
  for (const auto& p : data) skm.Add(p);
  EXPECT_LT(MaxCenterError(kCenters, skm.Centers()), 1.0);
}

// K sweep: all clusterers should handle various k without violating budgets.
class ClusteringKSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ClusteringKSweep, BudgetsRespected) {
  const size_t k = GetParam();
  OnlineKMeans km(k, 2, 19);
  StreamKMedian skm(k, std::max<size_t>(2 * k, 64), 20);
  auto data = MixtureStream(kCenters, 1.0, 5000, 21);
  for (const auto& p : data) {
    km.Add(p);
    skm.Add(p);
  }
  EXPECT_LE(km.centers().size(), k);
  auto centers = skm.Centers();
  EXPECT_LE(centers.size(), k);
}

INSTANTIATE_TEST_SUITE_P(Ks, ClusteringKSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace streamlib
