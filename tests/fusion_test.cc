// Fused-operator topology compilation (DESIGN.md §13): the dataflow IR's
// shape, every fusion-legality veto, engine execution through fused chains
// (counts and results identical to the queued baseline), the
// fused-vs-queued fault-schedule equality contract, the per-message draw
// sizing of the batched execute path, and the injectable-Clock
// alignment-timeout determinism fix.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "platform/checkpoint.h"
#include "platform/clock.h"
#include "platform/components.h"
#include "platform/engine.h"
#include "platform/fault.h"
#include "platform/plan.h"
#include "platform/topology.h"

namespace streamlib::platform {
namespace {

// --------------------------------------------------------------- helpers

std::unique_ptr<Spout> MakeCountingSpout(int64_t n) {
  return std::make_unique<GeneratorSpout>(
      [n, i = int64_t{0}]() mutable -> std::optional<Tuple> {
        if (i >= n) return std::nullopt;
        const int64_t v = i++;
        std::string key = "k";
        key += std::to_string(v % 17);
        return Tuple::Of(std::move(key), v);
      });
}

std::unique_ptr<Bolt> MakePassThroughBolt() {
  return std::make_unique<FunctionBolt>(
      [](const Tuple& input, OutputCollector* collector) {
        collector->Emit(Tuple(input));
      });
}

/// spout -> map -> sink, all parallelism 1, shuffle edges — the canonical
/// fully fusible 3-stage chain.
Topology ThreeStageChain(TupleSink* sink, int64_t tuples) {
  TopologyBuilder builder;
  builder.AddSpout("src", [tuples] { return MakeCountingSpout(tuples); });
  builder.AddBolt(
      "map", [] { return MakePassThroughBolt(); }, 1,
      {{"src", Grouping::Shuffle()}});
  builder.AddBolt(
      "sink",
      [sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(sink);
      },
      1, {{"map", Grouping::Shuffle()}});
  return builder.Build().value();
}

TopologyPlan PlanFor(const Topology& topology, const FusionOptions& options) {
  TopologyPlan plan = TopologyPlan::FromTopology(topology);
  plan.RunFusionPass(options);
  return plan;
}

FusionOptions FusionOn() {
  FusionOptions options;
  options.enable_fusion = true;
  return options;
}

const PlanEdge& EdgeBetween(const TopologyPlan& plan, const std::string& from,
                            const std::string& to) {
  for (const PlanEdge& edge : plan.edges()) {
    if (plan.nodes()[edge.from].name == from &&
        plan.nodes()[edge.to].name == to) {
      return edge;
    }
  }
  ADD_FAILURE() << "no edge " << from << " -> " << to;
  static PlanEdge missing;
  return missing;
}

// ------------------------------------------------------------ IR + pass

TEST(TopologyPlanTest, IrMirrorsTopologyShape) {
  TupleSink sink;
  Topology topology = ThreeStageChain(&sink, 1);
  TopologyPlan plan = TopologyPlan::FromTopology(topology);

  ASSERT_EQ(plan.nodes().size(), 3u);
  ASSERT_EQ(plan.edges().size(), 2u);
  EXPECT_TRUE(plan.nodes()[0].is_spout);
  EXPECT_EQ(plan.nodes()[0].name, "src");
  for (size_t i = 0; i < plan.nodes().size(); i++) {
    EXPECT_EQ(plan.nodes()[i].component_index, i);
  }
  const PlanEdge& first = EdgeBetween(plan, "src", "map");
  EXPECT_EQ(first.grouping.kind, GroupingKind::kShuffle);
  EXPECT_EQ(first.shards, 1u);
  EXPECT_EQ(first.channel, EdgeChannel::kQueued);  // Pass not run yet.
  EXPECT_TRUE(plan.chains().empty());
}

TEST(TopologyPlanTest, FusesThreeStageShuffleChain) {
  TupleSink sink;
  TopologyPlan plan = PlanFor(ThreeStageChain(&sink, 1), FusionOn());

  EXPECT_EQ(plan.fused_edge_count(), 2u);
  ASSERT_EQ(plan.chains().size(), 1u);
  EXPECT_EQ(plan.chains()[0], (std::vector<size_t>{0, 1, 2}));
  for (const PlanEdge& edge : plan.edges()) {
    EXPECT_EQ(edge.channel, EdgeChannel::kFused);
    EXPECT_TRUE(edge.veto.empty());
  }
  EXPECT_NE(plan.ToString().find("FUSED"), std::string::npos);
}

TEST(TopologyPlanTest, DisabledByDefault) {
  TupleSink sink;
  TopologyPlan plan = PlanFor(ThreeStageChain(&sink, 1), FusionOptions{});
  EXPECT_EQ(plan.fused_edge_count(), 0u);
  EXPECT_TRUE(plan.chains().empty());
  for (const PlanEdge& edge : plan.edges()) {
    EXPECT_EQ(edge.veto, "fusion disabled");
  }
}

// Each legality rule refuses with a typed Status and a stamped veto.

TEST(FusionLegalityTest, FieldsGroupedEdgeRefuses) {
  TupleSink sink;
  TopologyBuilder builder;
  builder.AddSpout("src", [] { return MakeCountingSpout(1); });
  builder.AddBolt(
      "agg",
      [&sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(&sink);
      },
      1, {{"src", Grouping::Fields(0)}});
  TopologyPlan plan = PlanFor(builder.Build().value(), FusionOn());

  EXPECT_EQ(plan.fused_edge_count(), 0u);
  const PlanEdge& edge = EdgeBetween(plan, "src", "agg");
  EXPECT_NE(edge.veto.find("fields"), std::string::npos);
  const Status status = TopologyPlan::FusionLegality(
      plan.nodes()[edge.from], plan.nodes()[edge.to], edge, FusionOn());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FusionLegalityTest, BroadcastEdgeRefuses) {
  TupleSink sink;
  TopologyBuilder builder;
  builder.AddSpout("src", [] { return MakeCountingSpout(1); });
  builder.AddBolt(
      "fan",
      [&sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(&sink);
      },
      1, {{"src", Grouping::Broadcast()}});
  TopologyPlan plan = PlanFor(builder.Build().value(), FusionOn());
  EXPECT_EQ(plan.fused_edge_count(), 0u);
  EXPECT_NE(EdgeBetween(plan, "src", "fan").veto.find("broadcast"),
            std::string::npos);
}

TEST(FusionLegalityTest, MixedParallelismRefuses) {
  TupleSink sink;
  TopologyBuilder builder;
  builder.AddSpout("src", [] { return MakeCountingSpout(1); });
  builder.AddBolt(
      "wide",
      [&sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(&sink);
      },
      4, {{"src", Grouping::Shuffle()}});
  TopologyPlan plan = PlanFor(builder.Build().value(), FusionOn());

  EXPECT_EQ(plan.fused_edge_count(), 0u);
  const PlanEdge& edge = EdgeBetween(plan, "src", "wide");
  EXPECT_NE(edge.veto.find("mismatched parallelism"), std::string::npos);
  const Status status = TopologyPlan::FusionLegality(
      plan.nodes()[edge.from], plan.nodes()[edge.to], edge, FusionOn());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FusionLegalityTest, GlobalGroupingFusesOnlyAtParallelismOne) {
  TupleSink sink;
  TopologyBuilder builder;
  builder.AddSpout("src", [] { return MakeCountingSpout(1); }, 2);
  builder.AddBolt(
      "gather",
      [&sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(&sink);
      },
      1, {{"src", Grouping::Global()}});
  TopologyPlan plan = PlanFor(builder.Build().value(), FusionOn());
  EXPECT_EQ(plan.fused_edge_count(), 0u);
  EXPECT_NE(EdgeBetween(plan, "src", "gather").veto.find("parallelism 1"),
            std::string::npos);
}

TEST(FusionLegalityTest, FanInAndFanOutRefuse) {
  TupleSink sink;
  TopologyBuilder builder;
  builder.AddSpout("srcA", [] { return MakeCountingSpout(1); });
  builder.AddSpout("srcB", [] { return MakeCountingSpout(1); });
  builder.AddBolt(
      "merge", [] { return MakePassThroughBolt(); }, 1,
      {{"srcA", Grouping::Shuffle()}, {"srcB", Grouping::Shuffle()}});
  builder.AddBolt(
      "left",
      [&sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(&sink);
      },
      1, {{"merge", Grouping::Shuffle()}});
  builder.AddBolt(
      "right",
      [&sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(&sink);
      },
      1, {{"merge", Grouping::Shuffle()}});
  TopologyPlan plan = PlanFor(builder.Build().value(), FusionOn());

  EXPECT_EQ(plan.fused_edge_count(), 0u);
  EXPECT_NE(EdgeBetween(plan, "srcA", "merge").veto.find("fan-in"),
            std::string::npos);
  EXPECT_NE(EdgeBetween(plan, "merge", "left").veto.find("fan-out"),
            std::string::npos);
}

TEST(FusionLegalityTest, MultiplexedModeRefuses) {
  TupleSink sink;
  FusionOptions options = FusionOn();
  options.dedicated_mode = false;
  TopologyPlan plan = PlanFor(ThreeStageChain(&sink, 1), options);
  EXPECT_EQ(plan.fused_edge_count(), 0u);
  EXPECT_NE(EdgeBetween(plan, "src", "map").veto.find("multiplexed"),
            std::string::npos);
}

TEST(FusionLegalityTest, EpochBarrierEdgesRefuse) {
  TupleSink sink;
  FusionOptions options = FusionOn();
  options.epochs_enabled = true;
  TopologyPlan plan = PlanFor(ThreeStageChain(&sink, 1), options);
  EXPECT_EQ(plan.fused_edge_count(), 0u);
  const PlanEdge& edge = EdgeBetween(plan, "src", "map");
  EXPECT_NE(edge.veto.find("barrier"), std::string::npos);
  EXPECT_TRUE(edge.barriered);
  const Status status = TopologyPlan::FusionLegality(
      plan.nodes()[edge.from], plan.nodes()[edge.to], edge, options);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(FusionLegalityTest, RecorderTappedSpoutRefusesButBoltChainFuses) {
  TupleSink sink;
  FusionOptions options = FusionOn();
  options.recorder_attached = true;
  TopologyPlan plan = PlanFor(ThreeStageChain(&sink, 1), options);
  // The spout edge must stay queued (recordings replay through queued
  // edges), but the bolt->bolt tail is still eligible.
  EXPECT_EQ(plan.fused_edge_count(), 1u);
  EXPECT_NE(EdgeBetween(plan, "src", "map").veto.find("recorder"),
            std::string::npos);
  EXPECT_EQ(EdgeBetween(plan, "map", "sink").channel, EdgeChannel::kFused);
  ASSERT_EQ(plan.chains().size(), 1u);
  EXPECT_EQ(plan.chains()[0], (std::vector<size_t>{1, 2}));
}

// ------------------------------------------------------ engine execution

struct RunOutcome {
  size_t sink_tuples = 0;
  uint64_t completed_roots = 0;
  uint64_t failed_roots = 0;
  size_t fused_edges = 0;
  std::map<std::string, uint64_t> emitted;   // Per component.
  std::map<std::string, uint64_t> executed;  // Per component.
  std::map<uint64_t, FaultSiteStats> site_stats;
  std::array<uint64_t, kNumFaultKinds> injected{};
};

RunOutcome RunChain(int64_t tuples, bool fuse, DeliverySemantics semantics,
                    FaultSpec faults = FaultSpec{}) {
  TupleSink sink;
  EngineConfig config;
  config.semantics = semantics;
  config.enable_fusion = fuse;
  config.seed = 0xfeed;
  config.ack_timeout_seconds = 0.5;  // Poisoned roots fail fast.
  config.telemetry_sample_interval_ms = 0;
  config.faults = faults;
  TopologyEngine engine(ThreeStageChain(&sink, tuples), config);
  engine.Run();

  RunOutcome outcome;
  outcome.sink_tuples = sink.Size();
  outcome.completed_roots = engine.completed_roots();
  outcome.failed_roots = engine.failed_roots();
  outcome.fused_edges = engine.fused_edges();
  for (size_t i = 0; i < engine.metrics().task_count(); i++) {
    const TaskMetrics& m = engine.metrics().task(i);
    outcome.emitted[m.component()] += m.emitted();
    outcome.executed[m.component()] += m.executed();
  }
  if (engine.fault_plan() != nullptr) {
    outcome.site_stats = engine.fault_plan()->SiteStatsSnapshot();
    outcome.injected = engine.fault_plan()->Snapshot();
  }
  return outcome;
}

TEST(FusedEngineTest, FusedCountsMatchQueuedAtMostOnce) {
  const RunOutcome queued =
      RunChain(5000, /*fuse=*/false, DeliverySemantics::kAtMostOnce);
  const RunOutcome fused =
      RunChain(5000, /*fuse=*/true, DeliverySemantics::kAtMostOnce);

  EXPECT_EQ(queued.fused_edges, 0u);
  EXPECT_EQ(fused.fused_edges, 2u);
  EXPECT_EQ(queued.sink_tuples, 5000u);
  EXPECT_EQ(fused.sink_tuples, 5000u);
  EXPECT_EQ(fused.emitted, queued.emitted);
  EXPECT_EQ(fused.executed, queued.executed);
}

TEST(FusedEngineTest, FusedCountsMatchQueuedAtLeastOnce) {
  const RunOutcome queued =
      RunChain(3000, /*fuse=*/false, DeliverySemantics::kAtLeastOnce);
  const RunOutcome fused =
      RunChain(3000, /*fuse=*/true, DeliverySemantics::kAtLeastOnce);

  EXPECT_EQ(fused.fused_edges, 2u);
  EXPECT_EQ(queued.sink_tuples, 3000u);
  EXPECT_EQ(fused.sink_tuples, 3000u);
  EXPECT_EQ(queued.completed_roots, 3000u);
  EXPECT_EQ(fused.completed_roots, 3000u);
  EXPECT_EQ(queued.failed_roots, 0u);
  EXPECT_EQ(fused.failed_roots, 0u);
  EXPECT_EQ(fused.emitted, queued.emitted);
  EXPECT_EQ(fused.executed, queued.executed);
}

TEST(FusedEngineTest, FieldsTopologyFallsBackCleanly) {
  // enable_fusion on an ineligible topology must be a clean no-op, not an
  // error: the fields tail stays queued and results are untouched.
  TupleSink sink;
  TopologyBuilder builder;
  builder.AddSpout("src", [] { return MakeCountingSpout(2000); });
  builder.AddBolt(
      "map", [] { return MakePassThroughBolt(); }, 1,
      {{"src", Grouping::Shuffle()}});
  builder.AddBolt(
      "shard",
      [&sink]() -> std::unique_ptr<Bolt> {
        return std::make_unique<SinkBolt>(&sink);
      },
      4, {{"map", Grouping::Fields(0)}});
  EngineConfig config;
  config.enable_fusion = true;
  config.telemetry_sample_interval_ms = 0;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  // src->map fuses (partial chain); map->shard stays queued for routing.
  EXPECT_EQ(engine.fused_edges(), 1u);
  ASSERT_NE(engine.plan(), nullptr);
  EXPECT_NE(EdgeBetween(*engine.plan(), "map", "shard").veto.find("fields"),
            std::string::npos);
  EXPECT_EQ(sink.Size(), 2000u);
}

// -------------------------------------------- fault-schedule equality

TEST(FusedFaultScheduleTest, FusedChainDrawsIdenticalScheduleToQueued) {
  // The PR 3 contract, extended across compilation modes: with the same
  // seed, every fault site must consult its PRNG the same number of times
  // and fire the same draws whether the chain runs fused or queued.
  // (Crash and stall stay 0: a crash's blast radius is defined in terms
  // of queue batches, and fused chains have no queues to stall.)
  FaultSpec faults;
  faults.seed = 0xabcde;
  faults.drop_tuple_prob = 0.05;
  faults.duplicate_tuple_prob = 0.05;
  faults.delay_delivery_prob = 0.02;
  faults.delay_max_micros = 1;
  faults.bolt_throw_prob = 0.03;

  const RunOutcome queued =
      RunChain(1500, /*fuse=*/false, DeliverySemantics::kAtLeastOnce, faults);
  const RunOutcome fused =
      RunChain(1500, /*fuse=*/true, DeliverySemantics::kAtLeastOnce, faults);

  ASSERT_FALSE(queued.site_stats.empty());
  EXPECT_EQ(fused.site_stats, queued.site_stats);
  EXPECT_EQ(fused.injected, queued.injected);
  // Identical schedules resolve identical root fates.
  EXPECT_EQ(fused.completed_roots, queued.completed_roots);
  EXPECT_EQ(fused.failed_roots, queued.failed_roots);
}

// -------------------------------------- batched-path draw sizing bugfix

/// Pure accumulator that opts into the batched execute path.
class BatchAccumBolt : public Bolt {
 public:
  void Execute(const Tuple& input, OutputCollector*) override {
    sum_ += input.Int(1);
  }
  bool BatchCapable() const override { return true; }

 private:
  int64_t sum_ = 0;
};

TEST(FusedFaultScheduleTest, BatchedExecuteDrawsPerMessageLikeScalar) {
  // Regression for the fused-ExecuteBatch sizing drift: the batched path
  // used to draw ONE throw + ONE crash decision per batch, making the
  // executor site's stream depend on timing-sensitive batch boundaries.
  // Per-message draws make batched and scalar delivery consult the site
  // identically for the same seed.
  auto run = [](bool batched) {
    TupleSink unused;
    (void)unused;
    TopologyBuilder builder;
    builder.AddSpout("src", [] { return MakeCountingSpout(4000); });
    builder.AddBolt(
        "accum", []() -> std::unique_ptr<Bolt> {
          return std::make_unique<BatchAccumBolt>();
        },
        1, {{"src", Grouping::Shuffle()}});
    EngineConfig config;
    config.enable_bolt_batch = batched;
    config.telemetry_sample_interval_ms = 0;
    config.faults.seed = 0x77;
    config.faults.bolt_throw_prob = 0.05;
    TopologyEngine engine(builder.Build().value(), config);
    engine.Run();
    return engine.fault_plan()->SiteStatsSnapshot();
  };

  const auto batched = run(true);
  const auto scalar = run(false);
  ASSERT_FALSE(batched.empty());
  EXPECT_EQ(batched, scalar);
}

// ------------------------------------------- deterministic clock timeout

TEST(ManualClockTest, AdvancesOnlyWhenDriven) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowNanos(), 100u);
  clock.AdvanceNanos(50);
  EXPECT_EQ(clock.NowNanos(), 150u);
  EXPECT_EQ(clock.PeekNanos(), 150u);

  ManualClock auto_clock(0, 10);
  EXPECT_EQ(auto_clock.NowNanos(), 10u);
  EXPECT_EQ(auto_clock.NowNanos(), 20u);
  EXPECT_EQ(auto_clock.PeekNanos(), 20u);
}

TEST(ManualClockTest, AlignmentTimeoutFiresDeterministically) {
  // The epoch-alignment timeout used to depend on raw wall time: a loaded
  // host could starve or spuriously trip it. With an injected ManualClock
  // the whole scenario is virtual-time-deterministic: srcB emits nothing,
  // so the sink's alignment on srcA's barriers can never complete and
  // MUST force-advance — every run, with zero real-time sleeps. Each
  // engine-internal deadline check costs 50 virtual ms, so the 2 s
  // timeout trips after ~40 checks no matter how slow the host is.
  ManualClock clock(uint64_t{1} << 30, /*advance_per_read_nanos=*/50'000'000);
  const uint64_t start = clock.PeekNanos();

  auto delivered = std::make_shared<std::atomic<uint64_t>>(0);
  TopologyBuilder builder;
  builder.AddSpout("srcA", [] { return MakeCountingSpout(200); });
  builder.AddSpout("srcB", [] {
    return std::make_unique<GeneratorSpout>(
        []() -> std::optional<Tuple> { return std::nullopt; });
  });
  builder.AddBolt(
      "sink",
      [delivered]() -> std::unique_ptr<Bolt> {
        return std::make_unique<FunctionBolt>(
            [delivered](const Tuple&, OutputCollector*) {
              delivered->fetch_add(1, std::memory_order_relaxed);
            });
      },
      1, {{"srcA", Grouping::Global()}, {"srcB", Grouping::Global()}});

  KvCheckpointStore store;
  EngineConfig config;
  config.checkpoint_store = &store;
  config.epoch_interval_tuples = 50;
  config.epoch_align_timeout_seconds = 2.0;
  config.clock = &clock;
  config.latency_sample_every = 0;  // No latency stamps off virtual time.
  config.telemetry_sample_interval_ms = 0;
  TopologyEngine engine(builder.Build().value(), config);
  engine.Run();

  EXPECT_EQ(delivered->load(), 200u) << "force-advance lost data";
  EXPECT_GT(engine.epoch_timeouts(), 0u) << "virtual clock never tripped";
  // srcB never barriers, so no epoch can ever complete.
  EXPECT_EQ(engine.epochs_completed(), 0u);
  EXPECT_GT(clock.PeekNanos(), start) << "engine never read the clock";
}

}  // namespace
}  // namespace streamlib::platform
