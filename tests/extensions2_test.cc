#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/anomaly/kl_change_detector.h"
#include "core/frequency/decayed_counter.h"
#include "core/ml/online_classifiers.h"
#include "core/sampling/distributed_sampler.h"
#include "platform/event_time.h"

namespace streamlib {
namespace {

// -------------------------------------------------------- KlChangeDetector

TEST(KlChangeDetectorTest, QuietOnStationaryData) {
  KlChangeDetector detector(500, 20, 0.001, 1);
  Rng rng(2);
  int alarms = 0;
  for (int i = 0; i < 50000; i++) {
    if (detector.AddAndDetect(rng.NextGaussian())) alarms++;
  }
  EXPECT_LE(alarms, 3);
}

TEST(KlChangeDetectorTest, DetectsVarianceChangeMeanDetectorsMiss) {
  // Variance doubles mid-stream with the mean unchanged: CUSUM-class
  // detectors see nothing; the KL detector must fire.
  KlChangeDetector kl(500, 20, 0.001, 3);
  Rng rng(4);
  int detected_at = -1;
  for (int i = 0; i < 20000; i++) {
    const double sigma = i >= 10000 ? 3.0 : 1.0;
    if (kl.AddAndDetect(sigma * rng.NextGaussian()) && i >= 10000 &&
        detected_at < 0) {
      detected_at = i;
    }
  }
  ASSERT_GT(detected_at, 0);
  EXPECT_LT(detected_at, 11500);  // Within ~1.5 windows of the change.
}

TEST(KlChangeDetectorTest, DetectsBimodalSplit) {
  // Unimodal -> bimodal with identical mean and variance direction.
  KlChangeDetector kl(400, 24, 0.001, 5);
  Rng rng(6);
  bool detected = false;
  for (int i = 0; i < 16000; i++) {
    double v;
    if (i < 8000) {
      v = rng.NextGaussian();
    } else {
      v = (rng.NextBool(0.5) ? 3.0 : -3.0) + 0.3 * rng.NextGaussian();
    }
    if (kl.AddAndDetect(v) && i >= 8000) detected = true;
  }
  EXPECT_TRUE(detected);
}

// ---------------------------------------------------------- DecayedCounter

TEST(DecayedCounterTest, CountsDecayWithHalfLife) {
  DecayedCounter<int> counter(100.0);
  counter.Add(1, 0.0, 8.0);
  EXPECT_NEAR(counter.Estimate(1, 0.0), 8.0, 1e-9);
  EXPECT_NEAR(counter.Estimate(1, 100.0), 4.0, 1e-9);
  EXPECT_NEAR(counter.Estimate(1, 300.0), 1.0, 1e-9);
}

TEST(DecayedCounterTest, RecentBeatsBiggerButOlder) {
  DecayedCounter<int> counter(50.0);
  for (int i = 0; i < 100; i++) counter.Add(1, 0.0);   // Old: 100 hits.
  for (int i = 0; i < 20; i++) counter.Add(2, 200.0);  // Fresh: 20 hits.
  // At t=200, key 1 decayed to 100 * 2^-4 = 6.25 < 20.
  auto trending = counter.Trending(200.0, 1.0);
  ASSERT_GE(trending.size(), 2u);
  EXPECT_EQ(trending[0].first, 2);
  EXPECT_EQ(trending[1].first, 1);
}

TEST(DecayedCounterTest, StaleKeysEvaporate) {
  DecayedCounter<int> counter(10.0);
  for (int k = 0; k < 1000; k++) counter.Add(k, 0.0);
  EXPECT_EQ(counter.size(), 1000u);
  counter.Add(9999, 1000.0);  // Far future.
  counter.Trending(1000.0, 0.5);  // Prunes decayed entries.
  EXPECT_LE(counter.size(), 2u);
}

TEST(DecayedCounterTest, RenormalizationKeepsPrecision) {
  DecayedCounter<int> counter(1.0);  // Aggressive: 2^t scaling explodes.
  for (int t = 0; t < 1000; t++) {
    counter.Add(1, static_cast<double>(t));
  }
  // Steady state of sum_{j>=0} 2^-j = 2 at the last insert (t=999); one
  // half-life later it reads ~1.
  EXPECT_NEAR(counter.Estimate(1, 999.0), 2.0, 0.1);
  EXPECT_NEAR(counter.Estimate(1, 1000.0), 1.0, 0.05);
}

// ----------------------------------------------------- Online classifiers

// Linearly separable-ish stream: label = (2x0 - x1 + 0.5 > 0) with noise.
std::pair<std::vector<double>, bool> MakeExample(Rng* rng) {
  std::vector<double> x = {rng->NextGaussian(), rng->NextGaussian()};
  const double margin = 2.0 * x[0] - x[1] + 0.5;
  const bool label = margin + 0.3 * rng->NextGaussian() > 0;
  return {x, label};
}

TEST(OnlineLogisticRegressionTest, LearnsLinearBoundary) {
  OnlineLogisticRegression model(2, 0.1);
  PrequentialEvaluator eval(1000);
  Rng rng(7);
  for (int i = 0; i < 20000; i++) {
    auto [x, y] = MakeExample(&rng);
    eval.Record(model.Predict(x), y);
    model.Update(x, y);
  }
  EXPECT_GT(eval.WindowAccuracy(), 0.9);
}

TEST(OnlineLogisticRegressionTest, ProbabilitiesAreCalibratedDirection) {
  OnlineLogisticRegression model(2, 0.1);
  Rng rng(8);
  for (int i = 0; i < 20000; i++) {
    auto [x, y] = MakeExample(&rng);
    model.Update(x, y);
  }
  // A deep-positive point scores near 1, deep-negative near 0.
  EXPECT_GT(model.PredictProbability({3.0, -3.0}), 0.95);
  EXPECT_LT(model.PredictProbability({-3.0, 3.0}), 0.05);
}

TEST(OnlinePerceptronTest, MistakesFlattenOnSeparableData) {
  // The classic mistake bound (R/gamma)^2 needs a margin: reject examples
  // too close to the boundary (a gaussian stream otherwise produces points
  // with vanishing margin and the bound diverges).
  OnlinePerceptron model(2);
  Rng rng(9);
  uint64_t mistakes_first_half = 0;
  int i = 0;
  while (i < 20000) {
    std::vector<double> x = {rng.NextGaussian(), rng.NextGaussian()};
    const double margin = 2.0 * x[0] - x[1] + 0.5;
    if (std::fabs(margin) < 0.5) continue;
    model.Update(x, margin > 0);
    if (i == 9999) mistakes_first_half = model.mistakes();
    i++;
  }
  const uint64_t mistakes_second_half =
      model.mistakes() - mistakes_first_half;
  EXPECT_LT(mistakes_second_half, mistakes_first_half / 2 + 10);
}

TEST(StreamingNaiveBayesTest, LearnsGaussianClasses) {
  StreamingNaiveBayes model(2);
  PrequentialEvaluator eval(1000);
  Rng rng(10);
  for (int i = 0; i < 20000; i++) {
    const bool y = rng.NextBool(0.5);
    std::vector<double> x = {
        (y ? 2.0 : -2.0) + rng.NextGaussian(),
        (y ? -1.0 : 1.0) + rng.NextGaussian(),
    };
    eval.Record(model.Predict(x), y);
    model.Update(x, y);
  }
  EXPECT_GT(eval.WindowAccuracy(), 0.95);
}

TEST(StreamingNaiveBayesTest, HandlesMissingFeatures) {
  StreamingNaiveBayes model(3);
  Rng rng(11);
  PrequentialEvaluator eval(1000);
  const double kNan = std::nan("");
  for (int i = 0; i < 20000; i++) {
    const bool y = rng.NextBool(0.5);
    std::vector<double> x = {(y ? 2.0 : -2.0) + rng.NextGaussian(),
                             (y ? -2.0 : 2.0) + rng.NextGaussian(),
                             rng.NextGaussian()};
    if (rng.NextBool(0.3)) x[rng.NextBounded(3)] = kNan;  // Drop a feature.
    eval.Record(model.Predict(x), y);
    model.Update(x, y);
  }
  EXPECT_GT(eval.WindowAccuracy(), 0.9);
}

TEST(PrequentialEvaluatorTest, WindowTracksDriftRecovery) {
  PrequentialEvaluator eval(100);
  // 500 correct, then 500 wrong: overall ~50%, window ~0%.
  for (int i = 0; i < 500; i++) eval.Record(true, true);
  for (int i = 0; i < 500; i++) eval.Record(true, false);
  EXPECT_NEAR(eval.OverallAccuracy(), 0.5, 0.01);
  EXPECT_NEAR(eval.WindowAccuracy(), 0.0, 0.01);
}

// ------------------------------------------------------ EventTimeWindower

TEST(WatermarkTrackerTest, WatermarkTrailsMaxEventTime) {
  platform::WatermarkTracker tracker(10);
  tracker.Observe(100);
  EXPECT_EQ(tracker.Watermark(), 90);
  tracker.Observe(50);  // Out of order but above watermark: not late.
  EXPECT_EQ(tracker.Watermark(), 90);
  EXPECT_TRUE(tracker.Observe(80));   // Below watermark: late.
  EXPECT_FALSE(tracker.Observe(95));  // In order-ish: fine.
}

TEST(EventTimeWindowerTest, WindowsFireWhenWatermarkPasses) {
  platform::EventTimeWindower<int> windower(10, 5);
  EXPECT_TRUE(windower.Add(1, 100).empty());
  EXPECT_TRUE(windower.Add(5, 101).empty());
  EXPECT_TRUE(windower.Add(12, 102).empty());
  // Watermark = 12 - 5 = 7: window [0,10) not yet closed.
  auto fired = windower.Add(16, 103);
  // Watermark = 11 >= 10: window [0,10) fires with the two early values.
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].start, 0);
  EXPECT_EQ(fired[0].end, 10);
  EXPECT_EQ(fired[0].values.size(), 2u);
}

TEST(EventTimeWindowerTest, OutOfOrderWithinLatenessIsCaptured) {
  platform::EventTimeWindower<int> windower(10, 8);
  windower.Add(11, 1);
  // Event time 4 is older than max (11) but above watermark (3): captured
  // into its own window despite arriving after window [10, 20) opened.
  auto fired = windower.Add(4, 2);
  EXPECT_EQ(windower.late_drops(), 0u);
  fired = windower.Add(25, 3);  // Watermark 17: fires [0,10) only.
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].values.size(), 1u);  // The out-of-order event.
  fired = windower.Add(29, 4);  // Watermark 21: fires [10,20).
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].start, 10);
  EXPECT_EQ(fired[0].values.size(), 1u);
}

TEST(EventTimeWindowerTest, TooLateEventsDropAndCount) {
  platform::EventTimeWindower<int> windower(10, 2);
  windower.Add(100, 1);
  windower.Add(50, 2);  // Watermark 98: way late.
  EXPECT_EQ(windower.late_drops(), 1u);
}

TEST(EventTimeWindowerTest, FlushDrainsEverything) {
  platform::EventTimeWindower<int> windower(10, 100);
  for (int t = 0; t < 55; t += 5) windower.Add(t, t);
  auto fired = windower.Flush();
  EXPECT_EQ(fired.size(), 6u);  // Windows [0,10) .. [50,60).
  EXPECT_EQ(windower.pending_windows(), 0u);
}

// ---------------------------------------------------- DistributedSampler

TEST(DistributedSamplerTest, SampleIsUniformAcrossSites) {
  // Site 0 sends 10x more than the others; inclusion must follow item
  // volume, not site count. Items are tagged with their origin site.
  const int kTrials = 300;
  uint64_t from_site0 = 0;
  uint64_t total = 0;
  for (int trial = 0; trial < kTrials; trial++) {
    DistributedSampler<uint32_t> sampler(4, 64, 100 + trial);
    for (int i = 0; i < 4000; i++) sampler.AddAtSite(0, 0);
    for (uint32_t s = 1; s < 4; s++) {
      for (int i = 0; i < 400; i++) sampler.AddAtSite(s, s);
    }
    for (uint32_t item : sampler.Sample()) {
      total++;
      if (item == 0) from_site0++;
    }
  }
  // Site 0 holds 4000/5200 ~ 77% of the union.
  EXPECT_NEAR(static_cast<double>(from_site0) / total, 4000.0 / 5200.0,
              0.05);
}

TEST(DistributedSamplerTest, CommunicationFarBelowNaive) {
  DistributedSampler<uint64_t> sampler(8, 128, 12);
  const uint64_t kItems = 400000;
  Rng rng(13);
  for (uint64_t i = 0; i < kItems; i++) {
    sampler.AddAtSite(static_cast<uint32_t>(rng.NextBounded(8)), i);
  }
  // Naive forwarding would send kItems messages; the protocol sends
  // O(k log n + s log n).
  EXPECT_LT(sampler.total_messages(), kItems / 50);
  EXPECT_GE(sampler.sample_size(), 32u);
  EXPECT_LE(sampler.sample_size(), 128u);
}

TEST(DistributedSamplerTest, LevelRisesLogarithmically) {
  DistributedSampler<uint64_t> sampler(2, 32, 14);
  for (uint64_t i = 0; i < 100000; i++) {
    sampler.AddAtSite(static_cast<uint32_t>(i % 2), i);
  }
  // Expected level ~ log2(n / capacity) ~ log2(3125) ~ 11.6.
  EXPECT_GE(sampler.level(), 8u);
  EXPECT_LE(sampler.level(), 16u);
}

}  // namespace
}  // namespace streamlib
