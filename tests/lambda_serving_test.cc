// Snapshot-isolated query front-end acceptance (DESIGN.md §14): typed
// config validation, GCRA tenant quotas under a ManualClock, bounded-queue
// rejection, result-cache hits and view-swap invalidation, per-tenant
// accounting through the telemetry schema, the snapshot-staleness bound,
// and the concurrent stress surface (readers hammering the front-end while
// ingest and batch hand-offs race) that `ctest -L tsan` runs under
// -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lambda/lambda_pipeline.h"
#include "lambda/query_frontend.h"
#include "platform/clock.h"
#include "platform/telemetry.h"

namespace streamlib::lambda {
namespace {

std::string NumberedKey(const char* prefix, int i) {
  std::string key(prefix);
  key += std::to_string(i);
  return key;
}

LambdaConfig SmallConfig() {
  LambdaConfig config;
  config.batch_interval_records = 1000000;  // Manual batches only.
  config.speed_snapshot_interval_records = 1;
  return config;
}

TEST(LambdaConfigValidateTest, RejectsEveryBadKnobWithTypedCode) {
  LambdaConfig config;
  EXPECT_TRUE(config.Validate().ok());

  config.batch_interval_records = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = LambdaConfig();

  config.cms_width = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = LambdaConfig();

  config.cms_depth = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = LambdaConfig();

  config.topk_capacity = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = LambdaConfig();

  config.hll_precision = 10;
  EXPECT_EQ(config.Validate().code(), StatusCode::kOutOfRange);
  config = LambdaConfig();

  config.speed_snapshot_interval_records = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(QueryFrontendConfigValidateTest, RejectsBadKnobsWithTypedCode) {
  QueryFrontendConfig config;
  EXPECT_TRUE(config.Validate().ok());

  config.workers = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = QueryFrontendConfig();

  config.max_pending = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = QueryFrontendConfig();

  config.default_quota.queries_per_second = -1;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = QueryFrontendConfig();

  config.default_quota.burst = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(QueryFrontendTest, AnswersAllThreeQueryKinds) {
  LambdaPipeline pipeline(SmallConfig());
  for (int i = 0; i < 300; i++) pipeline.Ingest(i, "gold", 1.0);
  for (int i = 0; i < 100; i++) pipeline.Ingest(i, "silver", 1.0);
  pipeline.RunBatchNow();
  for (int i = 0; i < 50; i++) pipeline.Ingest(i, "gold", 1.0);

  QueryFrontend frontend(&pipeline.serving(), QueryFrontendConfig());
  frontend.Start();

  QueryRequest total;
  total.kind = QueryKind::kTotal;
  total.tenant = "acme";
  total.key = "gold";
  Result<QueryResponse> r = frontend.Query(total);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().value, 350.0, 1.0);
  EXPECT_EQ(r.value().batch_through_offset, 400u);
  EXPECT_EQ(r.value().through_offset, 450u);
  EXPECT_LE(r.value().batch_through_offset, r.value().through_offset);

  QueryRequest topk;
  topk.kind = QueryKind::kTopK;
  topk.tenant = "acme";
  topk.k = 2;
  Result<QueryResponse> t = frontend.Query(topk);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t.value().topk.size(), 2u);
  EXPECT_EQ(t.value().topk[0].first, "gold");
  EXPECT_EQ(t.value().topk[1].first, "silver");

  QueryRequest distinct;
  distinct.kind = QueryKind::kDistinctKeys;
  distinct.tenant = "acme";
  Result<QueryResponse> d = frontend.Query(distinct);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value().value, 2.0, 1.0);
}

TEST(QueryFrontendTest, MalformedRequestsAreInvalidArgument) {
  LambdaPipeline pipeline(SmallConfig());
  QueryFrontend frontend(&pipeline.serving(), QueryFrontendConfig());
  frontend.Start();

  std::future<QueryResponse> future;
  QueryRequest no_tenant;
  EXPECT_EQ(frontend.Submit(no_tenant, &future).code(),
            StatusCode::kInvalidArgument);

  QueryRequest zero_k;
  zero_k.tenant = "acme";
  zero_k.kind = QueryKind::kTopK;
  zero_k.k = 0;
  EXPECT_EQ(frontend.Submit(zero_k, &future).code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryFrontendTest, TokenBucketEnforcesQuotaDeterministically) {
  LambdaPipeline pipeline(SmallConfig());
  platform::ManualClock clock;
  QueryFrontendConfig config;
  config.clock = &clock;
  config.cache_capacity = 0;  // Isolate the quota path from caching.
  QueryFrontend frontend(&pipeline.serving(), config);
  frontend.Start();

  // 10 qps with burst 2: two back-to-back admits, the third rejects.
  ASSERT_TRUE(frontend.RegisterTenant("metered", {10.0, 2.0}).ok());
  QueryRequest request;
  request.tenant = "metered";
  request.key = "k";
  EXPECT_TRUE(frontend.Query(request).ok());
  EXPECT_TRUE(frontend.Query(request).ok());
  Result<QueryResponse> rejected = frontend.Query(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // One emission interval (100ms at 10 qps) refills exactly one token.
  clock.AdvanceNanos(100'000'000ull);
  EXPECT_TRUE(frontend.Query(request).ok());
  EXPECT_EQ(frontend.Query(request).status().code(),
            StatusCode::kResourceExhausted);

  const FrontendStats stats = frontend.Stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].served, 3u);
  EXPECT_EQ(stats.tenants[0].rejected_quota, 2u);
}

TEST(QueryFrontendTest, QuotasAreIsolatedPerTenant) {
  LambdaPipeline pipeline(SmallConfig());
  platform::ManualClock clock;
  QueryFrontendConfig config;
  config.clock = &clock;
  QueryFrontend frontend(&pipeline.serving(), config);
  frontend.Start();
  ASSERT_TRUE(frontend.RegisterTenant("starved", {1.0, 1.0}).ok());

  QueryRequest request;
  request.tenant = "starved";
  request.key = "k";
  EXPECT_TRUE(frontend.Query(request).ok());
  EXPECT_FALSE(frontend.Query(request).ok());

  // An unmetered tenant (default quota: unlimited) is unaffected by the
  // starved tenant's empty bucket.
  request.tenant = "free";
  for (int i = 0; i < 50; i++) EXPECT_TRUE(frontend.Query(request).ok());
}

TEST(QueryFrontendTest, FullQueueRejectsWithTypedStatusNotUnboundedBacklog) {
  LambdaPipeline pipeline(SmallConfig());
  QueryFrontendConfig config;
  config.max_pending = 4;
  config.cache_capacity = 0;  // Every submission must take a queue slot.
  QueryFrontend frontend(&pipeline.serving(), config);
  // Deliberately not started: submissions park in the bounded queue.

  QueryRequest request;
  request.tenant = "acme";
  std::vector<std::future<QueryResponse>> futures(8);
  for (int i = 0; i < 4; i++) {
    request.key = NumberedKey("k", i);
    ASSERT_TRUE(frontend.Submit(request, &futures[i]).ok());
  }
  request.key = "overflow";
  std::future<QueryResponse> overflow;
  const Status full = frontend.Submit(request, &overflow);
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);

  // Stop() without Start() drains the four admitted queries inline: every
  // accepted future resolves (no broken promises).
  frontend.Stop();
  for (int i = 0; i < 4; i++) {
    EXPECT_GE(futures[i].get().through_offset, 0u);
  }
  const FrontendStats stats = frontend.Stats();
  EXPECT_EQ(stats.served, 4u);
  EXPECT_EQ(stats.rejected_queue, 1u);
}

TEST(QueryFrontendTest, CacheHitsAnswerInlineAndViewSwapsInvalidate) {
  LambdaPipeline pipeline(SmallConfig());
  for (int i = 0; i < 100; i++) pipeline.Ingest(i, "k", 1.0);
  QueryFrontend frontend(&pipeline.serving(), QueryFrontendConfig());
  frontend.Start();

  QueryRequest request;
  request.tenant = "acme";
  request.key = "k";
  Result<QueryResponse> miss = frontend.Query(request);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().cache_hit);

  Result<QueryResponse> hit = frontend.Query(request);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);
  EXPECT_DOUBLE_EQ(hit.value().value, miss.value().value);
  EXPECT_EQ(hit.value().snapshot_version, miss.value().snapshot_version);

  // Ingest publishes a new snapshot (interval = 1): the cached answer is
  // for a dead version and must not be served again.
  pipeline.Ingest(0, "k", 1.0);
  Result<QueryResponse> refreshed = frontend.Query(request);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_FALSE(refreshed.value().cache_hit);
  EXPECT_DOUBLE_EQ(refreshed.value().value, miss.value().value + 1.0);
  EXPECT_GT(refreshed.value().snapshot_version,
            miss.value().snapshot_version);

  const FrontendStats stats = frontend.Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.served, 3u);
}

TEST(QueryFrontendTest, StatsAggregateAcrossTenantsSorted) {
  LambdaPipeline pipeline(SmallConfig());
  QueryFrontend frontend(&pipeline.serving(), QueryFrontendConfig());
  frontend.Start();

  QueryRequest request;
  request.key = "k";
  request.tenant = "zeta";
  EXPECT_TRUE(frontend.Query(request).ok());
  request.tenant = "alpha";
  EXPECT_TRUE(frontend.Query(request).ok());
  EXPECT_TRUE(frontend.Query(request).ok());

  const FrontendStats stats = frontend.Stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].tenant, "alpha");
  EXPECT_EQ(stats.tenants[0].served, 2u);
  EXPECT_EQ(stats.tenants[1].tenant, "zeta");
  EXPECT_EQ(stats.tenants[1].served, 1u);
  EXPECT_EQ(stats.served, 3u);
}

TEST(QueryFrontendTest, TelemetryExportsServingSection) {
  LambdaPipeline pipeline(SmallConfig());
  QueryFrontend frontend(&pipeline.serving(), QueryFrontendConfig());
  frontend.Start();
  QueryRequest request;
  request.tenant = "acme";
  request.key = "k";
  EXPECT_TRUE(frontend.Query(request).ok());
  EXPECT_TRUE(frontend.Query(request).ok());  // Cache hit.

  platform::TelemetryReport report;
  EXPECT_FALSE(report.serving.enabled);
  frontend.FillTelemetry(&report);
  EXPECT_TRUE(report.serving.enabled);
  EXPECT_EQ(report.serving.served, 2u);
  EXPECT_EQ(report.serving.cache_hits, 1u);
  ASSERT_EQ(report.serving.tenants.size(), 1u);
  EXPECT_EQ(report.serving.tenants[0].tenant, "acme");

  std::ostringstream json;
  report.WriteJson(json);
  EXPECT_NE(json.str().find("\"serving\""), std::string::npos);
  EXPECT_NE(json.str().find("\"acme\""), std::string::npos);
  EXPECT_NE(json.str().find("\"cache_hits\": 1"), std::string::npos);
}

TEST(LambdaPipelineTest, SnapshotStalenessBoundedByPublishInterval) {
  LambdaConfig config;
  config.batch_interval_records = 1000000;
  config.speed_snapshot_interval_records = 64;
  LambdaPipeline pipeline(config);
  for (int i = 0; i < 1000; i++) {
    pipeline.Ingest(i, "k", 1.0);
    // The serving snapshot may trail the log by at most interval - 1
    // records — the documented staleness bound of the lock-free read path.
    const uint64_t visible = pipeline.serving().Snapshot()->through_offset();
    const uint64_t logged = pipeline.log().size();
    EXPECT_LE(logged - visible, 63u);
  }
  // Forced publication erases the lag entirely.
  pipeline.PublishSpeedSnapshot();
  EXPECT_EQ(pipeline.serving().Snapshot()->through_offset(),
            pipeline.log().size());
  EXPECT_NEAR(pipeline.QueryTotal("k"), 1000.0, 1.0);
}

// The TSAN target: readers hammer the front-end while an ingest writer and
// a batch thread race full speed. Asserts the snapshot-isolation contract
// on every answer: batch coverage never exceeds total coverage, offsets
// never run ahead of what was truly ingested, and merged top-k lists are
// never torn (sorted, no duplicate keys).
TEST(QueryFrontendStressTest, ConcurrentReadersIngestAndBatchHandoffs) {
  LambdaConfig config;
  config.batch_interval_records = 1000000;  // Batches come from the thread.
  config.speed_snapshot_interval_records = 32;
  LambdaPipeline pipeline(config);
  QueryFrontendConfig fe_config;
  fe_config.workers = 4;
  fe_config.cache_capacity = 256;
  QueryFrontend frontend(&pipeline.serving(), fe_config);
  frontend.Start();

  constexpr int kRecords = 20000;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> ingested{0};

  std::thread writer([&] {
    for (int i = 0; i < kRecords; i++) {
      // Bump BEFORE the append: a snapshot can be published inside
      // Ingest() already covering this record, so the counter must be an
      // upper bound on coverage, not a trailing count.
      ingested.store(i + 1, std::memory_order_release);
      pipeline.Ingest(i, NumberedKey("key", i % 37), 1.0);
    }
    done.store(true, std::memory_order_release);
  });

  std::thread batcher([&] {
    while (!done.load(std::memory_order_acquire)) {
      pipeline.RunBatchNow();
      std::this_thread::yield();
    }
    pipeline.RunBatchNow();
  });

  std::vector<std::thread> readers;
  std::atomic<uint64_t> answers{0};
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      QueryRequest total;
      total.kind = QueryKind::kTotal;
      total.tenant = NumberedKey("tenant", r % 2);
      QueryRequest topk;
      topk.kind = QueryKind::kTopK;
      topk.tenant = total.tenant;
      topk.k = 8;
      while (!done.load(std::memory_order_acquire)) {
        total.key = NumberedKey("key", r);
        Result<QueryResponse> a = frontend.Query(total);
        ASSERT_TRUE(a.ok());
        // Snapshot-isolation contract: the exact batch prefix is always
        // within total coverage, and coverage never exceeds the writer's
        // pre-append upper bound. (Read `ingested` AFTER the answer —
        // it can only have grown since the snapshot was taken.)
        EXPECT_LE(a.value().batch_through_offset, a.value().through_offset);
        EXPECT_LE(a.value().through_offset,
                  ingested.load(std::memory_order_acquire));

        Result<QueryResponse> b = frontend.Query(topk);
        ASSERT_TRUE(b.ok());
        const auto& list = b.value().topk;
        for (size_t i = 1; i < list.size(); i++) {
          EXPECT_LE(list[i].second, list[i - 1].second)
              << "torn top-k: not sorted";
          EXPECT_NE(list[i].first, list[i - 1].first)
              << "torn top-k: duplicate key";
        }
        answers.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }

  writer.join();
  batcher.join();
  for (std::thread& reader : readers) reader.join();
  frontend.Stop();

  EXPECT_GT(answers.load(), 0u);
  // Quiescent end state: the final batch covered the whole log, and the
  // merged totals are exact.
  EXPECT_EQ(pipeline.SpeedSuffixLength(), 0u);
  double sum = 0;
  for (int k = 0; k < 37; k++) {
    sum += pipeline.QueryTotal(NumberedKey("key", k));
  }
  EXPECT_NEAR(sum, static_cast<double>(kRecords), kRecords * 0.01);
}

// Same-version answers must be byte-identical: two queries that report the
// same snapshot_version saw the same frozen (batch, speed) pair.
TEST(QueryFrontendStressTest, SameVersionAnswersAreIdentical) {
  LambdaConfig config;
  config.batch_interval_records = 1000000;
  config.speed_snapshot_interval_records = 16;
  LambdaPipeline pipeline(config);
  QueryFrontendConfig fe_config;
  fe_config.cache_capacity = 0;  // Force every answer through Execute.
  QueryFrontend frontend(&pipeline.serving(), fe_config);
  frontend.Start();

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 8000; i++) {
      pipeline.Ingest(i, NumberedKey("key", i % 5), 1.0);
    }
    done.store(true, std::memory_order_release);
  });

  QueryRequest request;
  request.kind = QueryKind::kTotal;
  request.tenant = "checker";
  request.key = "key3";
  uint64_t last_version = 0;
  double last_value = -1;
  uint64_t repeats = 0;
  while (!done.load(std::memory_order_acquire)) {
    Result<QueryResponse> r = frontend.Query(request);
    ASSERT_TRUE(r.ok());
    if (r.value().snapshot_version == last_version) {
      EXPECT_DOUBLE_EQ(r.value().value, last_value)
          << "two answers from snapshot v" << last_version << " differ";
      repeats++;
    } else {
      EXPECT_GT(r.value().snapshot_version, last_version)
          << "snapshot version went backward";
      last_version = r.value().snapshot_version;
      last_value = r.value().value;
    }
  }
  writer.join();
  EXPECT_GT(repeats, 0u);
}

}  // namespace
}  // namespace streamlib::lambda
